"""Engine registry: name -> engine singleton.

The *vocabulary* of engine names belongs to the model side
(``repro.core.platform.ENGINE_NAMES``) so configurations validate
without importing this package; the registry here must cover exactly
that vocabulary, which ``repro.engines`` asserts at import and the
``engine-contract`` lint rule re-checks in CI.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ConfigError
from .interfaces import ISimEngine

__all__ = [
    "register_engine",
    "get_engine",
    "engine_names",
    "available_engines",
    "engine_fingerprint",
]

_REGISTRY: Dict[str, ISimEngine] = {}


def register_engine(cls: Type[ISimEngine]) -> Type[ISimEngine]:
    """Class decorator: instantiate and register one engine."""
    engine = cls()
    if engine.name in _REGISTRY:
        raise ConfigError(f"duplicate engine registration {engine.name!r}")
    _REGISTRY[engine.name] = engine
    return cls


def get_engine(name: str) -> ISimEngine:
    """The engine registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def engine_names() -> List[str]:
    """Every registered engine name, in registration order."""
    return list(_REGISTRY)


def available_engines() -> List[str]:
    """Names of the engines that can run in this environment."""
    return [name for name, engine in _REGISTRY.items() if engine.available()]


def engine_fingerprint(name: str) -> Dict[str, object]:
    """Cache-key identity of the engine registered under ``name``."""
    return get_engine(name).fingerprint()
