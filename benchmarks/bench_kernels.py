"""Application-kernel benchmarks: realistic programs on the platform.

Each kernel verifies its numeric result against a Python reference, so
these double as end-to-end correctness runs; the interesting output is
how the three coherence solutions rank on real sharing patterns.
"""

from conftest import report, run_once

from repro.workloads import run_jacobi, run_reduction, run_token_ring

SOLUTIONS = ("disabled", "software", "proposed")


def test_kernel_reduction(benchmark):
    results = run_once(
        benchmark,
        lambda: {s: run_reduction(2, 128, s) for s in SOLUTIONS},
    )
    text = "\n".join(
        f"{s:<10} {r.elapsed_ns:>8} ns  result={r.value}"
        for s, r in results.items()
    )
    report(benchmark, "Kernel - parallel reduction (2 cores, 128 words)", text)
    assert all(r.correct for r in results.values())
    assert (
        results["proposed"].elapsed_ns
        < results["software"].elapsed_ns
        < results["disabled"].elapsed_ns
    )


def test_kernel_jacobi(benchmark):
    results = run_once(
        benchmark,
        lambda: {s: run_jacobi(2, 32, sweeps=6, solution=s) for s in SOLUTIONS},
    )
    text = "\n".join(
        f"{s:<10} {r.elapsed_ns:>8} ns  probe={r.value}"
        for s, r in results.items()
    )
    report(benchmark, "Kernel - 1-D Jacobi (2 cores, 32 cells, 6 sweeps)", text)
    assert all(r.correct for r in results.values())
    # The halo exchange repeats every sweep: hardware coherence wins big.
    assert results["proposed"].elapsed_ns < results["software"].elapsed_ns


def test_kernel_token_ring(benchmark):
    def sweep():
        return {n: run_token_ring(n, laps=4) for n in (2, 3, 4)}

    results = run_once(benchmark, sweep)
    text = "\n".join(
        f"{n} cores: {r.elapsed_ns:>7} ns total, "
        f"{r.elapsed_ns // (n * 4):>5} ns/hop"
        for n, r in results.items()
    )
    report(benchmark, "Kernel - token ring hop latency", text)
    assert all(r.correct for r in results.values())
