"""``wait-cycle``: cycles in the static waits-for graph.

The graph's vertices are the registry's resources; its edges come in
two strengths (built by :meth:`ConcurAnalysis.wait_edges`):

* **hold edges** (may): some process holds ``src`` while blocking on
  ``dst`` — directly or through a ``yield from`` chain (the controller
  holding its port through ``transact`` contributes
  ``cache-port -> bus-tenure`` and ``cache-port -> drain-completion``).
* **provider edges** (must): *every* path by which ``src`` is provided
  (its completion succeeded / its slot released) first blocks on
  ``dst``.  These are strong: if the drain worker can only succeed a
  completion after taking the cache port on all paths, then
  ``drain-completion -> cache-port`` holds unconditionally.  A bypass
  branch — the ``drain_needs_port`` drain-policy check — makes the
  edge conditional and drops it, which is exactly how the PR 6 fix
  breaks the cycle.

A cycle is reported unless some edge on it is **ceiling-guarded**: a
re-request wait for an arbiter/slot resource inside a loop anchored by
the retry ceiling resolves as a diagnosed ``LivelockError``, never a
silent deadlock.  Completion waits are never ceiling-breakable — a
back-off on ``all_of(completions)`` has no retry bound.

The finding anchors at a strong edge's blocking site when the cycle
has one (that is where the fix goes), else at the first hold edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core import Finding, Project, Rule, register
from .model import ConcurAnalysis, WaitEdge

__all__ = ["WaitCycleRule"]


def _representative_edges(edges: List[WaitEdge]) -> Dict[str, Dict[str, WaitEdge]]:
    """Pick one edge per (src, dst): a deadlock needs only one concrete
    unguarded instance, so an unguarded edge beats a ceiling-guarded
    one; among equals, a strong edge (better anchor) beats a hold edge."""
    adjacency: Dict[str, Dict[str, WaitEdge]] = {}
    for edge in edges:
        slot = adjacency.setdefault(edge.src, {})
        existing = slot.get(edge.dst)
        if existing is None:
            slot[edge.dst] = edge
            continue
        better = (not edge.ceiling, edge.strong) > (not existing.ceiling, existing.strong)
        if better:
            slot[edge.dst] = edge
    return adjacency


def _elementary_cycles(adjacency: Dict[str, Dict[str, WaitEdge]], cap: int = 8):
    """All elementary cycles up to ``cap`` edges, each reported once
    (rooted at its lexicographically smallest vertex)."""
    cycles = []
    vertices = sorted(adjacency)
    for start in vertices:
        stack = [(start, [start])]
        while stack:
            current, path = stack.pop()
            for nxt in sorted(adjacency.get(current, ())):
                if nxt == start:
                    cycles.append(list(path))
                elif nxt > start and nxt not in path and len(path) < cap:
                    stack.append((nxt, path + [nxt]))
    return cycles


@register
class WaitCycleRule(Rule):
    id = "wait-cycle"
    description = (
        "the static waits-for graph between process types has no cycle "
        "unbroken by a retry ceiling or a drain-policy bypass"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        analysis = ConcurAnalysis.of(project)
        adjacency = _representative_edges(analysis.wait_edges())
        findings: List[Finding] = []
        for cycle in sorted(_elementary_cycles(adjacency)):
            edges = [
                adjacency[cycle[i]][cycle[(i + 1) % len(cycle)]]
                for i in range(len(cycle))
            ]
            if any(edge.ceiling for edge in edges):
                continue  # bounded by the retry ceiling: livelock, not deadlock
            anchor = next((e for e in edges if e.strong), edges[0])
            ring = " -> ".join(cycle + [cycle[0]])
            detail = "; ".join(edge.describe() for edge in edges)
            findings.append(
                self.finding(
                    anchor.path,
                    anchor.line,
                    f"static waits-for cycle: {ring} — {detail}; no retry "
                    f"ceiling or drain-policy bypass breaks it",
                )
            )
        return findings
