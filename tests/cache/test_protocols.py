"""Exhaustive and property-based tests of the protocol FSMs."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import (
    PROTOCOLS,
    MEIProtocol,
    MESIProtocol,
    MOESIProtocol,
    MSIProtocol,
    SIProtocol,
    SnoopOp,
    State,
    WriteAction,
    make_protocol,
)
from repro.errors import ProtocolError

ALL_PROTOCOLS = [MEIProtocol(), MSIProtocol(), MESIProtocol(), MOESIProtocol(), SIProtocol()]
ALL_SNOOP_OPS = list(SnoopOp)

M, O, E, S, I = (
    State.MODIFIED,
    State.OWNED,
    State.EXCLUSIVE,
    State.SHARED,
    State.INVALID,
)


class TestRegistry:
    def test_all_protocols_registered(self):
        assert set(PROTOCOLS) == {"MEI", "MSI", "MESI", "MOESI", "SI", "DRAGON"}

    def test_make_protocol_case_insensitive(self):
        assert make_protocol("mesi").name == "MESI"

    def test_make_protocol_unknown(self):
        with pytest.raises(KeyError):
            make_protocol("MOSI")


class TestStateSets:
    def test_mei_states(self):
        assert MEIProtocol.states == frozenset({M, E, I})

    def test_msi_states(self):
        assert MSIProtocol.states == frozenset({M, S, I})

    def test_mesi_states(self):
        assert MESIProtocol.states == frozenset({M, E, S, I})

    def test_moesi_states(self):
        assert MOESIProtocol.states == frozenset({M, O, E, S, I})

    def test_si_states(self):
        assert SIProtocol.states == frozenset({S, I})


class TestFillStates:
    @pytest.mark.parametrize("shared", [False, True])
    def test_mei_fill_ignores_shared(self, shared):
        assert MEIProtocol().fill_state(False, shared) is E

    @pytest.mark.parametrize("shared", [False, True])
    def test_msi_fill_always_shared_state(self, shared):
        assert MSIProtocol().fill_state(False, shared) is S

    def test_mesi_fill_honours_shared_signal(self):
        protocol = MESIProtocol()
        assert protocol.fill_state(False, shared=False) is E
        assert protocol.fill_state(False, shared=True) is S

    def test_moesi_fill_honours_shared_signal(self):
        protocol = MOESIProtocol()
        assert protocol.fill_state(False, shared=False) is E
        assert protocol.fill_state(False, shared=True) is S

    @pytest.mark.parametrize(
        "protocol", [MEIProtocol(), MSIProtocol(), MESIProtocol(), MOESIProtocol()]
    )
    def test_exclusive_fill_is_modified(self, protocol):
        assert protocol.fill_state(True, shared=False) is M

    def test_si_fill_is_shared(self):
        assert SIProtocol().fill_state(False, False) is S

    def test_si_exclusive_fill_rejected(self):
        with pytest.raises(ProtocolError):
            SIProtocol().fill_state(True, False)


class TestWriteHits:
    def test_mei_exclusive_upgrades_silently(self):
        state, action = MEIProtocol().write_hit(E)
        assert state is M and action is WriteAction.NONE

    def test_msi_shared_needs_bus_upgrade(self):
        state, action = MSIProtocol().write_hit(S)
        assert state is M and action is WriteAction.UPGRADE

    def test_mesi_exclusive_silent(self):
        state, action = MESIProtocol().write_hit(E)
        assert state is M and action is WriteAction.NONE

    def test_mesi_shared_upgrades(self):
        state, action = MESIProtocol().write_hit(S)
        assert state is M and action is WriteAction.UPGRADE

    def test_moesi_owned_upgrades(self):
        state, action = MOESIProtocol().write_hit(O)
        assert state is M and action is WriteAction.UPGRADE

    def test_si_write_through(self):
        state, action = SIProtocol().write_hit(S)
        assert state is S and action is WriteAction.WRITE_THROUGH

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_modified_stays_modified(self, protocol):
        if M not in protocol.states:
            pytest.skip("write-through protocol has no M")
        state, action = protocol.write_hit(M)
        assert state is M and action is WriteAction.NONE

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_write_hit_on_invalid_rejected(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.write_hit(I)


class TestSnoopMEI:
    def test_read_on_modified_drains_and_invalidates(self):
        outcome = MEIProtocol().snoop(M, SnoopOp.READ)
        assert outcome.drain and outcome.next_state is I

    def test_read_on_exclusive_invalidates_clean(self):
        outcome = MEIProtocol().snoop(E, SnoopOp.READ)
        assert not outcome.drain and outcome.next_state is I

    def test_write_on_modified_drains(self):
        outcome = MEIProtocol().snoop(M, SnoopOp.WRITE)
        assert outcome.drain and outcome.next_state is I

    def test_never_asserts_shared(self):
        for state in (M, E):
            for op in ALL_SNOOP_OPS:
                assert not MEIProtocol().snoop(state, op).assert_shared


class TestSnoopMSI:
    def test_read_on_modified_flushes_to_shared(self):
        outcome = MSIProtocol().snoop(M, SnoopOp.READ)
        assert outcome.drain and outcome.next_state is S

    def test_read_on_shared_keeps_copy_without_signal(self):
        # MSI hardware has no shared-signal output pin (Table 3's hole).
        outcome = MSIProtocol().snoop(S, SnoopOp.READ)
        assert outcome.next_state is S
        assert not outcome.assert_shared

    def test_read_excl_kills_shared(self):
        assert MSIProtocol().snoop(S, SnoopOp.READ_EXCL).next_state is I

    def test_invalidate_on_modified_drains_defensively(self):
        outcome = MSIProtocol().snoop(M, SnoopOp.INVALIDATE)
        assert outcome.drain


class TestSnoopMESI:
    def test_read_on_exclusive_downgrades_to_shared(self):
        outcome = MESIProtocol().snoop(E, SnoopOp.READ)
        assert outcome.next_state is S and outcome.assert_shared

    def test_read_on_modified_flushes_to_shared(self):
        outcome = MESIProtocol().snoop(M, SnoopOp.READ)
        assert outcome.drain and outcome.next_state is S

    def test_write_invalidates_shared(self):
        assert MESIProtocol().snoop(S, SnoopOp.WRITE).next_state is I

    def test_read_excl_on_modified_drains(self):
        outcome = MESIProtocol().snoop(M, SnoopOp.READ_EXCL)
        assert outcome.drain and outcome.next_state is I


class TestSnoopMOESI:
    def test_read_on_modified_supplies_and_owns(self):
        outcome = MOESIProtocol().snoop(M, SnoopOp.READ)
        assert outcome.supply and outcome.next_state is O and outcome.assert_shared
        assert not outcome.drain

    def test_read_on_owned_keeps_supplying(self):
        outcome = MOESIProtocol().snoop(O, SnoopOp.READ)
        assert outcome.supply and outcome.next_state is O

    def test_read_excl_on_owned_supplies_and_invalidates(self):
        outcome = MOESIProtocol().snoop(O, SnoopOp.READ_EXCL)
        assert outcome.supply and outcome.next_state is I

    def test_plain_write_on_owned_drains(self):
        outcome = MOESIProtocol().snoop(O, SnoopOp.WRITE)
        assert outcome.drain and outcome.next_state is I

    def test_invalidate_on_owned_silent(self):
        outcome = MOESIProtocol().snoop(O, SnoopOp.INVALIDATE)
        assert not outcome.drain and outcome.next_state is I


class TestSnoopSI:
    def test_read_keeps_shared(self):
        outcome = SIProtocol().snoop(S, SnoopOp.READ)
        assert outcome.next_state is S and outcome.assert_shared

    def test_write_invalidates(self):
        assert SIProtocol().snoop(S, SnoopOp.WRITE).next_state is I

    def test_never_drains(self):
        for op in ALL_SNOOP_OPS:
            assert not SIProtocol().snoop(S, op).drain


# ---------------------------------------------------------------------------
# property tests across all protocols
# ---------------------------------------------------------------------------
protocol_strategy = st.sampled_from(ALL_PROTOCOLS)
op_strategy = st.sampled_from(ALL_SNOOP_OPS)


@given(protocol=protocol_strategy, op=op_strategy)
def test_property_snoop_on_invalid_is_miss(protocol, op):
    outcome = protocol.snoop(I, op)
    assert outcome.next_state is I
    assert not (outcome.drain or outcome.supply or outcome.assert_shared)


@given(protocol=protocol_strategy, op=op_strategy)
def test_property_snoop_stays_within_state_set(protocol, op):
    for state in protocol.states:
        if state is I:
            continue
        outcome = protocol.snoop(state, op)
        assert outcome.next_state in protocol.states


@given(protocol=protocol_strategy, op=op_strategy)
def test_property_drain_only_from_dirty(protocol, op):
    for state in protocol.states:
        if state is I:
            continue
        outcome = protocol.snoop(state, op)
        if outcome.drain:
            assert state.is_dirty


@given(protocol=protocol_strategy, op=op_strategy)
def test_property_supply_only_from_dirty_and_when_supported(protocol, op):
    for state in protocol.states:
        if state is I:
            continue
        outcome = protocol.snoop(state, op)
        if outcome.supply:
            assert protocol.supports_supply
            assert state.is_dirty


@given(protocol=protocol_strategy, op=op_strategy)
def test_property_foreign_write_never_leaves_valid_copy(protocol, op):
    if op not in (SnoopOp.WRITE, SnoopOp.READ_EXCL, SnoopOp.INVALIDATE):
        return
    for state in protocol.states:
        if state is I:
            continue
        outcome = protocol.snoop(state, op)
        assert outcome.next_state is I


@given(protocol=protocol_strategy, shared=st.booleans(), exclusive=st.booleans())
def test_property_fill_states_legal(protocol, shared, exclusive):
    if exclusive and M not in protocol.states:
        return
    state = protocol.fill_state(exclusive, shared)
    assert state in protocol.states
    assert state is not I


@given(protocol=protocol_strategy)
def test_property_foreign_state_rejected(protocol):
    for state in State:
        if state in protocol.states or state is I:
            continue
        with pytest.raises(ProtocolError):
            protocol.snoop(state, SnoopOp.READ)
