"""Unit tests for the ASB-like shared bus."""

import pytest

from repro.bus import (
    AsbBus,
    BusOp,
    Priority,
    SnoopAction,
    SnoopReply,
    Snooper,
    Transaction,
)
from repro.errors import BusError, LivelockError
from repro.mem import MainMemory, MemoryController, MemoryMap, Region
from repro.sim import Clock, Simulator


def make_bus(snoopers=(), **bus_kwargs):
    sim = Simulator()
    memory = MainMemory()
    memory_map = MemoryMap([Region("ram", 0, 1 << 20)])
    bus = AsbBus(
        sim, Clock.from_mhz(50), MemoryController(memory, memory_map), **bus_kwargs
    )
    for snooper in snoopers:
        bus.attach_snooper(snooper)
    return sim, memory, bus


def run_txn(sim, bus, txn, priority=Priority.NORMAL, commit=None):
    proc = sim.process(bus.transact(txn, priority=priority, commit=commit))
    sim.run()
    return proc.value


class StubSnooper(Snooper):
    """Scriptable snooper for bus-protocol tests."""

    def __init__(self, name, reply=SnoopReply.OK):
        self.master_name = name
        self.reply = reply
        self.seen = []
        self.observed = []

    def snoop(self, txn):
        self.seen.append((txn.op, txn.addr))
        return self.reply

    def observe(self, txn):
        self.observed.append(txn.op)


class TestTiming:
    def test_single_read_is_8_bus_cycles(self):
        sim, _memory, bus = make_bus()
        result = run_txn(sim, bus, Transaction(BusOp.READ, 0x100, "m"))
        assert result.latency == 8 * 20  # arb + addr + 6 data, 20ns cycles

    def test_burst_read_is_15_bus_cycles(self):
        sim, _memory, bus = make_bus()
        result = run_txn(sim, bus, Transaction(BusOp.READ_LINE, 0x100, "m"))
        assert result.latency == (1 + 1 + 13) * 20

    def test_swap_is_atomic_single_tenure(self):
        sim, memory, bus = make_bus()
        memory.load(0x100, [9])
        result = run_txn(sim, bus, Transaction(BusOp.SWAP, 0x100, "m", data=1))
        assert result.data == 9
        assert memory.peek(0x100) == 1
        assert result.latency == (1 + 1 + 12) * 20

    def test_back_to_back_masters_serialize(self):
        sim, _memory, bus = make_bus()
        ends = []

        def master(name):
            result = yield from bus.transact(Transaction(BusOp.READ, 0x0, name))
            ends.append(result.end_time)

        sim.process(master("a"))
        sim.process(master("b"))
        sim.run()
        assert ends == [160, 320]


class TestDataMovement:
    def test_write_then_read(self):
        sim, memory, bus = make_bus()
        run_txn(sim, bus, Transaction(BusOp.WRITE, 0x200, "m", data=55))
        result = run_txn(sim, bus, Transaction(BusOp.READ, 0x200, "m"))
        assert result.data == 55

    def test_write_line_then_read_line(self):
        sim, _memory, bus = make_bus()
        payload = list(range(8))
        run_txn(sim, bus, Transaction(BusOp.WRITE_LINE, 0x200, "m", data=payload))
        result = run_txn(sim, bus, Transaction(BusOp.READ_LINE, 0x200, "m"))
        assert result.data == payload

    def test_commit_runs_before_release(self):
        sim, _memory, bus = make_bus()
        holder_at_commit = []

        def commit(_result):
            holder_at_commit.append(bus.arbiter.holder)

        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"), commit=commit)
        assert holder_at_commit == ["m"]


class TestSnooping:
    def test_own_transactions_not_snooped(self):
        snooper = StubSnooper("m")
        sim, _memory, bus = make_bus([snooper])
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        assert snooper.seen == []

    def test_observe_sees_everything(self):
        snooper = StubSnooper("m")
        sim, _memory, bus = make_bus([snooper])
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        assert snooper.observed == [BusOp.READ]

    def test_foreign_transactions_snooped(self):
        snooper = StubSnooper("other")
        sim, _memory, bus = make_bus([snooper])
        run_txn(sim, bus, Transaction(BusOp.WRITE, 0x40, "m", data=1))
        assert snooper.seen == [(BusOp.WRITE, 0x40)]

    def test_shared_reply_sets_result_flag(self):
        snooper = StubSnooper("other", SnoopReply(SnoopAction.SHARED))
        sim, _memory, bus = make_bus([snooper])
        result = run_txn(sim, bus, Transaction(BusOp.READ_LINE, 0x0, "m"))
        assert result.shared

    def test_supply_overrides_memory(self):
        supplied = [100 + i for i in range(8)]
        snooper = StubSnooper(
            "owner", SnoopReply(SnoopAction.SUPPLY, supply_data=supplied)
        )
        sim, memory, bus = make_bus([snooper])
        memory.load(0x0, [0] * 8)
        result = run_txn(sim, bus, Transaction(BusOp.READ_LINE, 0x0, "m"))
        assert result.data == supplied
        assert result.supplied
        assert result.shared
        # dirty sharing: memory must NOT have been updated
        assert memory.peek(0x0) == 0

    def test_retry_backs_off_until_completion(self):
        sim, memory, bus = make_bus()

        class DrainingSnooper(Snooper):
            master_name = "owner"

            def __init__(self):
                self.completion = None

            def snoop(self, txn):
                if self.completion is None:
                    self.completion = sim.event()
                    return SnoopReply(SnoopAction.RETRY, completion=self.completion)
                return SnoopReply.OK

        snooper = DrainingSnooper()
        bus.attach_snooper(snooper)

        def drainer():
            # Write back "dirty" data at DRAIN priority, then release.
            yield sim.timeout(100)
            yield from bus.transact(
                Transaction(BusOp.WRITE_LINE, 0x0, "owner", data=[7] * 8),
                priority=Priority.DRAIN,
            )
            snooper.completion.succeed()

        sim.process(drainer())
        result = run_txn(sim, bus, Transaction(BusOp.READ_LINE, 0x0, "m"))
        assert result.retries == 1
        assert result.data == [7] * 8
        assert bus.stats.get("bus.retries") == 1

    def test_detach_snooper(self):
        snooper = StubSnooper("other")
        sim, _memory, bus = make_bus([snooper])
        bus.detach_snooper(snooper)
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        assert snooper.seen == []


class StormSnooper(Snooper):
    """ARTRY with an instantly-satisfied completion, forever."""

    master_name = "owner"

    def __init__(self, sim):
        self.sim = sim

    def snoop(self, txn):
        completion = self.sim.event()
        completion.succeed()
        return SnoopReply(SnoopAction.RETRY, completion=completion)


class TestLiveness:
    def test_retry_ceiling_raises_livelock_error(self):
        sim, _memory, bus = make_bus(max_retries=5)
        bus.attach_snooper(StormSnooper(sim))
        proc = sim.process(bus.transact(Transaction(BusOp.READ, 0x40, "m")))
        with pytest.raises(LivelockError) as exc_info:
            sim.run()
        error = exc_info.value
        assert error.master == "m"
        assert error.address == 0x40
        assert error.retries == 6
        assert "0x00000040" in str(error)

    def test_ceiling_none_disables_monitor(self):
        sim, _memory, bus = make_bus(max_retries=None)
        bus.attach_snooper(StormSnooper(sim))
        sim.process(bus.transact(Transaction(BusOp.READ, 0x40, "m")))
        # Bounded run: the spin continues without an error.
        with pytest.raises(Exception, match="max_events"):
            sim.run(max_events=5000)

    def test_default_ceiling_leaves_normal_retries_alone(self):
        sim, _memory, bus = make_bus()
        assert bus.max_retries == 1000

    def test_inflight_tenures_visible_while_backed_off(self):
        sim, _memory, bus = make_bus()

        class NeverDrains(Snooper):
            master_name = "owner"

            def snoop(self, txn):
                return SnoopReply(SnoopAction.RETRY, completion=sim.event())

        bus.attach_snooper(NeverDrains())
        sim.process(bus.transact(Transaction(BusOp.READ_LINE, 0x80, "m")))
        sim.run(until=500, detect_deadlock=False)
        (state,) = bus.inflight_tenures()
        assert state.master == "m"
        assert state.phase == "backed-off"
        assert state.waiting_on == ("owner",)
        assert state.retries == 1
        assert "waiting-on=owner" in state.describe()

    def test_bus_released_when_tenure_raises(self):
        sim, _memory, bus = make_bus()

        def bad_commit(_result):
            raise RuntimeError("commit exploded")

        proc = sim.process(
            bus.transact(Transaction(BusOp.READ, 0x0, "m"), commit=bad_commit)
        )
        proc.add_callback(lambda _e: None)  # swallow the failure
        sim.run()
        # The arbiter must not be left held by the dead tenure...
        assert bus.arbiter.holder is None
        assert bus.inflight_tenures() == []
        # ...so another master can still transact.
        result = run_txn(sim, bus, Transaction(BusOp.READ, 0x20, "n"))
        assert result is not None

    def test_completions_count_tenures(self):
        sim, _memory, bus = make_bus()
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        run_txn(sim, bus, Transaction(BusOp.WRITE, 0x0, "m", data=1))
        assert bus.completions == 2


class TestStats:
    def test_txn_counters(self):
        sim, _memory, bus = make_bus()
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        run_txn(sim, bus, Transaction(BusOp.WRITE, 0x0, "m", data=1))
        assert bus.stats.get("bus.txns") == 2
        assert bus.stats.get("bus.op.read") == 1
        assert bus.stats.get("bus.op.write") == 1

    def test_busy_ticks_accumulate(self):
        sim, _memory, bus = make_bus()
        run_txn(sim, bus, Transaction(BusOp.READ, 0x0, "m"))
        assert bus.stats.get("bus.busy_ticks") == 160


class TestCancellationAccounting:
    """Grant-time validate-cancels are not ARTRYs and count separately."""

    def test_cancel_counts_separately_from_artry(self):
        sim, _memory, bus = make_bus()
        proc = sim.process(
            bus.transact(
                Transaction(BusOp.READ, 0x0, "m"), validate=lambda: False
            )
        )
        sim.run()
        assert proc.value is None
        assert bus.stats.get("bus.cancelled") == 1
        assert bus.stats.get("bus.retries") == 0
        assert bus.completions == 0

    def test_cancellation_storm_raises_its_own_livelock(self):
        # A master whose tenure premise keeps vanishing at grant time
        # makes no progress, but txn.retries never moves (no ARTRY is
        # involved) — the old ceiling was blind to it.  The message
        # must name the actual failure, not a retry loop.
        sim, _memory, bus = make_bus(max_retries=5)

        def driver():
            while True:
                result = yield from bus.transact(
                    Transaction(BusOp.READ, 0x0, "m"), validate=lambda: False
                )
                assert result is None

        sim.process(driver())
        with pytest.raises(LivelockError) as exc_info:
            sim.run()
        error = exc_info.value
        assert error.master == "m"
        assert error.retries == 0  # zero ARTRYs: the counts disagree
        message = str(error)
        assert "cancellation storm" in message
        assert "validate-cancelled at grant 6 consecutive times" in message
        assert "ARTRY count: 0" in message
        assert "not an ARTRY retry loop" in message

    def test_completion_resets_the_cancel_streak(self):
        sim, _memory, bus = make_bus(max_retries=5)

        def driver():
            for _ in range(4):
                yield from bus.transact(
                    Transaction(BusOp.READ, 0x0, "m"), validate=lambda: False
                )
            yield from bus.transact(Transaction(BusOp.READ, 0x0, "m"))
            for _ in range(4):
                yield from bus.transact(
                    Transaction(BusOp.READ, 0x0, "m"), validate=lambda: False
                )

        sim.process(driver())
        sim.run()  # 4 + 4 cancels with a completion between: no storm
        assert bus.stats.get("bus.cancelled") == 8
        assert bus.completions == 1

    def test_artry_ceiling_message_reports_cancel_count(self):
        # The converse disagreement-proofing: an ARTRY livelock report
        # states how many grant-time cancels the master had, so the two
        # counters can never be conflated when reading a failure.
        sim, _memory, bus = make_bus(max_retries=2)
        bus.attach_snooper(StormSnooper(sim))
        sim.process(bus.transact(Transaction(BusOp.READ, 0x40, "m")))
        with pytest.raises(LivelockError) as exc_info:
            sim.run()
        message = str(exc_info.value)
        assert "livelocked retry loop" in message
        assert "validate-cancellations for m: 0" in message


class TestDetachDuringSnoopWindow:
    def test_detach_mid_window_keeps_the_window_consistent(self):
        # A snooper that detaches another snooper while the combinational
        # window resolves (fault-proxy teardown does this).  The window
        # iterates a snapshot, so every cache attached at the *start* of
        # the address phase is still consulted this tenure.
        sim, _memory, bus = make_bus()
        second = StubSnooper("second")

        class Detacher(Snooper):
            master_name = "detacher"

            def snoop(self, txn):
                if second in bus.snoopers:
                    bus.detach_snooper(second)
                return SnoopReply.OK

            def observe(self, txn):
                pass

        bus.attach_snooper(Detacher())
        bus.attach_snooper(second)
        run_txn(sim, bus, Transaction(BusOp.READ, 0x100, "m"))
        assert second.seen == [(BusOp.READ, 0x100)]
        assert second not in bus.snoopers
        # The next tenure really does skip the detached snooper.
        run_txn(sim, bus, Transaction(BusOp.READ, 0x200, "m"))
        assert second.seen == [(BusOp.READ, 0x100)]
