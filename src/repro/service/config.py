"""Service configuration: one frozen dataclass, JSON-round-trippable."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..errors import ConfigError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service instance needs.

    ``data_dir`` owns all persistent state: the journal
    (``journal.jsonl``), the sharded result cache (``cache/`` unless
    ``cache_dir`` points elsewhere — e.g. at a cache shared with local
    sweep runs), and the announce file (``service.json``, written after
    bind so wrappers learn the bound port when ``port=0``).

    Robustness knobs mirror the pool they configure: ``timeout_s`` is
    the per-attempt deadline, ``max_attempts`` bounds requeues of hung
    or crashed jobs, ``backoff_s``/``backoff_cap_s`` seed the
    deterministic capped exponential requeue delay.  ``max_queue``
    bounds *admitted-but-not-running* jobs — beyond it submissions are
    shed with ``429`` — and ``stall_threshold_s`` is the service
    watchdog's heartbeat limit for a busy worker.

    ``allow_probe`` gates the diagnostic ``probe`` job kind (sleep /
    crash / fail on demand); it exists for chaos drills and the smoke
    benchmarks, never for production traffic, so it is off by default
    and rejected at admission when disabled.
    """

    host: str = "127.0.0.1"
    port: int = 0
    data_dir: str = "service-data"
    cache_dir: Optional[str] = None
    workers: int = 2
    max_queue: int = 64
    timeout_s: Optional[float] = 300.0
    max_attempts: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    stall_threshold_s: float = 30.0
    watchdog_interval_s: float = 1.0
    #: long-poll ``?wait=`` ceiling per request
    max_wait_s: float = 30.0
    allow_probe: bool = False
    engine: str = "exact"

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def with_(self, **changes) -> "ServiceConfig":
        """A modified copy."""
        return replace(self, **changes)

    @property
    def resolved_cache_dir(self) -> str:
        """The result-cache root (inside ``data_dir`` by default)."""
        return self.cache_dir or os.path.join(self.data_dir, "cache")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.data_dir, "journal.jsonl")

    @property
    def announce_path(self) -> str:
        return os.path.join(self.data_dir, "service.json")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (for /stats and the announce file)."""
        return {
            "host": self.host,
            "port": self.port,
            "data_dir": self.data_dir,
            "cache_dir": self.resolved_cache_dir,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "stall_threshold_s": self.stall_threshold_s,
            "allow_probe": self.allow_probe,
            "engine": self.engine,
        }
