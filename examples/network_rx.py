#!/usr/bin/env python3
"""Network receive path with a coherent DMA engine (future work, built).

The paper closes by proposing to apply the wrapper methodology "to
emerging technologies that tightly integrate between a main processor
and specialized I/O processors such as network processors".  This
example builds that system:

* a NIC model DMAs incoming packets into a shared-memory receive ring;
* the PowerPC755 runs the "protocol stack": it polls the descriptor
  words (uncached), checksums each payload straight out of the shared
  ring — through its data cache — and frees the slot;
* because the DMA engine is an ordinary bus master, every wrapper and
  snoop-logic block sees its transfers: the CPU's cached copies of a
  reused ring slot are invalidated by the DMA write, with **zero**
  cache-management instructions in the driver.

The same run with hardware coherence disabled silently checksums stale
data — the I/O version of the paper's Table 2 problem — which the
script demonstrates at the end.

Run:  python examples/network_rx.py
"""

from repro.core import SCRATCH_BASE, SHARED_BASE, Platform, PlatformConfig
from repro.cpu import Assembler, preset_arm920t, preset_powerpc755
from repro.io import attach_nic

RING = SCRATCH_BASE + 0x400     # descriptors: uncacheable scratch
PAYLOAD = SHARED_BASE + 0x8000  # payloads: ordinary shared memory
N_SLOTS = 4
SLOT_BYTES = 64
N_PACKETS = 10
RESULTS = SCRATCH_BASE + 0x800  # uncached checksum table (host-visible)


def make_packets():
    return [
        [(p * 17 + i) & 0xFFFF for i in range(1 + p % (SLOT_BYTES // 4 - 1))]
        for p in range(N_PACKETS)
    ]


def build_stack_program(nic):
    """The protocol-stack task: poll, checksum, store result, free."""
    asm = Assembler(name="rx-stack")
    for packet_no in range(N_PACKETS):
        slot = packet_no % N_SLOTS
        asm.li(1, nic.descriptor_addr(slot))
        asm.label(f"poll_{packet_no}")
        asm.ld(2, 1)                      # uncached descriptor read
        asm.beq(2, 0, f"poll_{packet_no}")
        # checksum r2 words of payload (cached reads through the dcache)
        asm.li(3, nic.payload_addr(slot))
        asm.li(4, 0)
        asm.label(f"sum_{packet_no}")
        asm.ld(5, 3)
        asm.add(4, 4, 5)
        asm.addi(3, 3, 4)
        asm.subi(2, 2, 1)
        asm.bne(2, 0, f"sum_{packet_no}")
        asm.li(3, RESULTS + 4 * packet_no)
        asm.st(4, 3)                      # publish checksum (uncached)
        asm.st(0, 1)                      # free the slot
    asm.halt()
    return asm.assemble()


def run(hardware_coherence):
    platform = Platform(
        PlatformConfig(
            cores=(preset_powerpc755(), preset_arm920t()),
            hardware_coherence=hardware_coherence,
        )
    )
    nic = attach_nic(
        platform, ring_base=RING, payload_base=PAYLOAD,
        n_slots=N_SLOTS, slot_bytes=SLOT_BYTES,
    )
    idle = Assembler()
    idle.halt()
    if platform.snoop_logics[1] is not None:
        from repro.core import append_isr

        append_isr(idle, platform.mailbox_base(1))
    platform.load_programs(
        {"ppc755": build_stack_program(nic), "arm920t": idle.assemble()}
    )
    packets = make_packets()
    for packet in packets:
        nic.push_packet(packet)
    elapsed = platform.run()
    measured = [platform.memory.peek(RESULTS + 4 * p) for p in range(N_PACKETS)]
    expected = [sum(packet) & 0xFFFFFFFF for packet in packets]
    bad = [p for p in range(N_PACKETS) if measured[p] != expected[p]]
    return elapsed, bad


def main():
    print(f"NIC receive path: {N_PACKETS} packets through a "
          f"{N_SLOTS}-slot shared ring\n")

    elapsed, bad = run(hardware_coherence=True)
    print(f"with wrappers + snoop logic:   {elapsed:>7} ns, "
          f"{N_PACKETS - len(bad)}/{N_PACKETS} checksums correct")
    assert not bad, "coherent run must be correct"

    elapsed, bad = run(hardware_coherence=False)
    print(f"without hardware coherence:    {elapsed:>7} ns, "
          f"{N_PACKETS - len(bad)}/{N_PACKETS} checksums correct "
          f"(stale slots: {bad})")
    assert bad, "the incoherent run should corrupt reused slots"
    print(
        "\nReused ring slots go stale without snooping: the CPU checksums\n"
        "its cached copy of the previous packet. The paper's wrappers fix\n"
        "exactly this, with no cache management in the driver."
    )


if __name__ == "__main__":
    main()
