"""Unit tests for the yield-point CFG and the may-held dataflow."""

import textwrap

import pytest

from repro.lint.concur.model import ConcurAnalysis


def analyze(make_project, source, path="bus.py"):
    project = make_project({path: textwrap.dedent(source)})
    return ConcurAnalysis(project)


def func(analysis, name):
    (fi,) = analysis.by_name[name]
    return fi


class TestCfgShape:
    def test_straight_line_reaches_exit(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.sim.timeout(1)
                    return None
            """,
        )
        fi = func(analysis, "transact")
        cfg = fi.cfg
        assert fi.is_generator
        # Entry reaches exit through the statement nodes.
        reachable = set()
        work = [cfg.entry]
        while work:
            node = work.pop()
            if node in reachable:
                continue
            reachable.add(node)
            work.extend(succ for succ, _kind in node.succ)
        assert cfg.exit in reachable
        assert cfg.raise_exit in reachable  # the yield may raise

    def test_loop_has_back_edge(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def spin(self):
                    while True:
                        yield self.sim.timeout(1)
            """,
        )
        cfg = func(analysis, "spin").cfg
        # Some node's successor set points back at an already-seen node.
        seen = []
        work = [cfg.entry]
        back = False
        while work:
            node = work.pop()
            if node in seen:
                continue
            seen.append(node)
            for succ, _kind in node.succ:
                if succ in seen:
                    back = True
                work.append(succ)
        assert back


class TestMayHeld:
    def test_finally_release_kills_exception_edge(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.arbiter.request(txn, 0)
                    try:
                        yield self.sim.timeout(1)
                    finally:
                        self.arbiter.release(txn)
            """,
        )
        fi = func(analysis, "transact")
        held = analysis.may_held(fi)
        assert not held[fi.cfg.exit]
        assert not held[fi.cfg.raise_exit]

    def test_unguarded_hold_leaks_on_exception(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.arbiter.request(txn, 0)
                    yield self.sim.timeout(1)
                    self.arbiter.release(txn)
            """,
        )
        fi = func(analysis, "transact")
        held = analysis.may_held(fi)
        assert not held[fi.cfg.exit]  # the normal path does release
        assert {key[0] for key in held[fi.cfg.raise_exit]} == {"bus-tenure"}

    def test_blocking_acquire_own_failure_is_not_held(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.arbiter.request(txn, 0)
                    self.arbiter.release(txn)
            """,
        )
        fi = func(analysis, "transact")
        held = analysis.may_held(fi)
        # The only exception edges are the request's own (never granted)
        # and the release call's; only the latter carries the grant.
        assert {key[0] for key in held[fi.cfg.raise_exit]} <= {"bus-tenure"}
        assert not held[fi.cfg.exit]

    def test_transfer_clears_held_on_normal_path(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Split:
                def transact(self, txn):
                    yield self._acquire_slot()
                    self.sim.process(self._data_tenure(txn))
                    return None
            """,
        )
        fi = func(analysis, "transact")
        held = analysis.may_held(fi)
        assert not held[fi.cfg.exit]  # handed off, not leaked

    def test_acquire_sites_record_first_line(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.arbiter.request(txn, 0)
                    self.arbiter.release(txn)
            """,
        )
        fi = func(analysis, "transact")
        (key,) = fi.acquire_sites
        assert key[0] == "bus-tenure"
        assert fi.acquire_sites[key] == 4


class TestSummaries:
    def test_waits_summary_follows_yield_from(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Bus:
                def transact(self, txn):
                    yield self.arbiter.request(txn, 0)
                    self.arbiter.release(txn)

            class Ctrl:
                def read(self, addr):
                    value = yield from self.bus.transact(addr)
                    return value
            """,
        )
        fi = func(analysis, "read")
        assert "bus-tenure" in analysis.waits_summary(fi)

    def test_must_waits_meets_over_branches(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Worker:
                def run(self, fast):
                    if fast:
                        yield self.sim.timeout(1)
                    else:
                        yield self.arbiter.request(fast, 0)
                        self.arbiter.release(fast)
            """,
        )
        fi = func(analysis, "run")
        # One branch never arbitrates: nothing is a must-wait.
        assert analysis.must_waits(fi) == {}

    def test_ceiling_loop_marks_statements(self, make_project):
        analysis = analyze(
            make_project,
            """
            class Ctrl:
                def read(self, addr):
                    while True:
                        yield self.arbiter.request(addr, 0)
                        self.arbiter.release(addr)
                        self._check_retry_ceiling(addr)
                        break
            """,
        )
        fi = func(analysis, "read")
        assert fi.ceiling_stmts


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
