"""On-disk result cache, content-addressed by payload + version + engine.

Every cache entry is one JSON file ``<root>/<kk>/<sha256>.json`` —
**sharded** by the first two hex digits ``kk`` of its key, so a
campaign-scale cache (hundreds of thousands of entries) never turns
one directory into a linear-scan bottleneck, and so the campaign
service can spread shards across stores later without rehashing.  The
key is the SHA-256 of the canonical JSON encoding of::

    {"version": <repro.__version__>,
     "engine": {"name": <engine>, "version": <engine version>},
     "job": <job payload>}

Including the package version means any release invalidates every
cached result wholesale — the simulator's timing model may have
changed, and a stale hit would silently corrupt regenerated figures.
The engine fingerprint keeps results from different execution engines
apart: the batch engine reproduces the exact engine's counters but
carries no timing, so a batch result served to a latency figure would
poison it silently — with the engine in the key such a hit is
structurally impossible (``tests/exp/test_cache.py`` keeps it that
way).  Changing any field of the job spec changes the payload and
therefore the key, so distinct configurations can never collide.

Writes go through a temp file + :func:`os.replace` so a crashed or
concurrent run never leaves a torn entry.  Reads *validate*: an entry
that fails to JSON-decode or does not look like a cache entry (a dict
with ``version``/``job``/``result`` keys) is **quarantined** — moved to
``<root>/corrupt/<kk>/`` (the quarantine respects the shard layout)
for post-mortem — and reported as a miss, so one torn or truncated
file costs one re-simulation, never a crash and never a poisoned
figure.

Caches written before the shard layout stored entries flat at
``<root>/<sha256>.json``; those migrate transparently: a read that
misses in the shard checks the legacy flat path and relocates the file
(atomic :func:`os.replace`) into its shard before validating it, and
:meth:`ResultCache.migrate` sweeps everything in one pass.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = [
    "DEFAULT_ENGINE",
    "SHARD_PREFIX_LEN",
    "ResultCache",
    "canonical_payload",
    "content_key",
    "engine_tag",
]


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the analysis layer, which
    # imports this module, before __version__ is bound.
    from .. import __version__

    return __version__


#: the engine sweep jobs run under when none is named (the event kernel)
DEFAULT_ENGINE = "exact"


def engine_tag(engine: Optional[str] = None) -> Dict[str, Any]:
    """The ``{"name", "version"}`` key fragment for ``engine``.

    Resolved through the engine registry so a bumped engine version
    invalidates that engine's cached results and nobody else's.  The
    ``native`` flag is deliberately excluded: a compiled build of the
    same engine version is semantically identical, so its results are
    interchangeable with the pure-Python ones.
    """
    from ..engines import engine_fingerprint  # lazy: avoids an import cycle

    fp = engine_fingerprint(engine or DEFAULT_ENGINE)
    return {"name": fp["name"], "version": fp["version"]}


def canonical_payload(payload: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(
    payload: Dict[str, Any],
    version: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    """SHA-256 cache key of a job payload under ``version`` + ``engine``."""
    if version is None:
        version = _package_version()
    blob = canonical_payload(
        {"version": version, "engine": engine_tag(engine), "job": payload}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: number of hex digits of the key that name an entry's shard directory
SHARD_PREFIX_LEN = 2


class ResultCache:
    """A sharded directory of content-addressed JSON result files."""

    def __init__(
        self,
        root: str,
        version: Optional[str] = None,
        engine: Optional[str] = None,
    ):
        self.root = root
        self.version = version if version is not None else _package_version()
        #: the engine this cache's keys are scoped to
        self.engine = engine_tag(engine)
        #: entries moved to <root>/corrupt/ by this instance
        self.quarantined = 0
        #: legacy flat entries relocated into shards by this instance
        self.migrated = 0
        os.makedirs(self.root, exist_ok=True)

    @staticmethod
    def shard_of(key: str) -> str:
        """The shard directory name (2 hex digits) owning ``key``."""
        return key[:SHARD_PREFIX_LEN]

    def key_for(self, payload: Dict[str, Any]) -> str:
        """The cache key of ``payload`` under this cache's version+engine."""
        blob = canonical_payload(
            {"version": self.version, "engine": self.engine, "job": payload}
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> str:
        """Filesystem path of the (sharded) entry for ``key``.

        The shard directory is created on demand so callers may write
        to the returned path directly.
        """
        shard = os.path.join(self.root, self.shard_of(key))
        os.makedirs(shard, exist_ok=True)
        return os.path.join(shard, f"{key}.json")

    def _legacy_path_for(self, key: str) -> str:
        """Pre-shard flat location of ``key`` (migration source only)."""
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result for ``key``, or None on miss.

        A present-but-unreadable entry (truncated write, disk hiccup,
        manual tampering) is quarantined rather than crashing the sweep
        or silently masking the damage: the file moves to
        ``<root>/corrupt/<shard>/`` and the caller re-simulates.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            legacy = self._legacy_path_for(key)
            if os.path.exists(legacy):
                # Transparent migration: relocate the flat entry into
                # its shard, then validate it like any other read.
                try:
                    os.replace(legacy, path)
                    self.migrated += 1
                except OSError:
                    return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return None  # plain miss: nothing on disk for this key
        try:
            entry = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not self._valid_entry(entry):
            self._quarantine(path)
            return None
        return entry["result"]

    @staticmethod
    def _valid_entry(entry: Any) -> bool:
        """Schema check: the shape :meth:`put` writes, nothing less."""
        return (
            isinstance(entry, dict)
            and "result" in entry
            and "job" in entry
            and isinstance(entry.get("version"), str)
            and isinstance(entry.get("engine"), dict)
        )

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry to ``<root>/corrupt/<shard>/`` (best effort).

        The quarantine mirrors the shard layout so a forensic sweep of
        one shard's corruption never has to scan every other shard's
        casualties.
        """
        key = os.path.basename(path).rsplit(".", 1)[0]
        corrupt_dir = os.path.join(self.root, "corrupt", self.shard_of(key))
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, os.path.join(corrupt_dir, os.path.basename(path)))
        except OSError:
            # Last resort: drop it so the next run does not trip again.
            try:
                os.unlink(path)
            except OSError:
                pass
        self.quarantined += 1

    def put(self, key: str, payload: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Store ``result`` for ``key`` atomically.

        The payload is stored alongside the result so entries stay
        inspectable/debuggable with plain ``cat``.
        """
        entry = {
            "version": self.version,
            "engine": self.engine,
            "job": payload,
            "result": result,
        }
        path = self.path_for(key)  # creates the shard directory
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def migrate(self) -> int:
        """Relocate every legacy flat entry into its shard; count moved.

        Reads already migrate lazily; this sweeps the whole root in one
        pass (used at service startup so a warmed pre-shard cache is
        fully available before traffic arrives).
        """
        moved = 0
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            key = name.rsplit(".", 1)[0]
            target = self.path_for(key)
            try:
                os.replace(os.path.join(self.root, name), target)
                moved += 1
            except OSError:
                continue
        self.migrated += moved
        return moved

    def _shard_dirs(self):
        """Existing shard directories (never ``corrupt/``)."""
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if (
                len(name) == SHARD_PREFIX_LEN
                and os.path.isdir(path)
                and name != "corrupt"
            ):
                yield path

    def __len__(self) -> int:
        """Number of entries currently on disk (all shards + legacy)."""
        count = sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
        for shard in self._shard_dirs():
            count += sum(1 for n in os.listdir(shard) if n.endswith(".json"))
        return count
