"""Application kernels: realistic multi-processor programs on the API.

Three classic shared-memory kernels, each generated as assembly for an
arbitrary processor count and runnable under any coherence solution:

* :func:`run_reduction` — parallel array sum: each task sums its chunk
  of a shared array, publishes a partial, and task 0 combines them
  after a barrier.
* :func:`run_jacobi` — 1-D Jacobi relaxation: barrier-separated sweeps
  over a shared vector, with cross-cache traffic at partition
  boundaries (each task reads its neighbours' halo cells).
* :func:`run_token_ring` — message-passing latency: a token circulates
  through per-task uncached mailboxes; reports ns per hop.

All three verify their numeric result against a Python reference, so
running them *is* a coherence test; the software-solution variants show
where manual drain/invalidate calls must go in real code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.platform import LOCK_BASE, SHARED_BASE, Platform, PlatformConfig
from ..core.snoop_logic import append_isr
from ..cpu.assembler import Assembler, Program
from ..cpu.presets import CoreConfig, preset_generic
from ..errors import ConfigError
from ..sync.barrier import SenseBarrier
from ..sync.software_coherence import emit_drain_block, emit_invalidate_block

__all__ = ["KernelResult", "run_reduction", "run_jacobi", "run_token_ring"]

_BARRIER = LOCK_BASE
_ARRAY = SHARED_BASE
_PARTIALS = SHARED_BASE + 0x8000
_RESULT = SHARED_BASE + 0x9000
_MAILBOXES = LOCK_BASE + 0x100     # uncached token mailboxes
LINE_BYTES = 32


@dataclass
class KernelResult:
    """Outcome of one kernel run."""

    elapsed_ns: int
    value: int
    expected: int
    stats: Dict[str, int]
    platform: Optional[Platform] = None

    @property
    def correct(self) -> bool:
        """True when the computed result matches the reference."""
        return self.value == self.expected


def _default_cores(n: int) -> Sequence[CoreConfig]:
    return tuple(preset_generic(f"p{i}", "MESI") for i in range(n))


def _build_platform(n_cores, solution, cores=None) -> Platform:
    if solution not in ("disabled", "software", "proposed"):
        raise ConfigError(f"unknown solution {solution!r}")
    cores = tuple(cores) if cores is not None else _default_cores(n_cores)
    return Platform(
        PlatformConfig(
            cores=cores,
            hardware_coherence=(solution == "proposed"),
            shared_cacheable=(solution != "disabled"),
        )
    )


def _finish(asm: Assembler, platform: Platform, index: int) -> Program:
    asm.halt()
    if platform.snoop_logics[index] is not None:
        append_isr(asm, platform.mailbox_base(index))
    return asm.assemble()


def _read_result(platform: Platform, addr: int) -> int:
    """Read a shared word through a controller (caches may be warm)."""
    controller = platform.controllers[0]

    def reader():
        value = yield from controller.read(addr)
        return value

    proc = platform.sim.process(reader())
    platform.sim.run(detect_deadlock=False)
    return proc.value


# ---------------------------------------------------------------------------
# parallel reduction
# ---------------------------------------------------------------------------
def run_reduction(
    n_cores: int = 2,
    n_words: int = 64,
    solution: str = "proposed",
    cores: Optional[Sequence[CoreConfig]] = None,
    keep_platform: bool = False,
) -> KernelResult:
    """Sum ``n_words`` shared words across ``n_cores`` processors."""
    if n_words % n_cores:
        raise ConfigError("n_words must divide evenly across cores")
    platform = _build_platform(n_cores, solution, cores)
    data = [(i * 7 + 3) & 0xFFFF for i in range(n_words)]
    platform.memory.load(_ARRAY, data)
    chunk = n_words // n_cores
    barriers = [SenseBarrier(_BARRIER, n_cores) for _ in range(n_cores)]

    programs = {}
    for index in range(n_cores):
        asm = Assembler(name=f"reduce{index}")
        barrier = barriers[index]
        barrier.emit_init(asm)
        base = _ARRAY + 4 * index * chunk
        asm.li(1, base)
        asm.li(2, chunk)
        asm.li(3, 0)
        asm.label("sum")
        asm.ld(4, 1)
        asm.add(3, 3, 4)
        asm.addi(1, 1, 4)
        asm.subi(2, 2, 1)
        asm.bne(2, 0, "sum")
        # Publish my partial.  Partials are padded to one cache line
        # per task: without snooping hardware, two tasks write-allocating
        # the same line clobber each other's drained values (false
        # sharing) — a classic software-coherence pitfall this kernel's
        # tests originally caught live.
        asm.li(1, _PARTIALS + LINE_BYTES * index)
        asm.st(3, 1)
        if solution == "software":
            asm.dcbf(1)
            asm.sync()
        barrier.emit_wait(asm)
        if index == 0:
            # combine: partials live in other caches / memory
            if solution == "software":
                emit_invalidate_block(
                    asm, _PARTIALS, n_cores, LINE_BYTES, label_stem="inv",
                )
            asm.li(1, _PARTIALS)
            asm.li(2, n_cores)
            asm.li(3, 0)
            asm.label("combine")
            asm.ld(4, 1)
            asm.add(3, 3, 4)
            asm.addi(1, 1, LINE_BYTES)
            asm.subi(2, 2, 1)
            asm.bne(2, 0, "combine")
            asm.li(1, _RESULT)
            asm.st(3, 1)
            if solution == "software":
                asm.dcbf(1)
                asm.sync()
        programs[platform.config.cores[index].name] = _finish(asm, platform, index)
    platform.load_programs(programs)
    elapsed = platform.run()
    value = _read_result(platform, _RESULT)
    return KernelResult(
        elapsed_ns=elapsed,
        value=value,
        expected=sum(data) & 0xFFFFFFFF,
        stats=platform.stats.as_dict(),
        platform=platform if keep_platform else None,
    )


# ---------------------------------------------------------------------------
# 1-D Jacobi relaxation
# ---------------------------------------------------------------------------
def run_jacobi(
    n_cores: int = 2,
    n_cells: int = 32,
    sweeps: int = 4,
    solution: str = "proposed",
    cores: Optional[Sequence[CoreConfig]] = None,
) -> KernelResult:
    """Barrier-separated sweeps of ``x[i] = (x[i-1] + x[i+1]) / 2``.

    Uses two shared buffers (ping/pong).  Division by two is a shift;
    all arithmetic stays integral.  Interior cells only; the two
    boundary cells are fixed.
    """
    if n_cells % n_cores:
        raise ConfigError("n_cells must divide evenly across cores")
    chunk_bytes = 4 * (n_cells // n_cores)
    if solution == "software" and chunk_bytes % LINE_BYTES:
        raise ConfigError(
            "software coherence requires line-aligned partitions "
            f"(chunk of {chunk_bytes} bytes vs {LINE_BYTES}-byte lines): "
            "unaligned chunks false-share boundary lines"
        )
    platform = _build_platform(n_cores, solution, cores)
    src_base = _ARRAY
    dst_base = _ARRAY + 4 * n_cells
    initial = [0] * n_cells
    initial[0] = 1024
    initial[-1] = 1024
    platform.memory.load(src_base, initial)
    platform.memory.load(dst_base, initial)
    chunk = n_cells // n_cores
    barriers = [SenseBarrier(_BARRIER, n_cores) for _ in range(n_cores)]
    buffer_words = 2 * n_cells
    buffer_lines = (4 * buffer_words + LINE_BYTES - 1) // LINE_BYTES

    programs = {}
    for index in range(n_cores):
        asm = Assembler(name=f"jacobi{index}")
        barriers[index].emit_init(asm)
        for sweep in range(sweeps):
            source = src_base if sweep % 2 == 0 else dst_base
            dest = dst_base if sweep % 2 == 0 else src_base
            if solution == "software":
                # Discard stale copies of both buffers before reading.
                emit_invalidate_block(
                    asm, _ARRAY, buffer_lines, LINE_BYTES,
                    label_stem=f"inv{index}_{sweep}",
                )
            lo = max(1, index * chunk)
            hi = min(n_cells - 1, (index + 1) * chunk)
            for cell in range(lo, hi):
                asm.li(1, source + 4 * (cell - 1))
                asm.ld(2, 1)
                asm.ld(3, 1, 8)
                asm.add(2, 2, 3)
                asm.shr(2, 2, 1)
                asm.li(1, dest + 4 * cell)
                asm.st(2, 1)
            if solution == "software":
                emit_drain_block(
                    asm, _ARRAY, buffer_lines, LINE_BYTES,
                    label_stem=f"drain{index}_{sweep}",
                )
            barriers[index].emit_wait(asm)
        programs[platform.config.cores[index].name] = _finish(asm, platform, index)
    platform.load_programs(programs)
    elapsed = platform.run()

    # Python reference.
    ref_src, ref_dst = list(initial), list(initial)
    for _sweep in range(sweeps):
        for cell in range(1, n_cells - 1):
            ref_dst[cell] = (ref_src[cell - 1] + ref_src[cell + 1]) // 2
        ref_src, ref_dst = ref_dst, ref_src
    final_base = src_base if sweeps % 2 == 0 else dst_base
    # Probe near the boundary, where the diffusion front arrives first
    # (the centre stays zero for small sweep counts).
    probe = min(2, n_cells - 2)
    value = _read_result(platform, final_base + 4 * probe)
    return KernelResult(
        elapsed_ns=elapsed,
        value=value,
        expected=ref_src[probe],
        stats=platform.stats.as_dict(),
    )


# ---------------------------------------------------------------------------
# token ring
# ---------------------------------------------------------------------------
def run_token_ring(
    n_cores: int = 3,
    laps: int = 4,
    solution: str = "proposed",
    cores: Optional[Sequence[CoreConfig]] = None,
) -> KernelResult:
    """Pass a counter token around the ring ``laps`` times.

    Mailboxes are uncached (message-passing over the bus); the token
    value increments at each hop, so the final value counts hops.
    """
    platform = _build_platform(n_cores, solution, cores)
    programs = {}
    hops = n_cores * laps
    for index in range(n_cores):
        asm = Assembler(name=f"ring{index}")
        my_box = _MAILBOXES + 4 * index
        next_box = _MAILBOXES + 4 * ((index + 1) % n_cores)
        asm.li(1, my_box)
        asm.li(2, next_box)
        for lap in range(laps):
            if index == 0 and lap == 0:
                asm.li(3, 1)          # originate the token (value 1)
            else:
                # Token value delivered to (index, lap): hops so far + 1.
                asm.li(4, lap * n_cores + index + 1)
                asm.label(f"wait_{lap}")
                asm.delay(4)
                asm.ld(3, 1)
                asm.bne(3, 4, f"wait_{lap}")
            asm.addi(3, 3, 1)
            asm.st(3, 2)              # pass it on, incremented
        asm.halt()
        programs[platform.config.cores[index].name] = asm.assemble()
    # Token math: box values are hop counters; the final delivery back
    # to box 0 after `laps` laps carries n_cores*laps (+1 origination).
    platform.load_programs(programs)
    elapsed = platform.run()
    value = platform.memory.peek(_MAILBOXES)  # uncached: host-visible
    return KernelResult(
        elapsed_ns=elapsed,
        value=value,
        expected=hops + 1,
        stats=platform.stats.as_dict(),
    )
