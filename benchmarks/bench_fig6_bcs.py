"""Figure 6: best-case scenario (only the ARM task enters the CS).

The proposed solution keeps the block cached across lock tenures while
the software solution drains and refetches every time, so the speedup
grows with the number of accessed cache lines — 38.22 % over software
at 32 lines, exec_time = 1 in the paper (we measure ~40 %).
"""

from conftest import report, run_once

from repro.analysis import figure6_bcs

LINE_COUNTS = (1, 2, 4, 8, 16, 32)
EXEC_TIMES = (1, 2, 4)
ITERATIONS = 8


def test_figure6_bcs(benchmark):
    figure = run_once(
        benchmark,
        figure6_bcs,
        line_counts=LINE_COUNTS,
        exec_times=EXEC_TIMES,
        iterations=ITERATIONS,
    )
    report(benchmark, "Figure 6 - Best case results", figure.render())
    for exec_time in EXEC_TIMES:
        for lines in LINE_COUNTS:
            proposed = figure.get(f"proposed et={exec_time}", lines)
            software = figure.get(f"software et={exec_time}", lines)
            assert proposed < software  # proposed wins everywhere in BCS
    # The headline: speedup vs software grows with line count...
    speedups = [
        1 - figure.get("proposed et=1", lines) / figure.get("software et=1", lines)
        for lines in LINE_COUNTS
    ]
    assert speedups == sorted(speedups)
    # ...reaching the paper's ~38 % ballpark at 32 lines.
    assert 0.30 <= speedups[-1] <= 0.50
