"""Figure regeneration: the data behind Figures 5-8.

Each ``figure*`` function runs the microbenchmark sweep the paper plots
and returns a :class:`FigureData` whose series mirror the paper's
curves (execution-time ratios against the cache-disabled baseline for
Figures 5-7, against the software solution for Figure 8).  ``render()``
prints the same rows/series as the figures, as text.

These sweeps are complete simulations; the benchmark harness under
``benchmarks/`` calls them with the default (paper) parameters, tests
use reduced ones.

Every sweep goes through :mod:`repro.exp`: the figure functions build a
flat list of :class:`~repro.exp.MicrobenchJob` objects and hand it to a
:class:`~repro.exp.SweepRunner` (pass one via ``runner=`` to fan jobs
out over a worker pool and/or cache results on disk; the default is a
fresh serial, uncached runner).  Results come back in submission order,
so parallel and serial runs produce byte-identical figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exp import MicrobenchJob, SweepRunner, run_jobs
from ..workloads.microbench import MicrobenchSpec

__all__ = [
    "Series",
    "FigureData",
    "figure5_wcs",
    "figure6_bcs",
    "figure7_tcs",
    "figure8_miss_penalty",
    "scenario_figure",
    "DEFAULT_LINE_COUNTS",
    "DEFAULT_EXEC_TIMES",
    "DEFAULT_PENALTIES",
]

DEFAULT_LINE_COUNTS = (1, 2, 4, 8, 16, 32)
DEFAULT_EXEC_TIMES = (1, 2, 4)
DEFAULT_PENALTIES = (13, 26, 48, 72, 96)


@dataclass
class Series:
    """One curve: a label and its y value per x."""

    name: str
    points: Dict[int, float] = field(default_factory=dict)


@dataclass
class FigureData:
    """A figure's worth of curves plus axis metadata."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series]
    notes: str = ""

    def xs(self) -> List[int]:
        """Sorted union of x values across series."""
        values = set()
        for s in self.series:
            values.update(s.points)
        return sorted(values)

    def get(self, series_name: str, x: int) -> float:
        """Value of one series at one x (KeyError when absent)."""
        for s in self.series:
            if s.name == series_name:
                return s.points[x]
        raise KeyError(series_name)

    def render(self) -> str:
        """The figure as an aligned text table (x columns, series rows)."""
        xs = self.xs()
        name_width = max((len(s.name) for s in self.series), default=8)
        header = f"{'':{name_width}s} | " + " ".join(f"{x:>7d}" for x in xs)
        rule = "-" * len(header)
        rows = [self.title, f"x: {self.xlabel}   y: {self.ylabel}", header, rule]
        for s in self.series:
            cells = " ".join(
                f"{s.points[x]:7.3f}" if x in s.points else f"{'-':>7s}"
                for x in xs
            )
            rows.append(f"{s.name:{name_width}s} | {cells}")
        if self.notes:
            rows.append(self.notes)
        return "\n".join(rows)


def scenario_figure(
    scenario: str,
    line_counts: Sequence[int] = DEFAULT_LINE_COUNTS,
    exec_times: Sequence[int] = DEFAULT_EXEC_TIMES,
    iterations: int = 8,
    title: str = "",
    runner: Optional[SweepRunner] = None,
    **spec_overrides,
) -> FigureData:
    """Figures 5-7 generic sweep: ratio of execution time vs disabled.

    One "software" and one "proposed" series per exec_time, normalised
    per (lines, exec_time) cell to the cache-disabled run — exactly the
    y axis of Figures 5-7.
    """
    series: Dict[str, Series] = {}
    for exec_time in exec_times:
        for solution in ("software", "proposed"):
            name = f"{solution} et={exec_time}"
            series[name] = Series(name)
    jobs: List[MicrobenchJob] = []
    slots: List[Tuple[int, int, str]] = []
    for exec_time in exec_times:
        for lines in line_counts:
            base_spec = MicrobenchSpec(
                scenario=scenario, solution="disabled", lines=lines,
                exec_time=exec_time, iterations=iterations, **spec_overrides,
            )
            for solution in ("disabled", "software", "proposed"):
                spec = (
                    base_spec if solution == "disabled"
                    else base_spec.with_(solution=solution)
                )
                jobs.append(MicrobenchJob(spec))
                slots.append((exec_time, lines, solution))
    elapsed = {
        slot: result["elapsed_ns"]
        for slot, result in zip(slots, run_jobs(jobs, runner))
    }
    for exec_time in exec_times:
        for lines in line_counts:
            baseline = elapsed[(exec_time, lines, "disabled")]
            for solution in ("software", "proposed"):
                series[f"{solution} et={exec_time}"].points[lines] = (
                    elapsed[(exec_time, lines, solution)] / baseline
                )
    return FigureData(
        title=title or f"{scenario.upper()}: execution-time ratio vs cache-disabled",
        xlabel="# of accessed cache lines per iteration",
        ylabel="ratio of execution time (1.0 = data cache disabled)",
        series=list(series.values()),
    )


def figure5_wcs(**kwargs) -> FigureData:
    """Figure 5: worst-case scenario sweep."""
    kwargs.setdefault("title", "Figure 5 - Worst case results")
    return scenario_figure("wcs", **kwargs)


def figure6_bcs(**kwargs) -> FigureData:
    """Figure 6: best-case scenario sweep."""
    kwargs.setdefault("title", "Figure 6 - Best case results")
    return scenario_figure("bcs", **kwargs)


def figure7_tcs(**kwargs) -> FigureData:
    """Figure 7: typical-case scenario sweep."""
    kwargs.setdefault("title", "Figure 7 - Typical case results")
    return scenario_figure("tcs", **kwargs)


def figure8_miss_penalty(
    penalties: Sequence[int] = DEFAULT_PENALTIES,
    line_counts: Sequence[int] = (1, 32),
    scenarios: Sequence[str] = ("wcs", "tcs", "bcs"),
    exec_time: int = 1,
    iterations: int = 8,
    runner: Optional[SweepRunner] = None,
    **spec_overrides,
) -> FigureData:
    """Figure 8: proposed/software ratio as the miss penalty grows.

    x is the burst miss penalty in bus cycles (13 is the Table 4
    default); y is proposed execution time relative to the software
    solution at the same penalty (the paper's Fig 8 normalisation).
    """
    data = FigureData(
        title="Figure 8 - Results according to miss penalty",
        xlabel="miss penalty (bus cycles per 8-word burst)",
        ylabel="execution-time ratio (1.0 = software solution)",
        series=[],
    )
    jobs: List[MicrobenchJob] = []
    slots: List[Tuple[str, int, int, str]] = []
    for scenario in scenarios:
        for lines in line_counts:
            for penalty in penalties:
                spec = MicrobenchSpec(
                    scenario=scenario, solution="software", lines=lines,
                    exec_time=exec_time, iterations=iterations,
                    **spec_overrides,
                )
                for solution in ("software", "proposed"):
                    jobs.append(
                        MicrobenchJob(
                            spec.with_(solution=solution), miss_penalty=penalty
                        )
                    )
                    slots.append((scenario, lines, penalty, solution))
    elapsed = {
        slot: result["elapsed_ns"]
        for slot, result in zip(slots, run_jobs(jobs, runner))
    }
    for scenario in scenarios:
        for lines in line_counts:
            series = Series(f"{scenario} lines={lines}")
            for penalty in penalties:
                series.points[penalty] = (
                    elapsed[(scenario, lines, penalty, "proposed")]
                    / elapsed[(scenario, lines, penalty, "software")]
                )
            data.series.append(series)
    return data
