"""Batch-engine faithfulness: the acceptance sweep, as a tier-1 test.

The batch engine's contract is that on any serialised trace every
counter except the timing-only ``bus.busy*`` keys matches the exact
engine, as do the final per-master line-state occupancy and every
per-access value (loaded words, pre-swap values).  This suite runs
that comparison over all five generated workload families crossed
with all six protocols (homogeneous pairs), plus heterogeneous mixes
that exercise the reduction wrappers and the i486's split
write-back/write-through (MESI + SI) configuration.

Small caches force evictions and write-backs so the replacement and
drain paths are compared, not just the hit fast path.
"""

import pytest

from repro.core.platform import PlatformConfig
from repro.cpu.presets import preset_generic, preset_intel486
from repro.engines import get_engine, serialize_workload

#: timing-only counters the statistics-only engines do not model
TIMING_PREFIXES = ("bus.busy",)

#: the reducible protocols; SI is write-through-only and enters the
#: sweep through the i486's protocol_wt split below — six in total
PROTOCOLS = ("MEI", "MSI", "MESI", "MOESI", "DRAGON")

FAMILIES = {
    "racy": {"kind": "racy", "n": 120, "footprint_words": 16, "seed": 11},
    "false-sharing": {"kind": "false-sharing", "n": 120, "lines": 3,
                      "seed": 5},
    "lock-contention": {"kind": "lock-contention", "n_acquires": 10,
                        "seed": 3},
    "hotspot": {"kind": "hotspot", "n": 150, "footprint_words": 64,
                "seed": 7},
    "producer-consumer": {"kind": "producer-consumer", "n_items": 30},
}


def _strip_timing(stats):
    return {
        k: v for k, v in stats.items()
        if not any(k.startswith(p) for p in TIMING_PREFIXES)
    }


def _pair_config(p0, p1):
    # 1 KB 2-way caches: tiny enough that every family evicts.
    cores = (
        preset_generic("p0", p0, cache_size=1024).with_(cache_ways=2),
        preset_generic("p1", p1, cache_size=1024).with_(cache_ways=2),
    )
    return PlatformConfig(cores=cores, hardware_coherence=True)


def assert_equivalent(config, workload):
    accesses = serialize_workload(workload)
    exact = get_engine("exact").run(config, accesses)
    batch = get_engine("batch").run(config, accesses)
    assert batch.accesses == exact.accesses == len(accesses)
    assert _strip_timing(batch.stats) == _strip_timing(exact.stats)
    assert batch.line_states == exact.line_states
    assert batch.values == exact.values


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_family_protocol_sweep(protocol, family):
    assert_equivalent(_pair_config(protocol, protocol), FAMILIES[family])


@pytest.mark.parametrize(
    "pair", [("MESI", "MEI"), ("MOESI", "MSI"), ("MOESI", "MEI")]
)
def test_heterogeneous_mixes_through_the_wrappers(pair):
    # Reduction wrappers rewrite bus ops (read -> read-with-intent) and
    # clamp shared modes; the batch engine must replay those conversions.
    assert_equivalent(
        _pair_config(*pair),
        {"kind": "false-sharing", "n": 140, "lines": 4, "seed": 9},
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_i486_split_writeback_writethrough(family):
    # The Enhanced i486 preset runs MESI on write-back lines and SI on
    # write-through regions — the protocol_wt split.
    config = PlatformConfig(
        cores=(
            preset_intel486("i486").with_(cache_size=1024, cache_ways=2),
            preset_generic("p1", "MESI", cache_size=1024).with_(cache_ways=2),
        ),
        hardware_coherence=True,
    )
    assert_equivalent(config, FAMILIES[family])


def test_software_coherence_mode():
    # hardware_coherence=False: no snooping, no wrappers — the batch
    # engine must still agree on hits/misses/fills.
    config = PlatformConfig(
        cores=(
            preset_generic("p0", "MESI", cache_size=1024),
            preset_generic("p1", "MESI", cache_size=1024),
        ),
        hardware_coherence=False,
    )
    assert_equivalent(config, {"kind": "hotspot", "n": 100,
                               "footprint_words": 32, "seed": 2})
