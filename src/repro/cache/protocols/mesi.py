"""The MESI protocol (Illinois/Intel-style).

Adds the Exclusive state: a read miss with the shared signal deasserted
installs in E, making the first write silent.  This is the protocol the
Write-back Enhanced Intel486 uses for its write-back lines and the one
Section 2 removes states from when integrating with MEI or MSI peers.
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["MESIProtocol"]


class MESIProtocol(CoherenceProtocol):
    """Modified / Exclusive / Shared / Invalid."""

    name = "MESI"
    states = frozenset(
        {State.MODIFIED, State.EXCLUSIVE, State.SHARED, State.INVALID}
    )
    uses_shared_signal = True
    supports_supply = False

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        if exclusive:
            return State.MODIFIED
        return State.SHARED if shared else State.EXCLUSIVE

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state is State.MODIFIED:
            return State.MODIFIED, WriteAction.NONE
        if state is State.EXCLUSIVE:
            return State.MODIFIED, WriteAction.NONE
        if state is State.SHARED:
            return State.MODIFIED, WriteAction.UPGRADE
        raise ProtocolError(f"MESI write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        if op is SnoopOp.READ:
            if state is State.MODIFIED:
                # Flush, then both caches share the line.
                return SnoopOutcome(State.SHARED, drain=True)
            return SnoopOutcome(State.SHARED, assert_shared=True)
        if state is State.MODIFIED:
            return SnoopOutcome(State.INVALID, drain=True)
        return SnoopOutcome(State.INVALID)
