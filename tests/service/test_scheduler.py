"""Scheduler admission discipline and recovery, without booting workers.

Everything here exercises the pure decision layer: payloads are
admitted, deduped, answered from cache, shed or refused, and journal
lines are written — but the pool is never started, so no simulation
runs.  The full pipeline (with real workers and real sockets) lives in
``test_api.py``.
"""

import pytest

from repro.errors import ConfigError
from repro.service.config import ServiceConfig
from repro.service.scheduler import (
    DrainingError,
    QueueFullError,
    Scheduler,
)
from repro.service.state import load_journal


def make_scheduler(tmp_path, **overrides) -> Scheduler:
    defaults = dict(
        data_dir=str(tmp_path), workers=1, allow_probe=True, max_queue=4
    )
    defaults.update(overrides)
    return Scheduler(ServiceConfig(**defaults))


def probe(nonce: int) -> dict:
    return {"kind": "probe", "behavior": "ok", "nonce": nonce}


class TestAdmission:
    def test_accepts_and_journals(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        verdict = scheduler.submit(probe(1))
        assert verdict["status"] == "queued"
        entries = load_journal(scheduler.config.journal_path)
        assert verdict["job_id"] in entries
        assert not entries[verdict["job_id"]].cacheable
        assert scheduler.queue_depth() == 1
        scheduler.shutdown()

    def test_job_id_is_the_content_key(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        verdict = scheduler.submit(probe(1))
        canonical = scheduler.jobs[verdict["job_id"]].payload
        assert verdict["job_id"] == scheduler.cache.key_for(canonical)
        scheduler.shutdown()

    def test_duplicate_submission_dedups(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        first = scheduler.submit(probe(1))
        second = scheduler.submit(probe(1))
        assert second["deduped"]
        assert second["job_id"] == first["job_id"]
        assert scheduler.jobs[first["job_id"]].submitters == 2
        assert scheduler.queue_depth() == 1  # still one pool item
        scheduler.shutdown()

    def test_cached_result_answers_without_a_worker(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        from repro.exp.jobs import job_from_payload

        payload = {"kind": "sequence", "protocols": ["mei", "mesi"],
                   "wrapped": True}
        canonical = job_from_payload(payload).payload()
        key = scheduler.cache.key_for(canonical)
        scheduler.cache.put(key, canonical, {"stale_reads": 0})
        verdict = scheduler.submit(payload)
        assert verdict == {"job_id": key, "status": "done", "cached": True}
        assert scheduler.jobs[key].served_from_cache
        assert scheduler.queue_depth() == 0
        scheduler.shutdown()

    def test_full_queue_sheds_with_retry_after(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_queue=2)
        scheduler.submit(probe(1))
        scheduler.submit(probe(2))
        with pytest.raises(QueueFullError) as exc:
            scheduler.submit(probe(3))
        assert exc.value.retry_after_s >= 1
        assert scheduler.stats_counters["shed"] == 1
        # The shed job was never journaled: nothing to recover.
        entries = load_journal(scheduler.config.journal_path)
        assert len(entries) == 2
        scheduler.shutdown()

    def test_draining_refuses(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.draining = True
        with pytest.raises(DrainingError):
            scheduler.submit(probe(1))
        scheduler.shutdown()

    def test_unknown_kind_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        with pytest.raises(ConfigError):
            scheduler.submit({"kind": "nonsense"})
        assert scheduler.stats_counters["rejected"] == 1
        scheduler.shutdown()

    def test_malformed_payload_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        with pytest.raises(ConfigError):
            scheduler.submit({"kind": "sequence"})  # no protocols
        scheduler.shutdown()

    def test_probe_gated_by_config(self, tmp_path):
        scheduler = make_scheduler(tmp_path, allow_probe=False)
        with pytest.raises(ConfigError, match="probe jobs are disabled"):
            scheduler.submit(probe(1))
        scheduler.shutdown()

    def test_retry_after_is_bounded(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_queue=1000, timeout_s=9999.0)
        for nonce in range(10):
            scheduler.submit(probe(nonce))
        assert 1 <= scheduler.retry_after_s() <= 60
        scheduler.shutdown()


class TestRecovery:
    def test_terminal_jobs_restore_without_requeue(self, tmp_path):
        first = make_scheduler(tmp_path)
        verdict = first.submit(probe(1))
        first.journal.terminal(
            verdict["job_id"], "done", result={"value": 0}, attempts=1
        )
        first.shutdown()

        second = make_scheduler(tmp_path)
        second.recover()
        entry = second.jobs[verdict["job_id"]]
        assert entry.status == "done"
        assert entry.recovered
        assert entry.result == {"value": 0}
        assert second.queue_depth() == 0
        assert second.stats_counters["recovered_done"] == 1
        second.shutdown()

    def test_pending_with_cached_result_completes_without_requeue(
        self, tmp_path
    ):
        from repro.exp.jobs import job_from_payload

        payload = {"kind": "sequence", "protocols": ["MEI", "MESI"],
                   "wrapped": True}
        first = make_scheduler(tmp_path)
        canonical = job_from_payload(payload).payload()
        verdict = first.submit(payload)
        # Crash window: the result reached the cache, the journal's
        # terminal line did not.
        first.cache.put(verdict["job_id"], canonical, {"stale_reads": 0})
        first.shutdown()

        second = make_scheduler(tmp_path)
        second.recover()
        entry = second.jobs[verdict["job_id"]]
        assert entry.status == "done"
        assert entry.served_from_cache
        assert entry.result == {"stale_reads": 0}
        assert second.queue_depth() == 0  # zero re-simulation
        # The healed terminal line is journaled for the next restart.
        entries = load_journal(second.config.journal_path)
        assert entries[verdict["job_id"]].terminal
        second.shutdown()

    def test_pending_without_result_is_requeued(self, tmp_path):
        first = make_scheduler(tmp_path)
        verdict = first.submit(probe(1))
        first.shutdown()

        second = make_scheduler(tmp_path)
        second.recover()
        assert second.jobs[verdict["job_id"]].status == "queued"
        assert second.queue_depth() == 1
        assert second.stats_counters["recovered_requeued"] == 1
        second.shutdown()


class TestStats:
    def test_stats_shape(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.submit(probe(1))
        stats = scheduler.stats()
        for field in ("config", "uptime_s", "draining", "jobs_known",
                      "queue_depth", "in_flight", "counters", "cache",
                      "workers", "stalled_workers"):
            assert field in stats
        assert stats["jobs_known"] == 1
        assert stats["counters"]["accepted"] == 1
        scheduler.shutdown()
