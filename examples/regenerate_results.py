#!/usr/bin/env python3
"""Regenerate every figure and export CSV/JSON/Markdown artefacts.

Produces, under ``results/`` (or the directory given as argv[1]):

* ``figure5_wcs.csv`` / ``.json``  ... ``figure8_miss_penalty.csv`` / ``.json``
* ``headlines.md`` — the paper-vs-measured table
* ``report.md`` — all figures as Markdown tables

Pass ``--quick`` for a reduced sweep (seconds instead of minutes).

Run:  python examples/regenerate_results.py [outdir] [--quick]
"""

import json
import os
import sys

from repro.analysis import (
    compute_headlines,
    figure5_wcs,
    figure6_bcs,
    figure7_tcs,
    figure8_miss_penalty,
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    headlines_to_markdown,
)


def main():
    args = [a for a in sys.argv[1:]]
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    outdir = args[0] if args else "results"
    os.makedirs(outdir, exist_ok=True)

    if quick:
        sweep = dict(line_counts=(2, 8), exec_times=(1,), iterations=3)
        fig8_kwargs = dict(penalties=(13, 96), line_counts=(8,), iterations=3)
        headline_kwargs = dict(iterations=3, lines=8)
    else:
        sweep = dict(iterations=8)
        fig8_kwargs = dict(iterations=8)
        headline_kwargs = dict(iterations=8, lines=32)

    figures = {
        "figure5_wcs": figure5_wcs(**sweep),
        "figure6_bcs": figure6_bcs(**sweep),
        "figure7_tcs": figure7_tcs(**sweep),
        "figure8_miss_penalty": figure8_miss_penalty(**fig8_kwargs),
    }

    report_sections = []
    for name, figure in figures.items():
        csv_path = os.path.join(outdir, f"{name}.csv")
        json_path = os.path.join(outdir, f"{name}.json")
        with open(csv_path, "w") as handle:
            handle.write(figure_to_csv(figure))
        with open(json_path, "w") as handle:
            handle.write(figure_to_json(figure))
        report_sections.append(figure_to_markdown(figure))
        print(f"wrote {csv_path} and {json_path}")

    headlines = compute_headlines(**headline_kwargs)
    headline_md = headlines_to_markdown(headlines)
    with open(os.path.join(outdir, "headlines.md"), "w") as handle:
        handle.write("# Headline comparison\n\n" + headline_md + "\n")
    with open(os.path.join(outdir, "report.md"), "w") as handle:
        handle.write(
            "# Regenerated evaluation\n\n"
            + headline_md
            + "\n\n"
            + "\n\n".join(report_sections)
            + "\n"
        )
    print(f"wrote {outdir}/headlines.md and {outdir}/report.md")


if __name__ == "__main__":
    main()
