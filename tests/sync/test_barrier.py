"""Tests for the sense-reversing barrier."""

import pytest

from repro.core import LOCK_BASE, SHARED_BASE, Platform, PlatformConfig
from repro.cpu import Assembler, preset_generic
from repro.errors import ConfigError
from repro.sync.barrier import SenseBarrier

BARRIER = LOCK_BASE
TRACE = SHARED_BASE + 0x100


def make_platform(n_cores, freqs=None):
    freqs = freqs or [50] * n_cores
    cores = tuple(
        preset_generic(f"p{i}", "MESI", freq_mhz=freqs[i]) for i in range(n_cores)
    )
    return Platform(PlatformConfig(cores=cores))


def phase_task(barrier, task_id, n_cores, phases):
    """Each phase: record (phase, task) into an uncached log slot."""
    asm = Assembler(name=f"bar{task_id}")
    barrier.emit_init(asm)
    for phase in range(phases):
        # slot = phase * n_cores + my arrival index is racy; instead log
        # a per-(task,phase) cell so ordering is checked via the barrier.
        addr = TRACE + 4 * (phase * n_cores + task_id)
        asm.li(1, addr)
        asm.li(2, phase + 1)
        asm.st(2, 1)
        asm.dcbf(1)      # make the write host-visible
        barrier.emit_wait(asm)
    asm.halt()
    return asm.assemble()


class TestBarrier:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SenseBarrier(BARRIER, n_tasks=1)

    @pytest.mark.parametrize("n_cores", [2, 3, 4])
    def test_all_tasks_pass_each_phase_together(self, n_cores):
        phases = 3
        platform = make_platform(n_cores)
        barriers = [SenseBarrier(BARRIER, n_cores) for _ in range(n_cores)]
        platform.load_programs(
            {
                f"p{i}": phase_task(barriers[i], i, n_cores, phases)
                for i in range(n_cores)
            }
        )
        platform.run()
        for phase in range(phases):
            for task in range(n_cores):
                addr = TRACE + 4 * (phase * n_cores + task)
                assert platform.memory.peek(addr) == phase + 1

    def test_barrier_orders_phases_across_speeds(self):
        """A fast core cannot enter phase k+1 before a slow core leaves
        phase k: the slow core's phase-k write must be visible when the
        fast core checks it after the barrier."""
        platform = make_platform(2, freqs=[100, 50])
        barrier0, barrier1 = SenseBarrier(BARRIER, 2), SenseBarrier(BARRIER, 2)
        flag = TRACE

        fast = Assembler()
        barrier0.emit_init(fast)
        fast.li(1, flag + 4)
        fast.li(2, 1)
        fast.st(2, 1)
        fast.dcbf(1)
        barrier0.emit_wait(fast)
        # After the barrier, the slow core's write MUST be visible.
        fast.li(1, flag)
        fast.ld(3, 1)
        fast.halt()

        slow = Assembler()
        barrier1.emit_init(slow)
        slow.delay(200)          # make it genuinely slow
        slow.li(1, flag)
        slow.li(2, 77)
        slow.st(2, 1)
        slow.dcbf(1)
        slow.sync()
        barrier1.emit_wait(slow)
        slow.halt()

        platform.load_programs({"p0": fast.assemble(), "p1": slow.assemble()})
        platform.run()
        assert platform.core("p0").regs[3] == 77

    def test_reusable_across_many_phases(self):
        platform = make_platform(2)
        barriers = [SenseBarrier(BARRIER, 2) for _ in range(2)]
        platform.load_programs(
            {f"p{i}": phase_task(barriers[i], i, 2, phases=6) for i in range(2)}
        )
        platform.run()  # completing at all proves no phase wedged

    def test_footprint_addresses(self):
        barrier = SenseBarrier(BARRIER, 2)
        assert barrier.count_addr == BARRIER
        assert barrier.sense_addr == BARRIER + 4
        assert barrier.lock_addr == BARRIER + 8
        assert barrier.footprint_words == 3
