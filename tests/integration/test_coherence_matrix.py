"""The central correctness claim, tested exhaustively and randomly.

For EVERY combination of native protocols (including a non-coherent
processor), a wrapped platform must stay coherent under arbitrary
interleaved access patterns: every load returns the latest store and
the SWMR invariants hold after every transaction.

Two drivers:

* an exhaustive small matrix over all protocol pairs with a fixed
  conflict-heavy pattern, and
* a hypothesis-driven random walk (random ops, addresses, processors)
  over a sampled pair.

The non-coherent case uses direct controller access with an explicit
service loop standing in for the ISR (the instruction-level path is
exercised by the microbenchmark tests).
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SHARED_BASE, Platform, PlatformConfig
from repro.cpu import preset_generic
from repro.verify import CoherenceChecker

PROTOCOL_CHOICES = ("MEI", "MSI", "MESI", "MOESI")
PAIRS = list(itertools.combinations_with_replacement(PROTOCOL_CHOICES, 2))


def coherent_platform(p1, p2):
    platform = Platform(
        PlatformConfig(
            cores=(preset_generic("p0", p1), preset_generic("p1", p2)),
            hardware_coherence=True,
        )
    )
    checker = CoherenceChecker(platform)
    return platform, checker


def run_ops(platform, ops):
    """ops: list of (proc_index, 'read'|'write', addr, value)."""
    controllers = platform.controllers

    def driver():
        for proc, op, addr, value in ops:
            if op == "read":
                yield from controllers[proc].read(addr)
            else:
                yield from controllers[proc].write(addr, value)

    platform.sim.process(driver())
    platform.sim.run(detect_deadlock=False)


CONFLICT_PATTERN = [
    (0, "read", SHARED_BASE, 0),
    (1, "read", SHARED_BASE, 0),
    (1, "write", SHARED_BASE, 1),
    (0, "read", SHARED_BASE, 0),
    (0, "write", SHARED_BASE, 2),
    (1, "read", SHARED_BASE, 0),
    (0, "write", SHARED_BASE + 4, 3),
    (1, "write", SHARED_BASE + 4, 4),
    (0, "read", SHARED_BASE + 4, 0),
    (1, "read", SHARED_BASE + 32, 0),
    (0, "write", SHARED_BASE + 32, 5),
    (1, "read", SHARED_BASE + 32, 0),
]


@pytest.mark.parametrize("p1,p2", PAIRS)
def test_exhaustive_pairs_conflict_pattern(p1, p2):
    platform, checker = coherent_platform(p1, p2)
    run_ops(platform, CONFLICT_PATTERN)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


@pytest.mark.parametrize("p1,p2", PAIRS)
def test_exhaustive_pairs_table2_sequence(p1, p2):
    """The Table 2 killer sequence must be safe for every wrapped pair."""
    platform, checker = coherent_platform(p1, p2)
    run_ops(
        platform,
        [
            (0, "read", SHARED_BASE, 0),
            (1, "read", SHARED_BASE, 0),
            (1, "write", SHARED_BASE, 7),
            (0, "read", SHARED_BASE, 0),
        ],
    )
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


op_strategy = st.tuples(
    st.integers(min_value=0, max_value=1),              # processor
    st.sampled_from(["read", "write"]),                 # operation
    st.integers(min_value=0, max_value=15).map(lambda n: SHARED_BASE + n * 4),
    st.integers(min_value=1, max_value=1000),           # store value
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    pair=st.sampled_from(PAIRS),
    ops=st.lists(op_strategy, min_size=1, max_size=40),
)
def test_property_random_walk_stays_coherent(pair, ops):
    platform, checker = coherent_platform(*pair)
    run_ops(platform, ops)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=30))
def test_property_software_discipline_alternative(ops):
    """Sanity: the same walks are also coherent on a snooping MESI pair
    with tiny caches, forcing evictions and refills."""
    platform = Platform(
        PlatformConfig(
            cores=(
                preset_generic("p0", "MESI", cache_size=256),
                preset_generic("p1", "MESI", cache_size=256),
            ),
        )
    )
    checker = CoherenceChecker(platform)
    run_ops(platform, ops)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


def test_three_way_heterogeneous_platform():
    platform = Platform(
        PlatformConfig(
            cores=(
                preset_generic("p0", "MEI"),
                preset_generic("p1", "MESI"),
                preset_generic("p2", "MOESI"),
            ),
        )
    )
    checker = CoherenceChecker(platform)
    ops = []
    for round_no in range(4):
        for proc in range(3):
            ops.append((proc, "write", SHARED_BASE, round_no * 3 + proc))
            ops.append(((proc + 1) % 3, "read", SHARED_BASE, 0))

    controllers = platform.controllers

    def driver():
        for proc, op, addr, value in ops:
            if op == "read":
                yield from controllers[proc].read(addr)
            else:
                yield from controllers[proc].write(addr, value)

    platform.sim.process(driver())
    platform.sim.run(detect_deadlock=False)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]
