"""Level-sensitive interrupt lines (the nFIQ of Fig 3)."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Event, Simulator

__all__ = ["InterruptLine"]


class InterruptLine:
    """A level-sensitive interrupt request line.

    The snoop logic asserts the line when snoop hits are pending and
    deasserts it once the service routine has acknowledged all of them.
    The core samples :attr:`asserted` at instruction boundaries (a core
    stalled mid-instruction on a bus access cannot sample — the window
    the Fig 4 deadlock lives in) and can block on :meth:`wait` while
    halted.
    """

    def __init__(self, sim: Simulator, name: str = "irq"):
        self.sim = sim
        self.name = name
        self.asserted = False
        self.assert_time: Optional[int] = None
        self.assertions = 0
        self._waiters: List[Event] = []

    def assert_line(self) -> None:
        """Drive the line active (idempotent while already asserted)."""
        if self.asserted:
            return
        self.asserted = True
        self.assert_time = self.sim.now
        self.assertions += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def deassert(self) -> None:
        """Drive the line inactive."""
        self.asserted = False
        self.assert_time = None

    def wait(self) -> Event:
        """An event that fires when the line is (or becomes) asserted."""
        event = self.sim.event()
        if self.asserted:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "asserted" if self.asserted else "idle"
        return f"<InterruptLine {self.name} {state}>"
