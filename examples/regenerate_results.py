#!/usr/bin/env python3
"""Regenerate every figure and export CSV/JSON/Markdown artefacts.

Produces, under ``results/`` (or the directory given as argv[1]):

* ``figure5_wcs.csv`` / ``.json``  ... ``figure8_miss_penalty.csv`` / ``.json``
* ``headlines.md`` — the paper-vs-measured table
* ``report.md`` — all figures as Markdown tables

All simulations run through the :mod:`repro.exp` sweep runner:
``--jobs N`` fans them out over N worker processes, and results are
cached on disk (``--cache-dir``, default ``<outdir>/.sweep-cache``) so
a rerun with unchanged parameters executes zero simulations.  Parallel
and serial runs produce byte-identical artefacts.  The run manifest
(per-job wall time, cache hits, worker utilisation) is written next to
the cache.

Pass ``--quick`` for a reduced sweep (seconds instead of minutes).

Run:  python examples/regenerate_results.py [outdir] [--quick]
          [--jobs N] [--cache-dir DIR] [--no-cache]
"""

import argparse
import os

from repro.analysis import (
    compute_headlines,
    figure5_wcs,
    figure6_bcs,
    figure7_tcs,
    figure8_miss_penalty,
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    headlines_to_markdown,
)
from repro.exp import SweepRunner


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("outdir", nargs="?", default="results")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep (seconds instead of minutes)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="simulation worker processes (default: 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory "
                             "(default: <outdir>/.sweep-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    return parser.parse_args()


def main():
    args = parse_args()
    outdir = args.outdir
    os.makedirs(outdir, exist_ok=True)
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(outdir, ".sweep-cache")
    runner = SweepRunner(jobs=args.jobs, cache_dir=cache_dir)

    if args.quick:
        sweep = dict(line_counts=(2, 8), exec_times=(1,), iterations=3)
        fig8_kwargs = dict(penalties=(13, 96), line_counts=(8,), iterations=3)
        headline_kwargs = dict(iterations=3, lines=8)
    else:
        sweep = dict(iterations=8)
        fig8_kwargs = dict(iterations=8)
        headline_kwargs = dict(iterations=8, lines=32)

    figures = {
        "figure5_wcs": figure5_wcs(runner=runner, **sweep),
        "figure6_bcs": figure6_bcs(runner=runner, **sweep),
        "figure7_tcs": figure7_tcs(runner=runner, **sweep),
        "figure8_miss_penalty": figure8_miss_penalty(runner=runner, **fig8_kwargs),
    }

    report_sections = []
    for name, figure in figures.items():
        csv_path = os.path.join(outdir, f"{name}.csv")
        json_path = os.path.join(outdir, f"{name}.json")
        with open(csv_path, "w") as handle:
            handle.write(figure_to_csv(figure))
        with open(json_path, "w") as handle:
            handle.write(figure_to_json(figure))
        report_sections.append(figure_to_markdown(figure))
        print(f"wrote {csv_path} and {json_path}")

    headlines = compute_headlines(runner=runner, **headline_kwargs)
    headline_md = headlines_to_markdown(headlines)
    with open(os.path.join(outdir, "headlines.md"), "w") as handle:
        handle.write("# Headline comparison\n\n" + headline_md + "\n")
    with open(os.path.join(outdir, "report.md"), "w") as handle:
        handle.write(
            "# Regenerated evaluation\n\n"
            + headline_md
            + "\n\n"
            + "\n\n".join(report_sections)
            + "\n"
        )
    print(f"wrote {outdir}/headlines.md and {outdir}/report.md")

    if cache_dir is not None:
        manifest_path = os.path.join(cache_dir, "manifest.json")
        runner.write_manifest(manifest_path)
        print(f"wrote {manifest_path}")
    print(runner.summary())


if __name__ == "__main__":
    main()
