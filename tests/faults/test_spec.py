"""FaultSpec validation and FaultTrigger determinism."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultSpec, FaultTrigger


class TestSpecValidation:
    def test_needs_a_site(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="")

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec("mem.delay", probability=1.5)
        with pytest.raises(ConfigError):
            FaultSpec("mem.delay", probability=-0.1)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("drain.delay", delay_ns=-1)
        with pytest.raises(ConfigError):
            FaultSpec("drain.drop", after_n=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("drain.drop", count=0)

    def test_with_copies(self):
        spec = FaultSpec("drain.drop", master="a")
        other = spec.with_(master="b", count=None)
        assert other.master == "b"
        assert other.count is None
        assert spec.master == "a"

    def test_describe_mentions_site_and_target(self):
        text = FaultSpec(
            "snoop.silent", master="ppc755", addr=0x2000_0000, count=None
        ).describe()
        assert "snoop.silent" in text
        assert "@ppc755" in text
        assert "0x20000000" in text
        assert "count=inf" in text

    def test_spec_is_hashable(self):
        # Specs ride inside the frozen PlatformConfig.
        assert hash(FaultSpec("drain.drop")) == hash(FaultSpec("drain.drop"))


class TestTriggerPredicate:
    def test_master_filter(self):
        trigger = FaultTrigger(FaultSpec("drain.drop", master="a"))
        assert trigger.matches(master="a")
        assert not trigger.matches(master="b")
        assert not trigger.matches()  # a master filter needs a master

    def test_addr_matches_exact_or_line_base(self):
        trigger = FaultTrigger(FaultSpec("mem.delay", addr=0x100, extra_cycles=1))
        assert trigger.matches(addr=0x100)
        assert trigger.matches(addr=0x104, line_base=0x100)
        assert not trigger.matches(addr=0x200, line_base=0x200)

    def test_op_filter(self):
        trigger = FaultTrigger(FaultSpec("retry.storm", op="read-line"))
        assert trigger.matches(op="read-line")
        assert not trigger.matches(op="write")


class TestTriggerBudget:
    def test_count_limits_fires(self):
        trigger = FaultTrigger(FaultSpec("drain.drop", count=2))
        fired = [trigger.should_fire() for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert trigger.fires == 2
        assert trigger.occasions == 5

    def test_after_n_skips_first_occasions(self):
        trigger = FaultTrigger(FaultSpec("drain.drop", after_n=3, count=None))
        fired = [trigger.should_fire() for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_probability_is_seed_deterministic(self):
        spec = FaultSpec("mem.delay", probability=0.5, count=None,
                         extra_cycles=1, seed=11)
        a = FaultTrigger(spec)
        b = FaultTrigger(spec)
        pattern_a = [a.should_fire() for _ in range(50)]
        pattern_b = [b.should_fire() for _ in range(50)]
        assert pattern_a == pattern_b
        assert 0 < a.fires < 50  # p=0.5 actually mixes hits and misses
        # A different seed gives a different pattern.
        c = FaultTrigger(spec.with_(seed=12))
        pattern_c = [c.should_fire() for _ in range(50)]
        assert pattern_c != pattern_a

    def test_non_matching_occasion_not_counted(self):
        trigger = FaultTrigger(FaultSpec("drain.drop", master="a", count=1))
        assert not trigger.should_fire(master="b")
        assert trigger.occasions == 0
        assert trigger.should_fire(master="a")
