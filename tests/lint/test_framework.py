"""Framework behaviour: suppressions, reporters, baselines, selection."""

import io
import json
import textwrap

import pytest

from repro.lint.core import (
    RULES,
    Finding,
    ModuleSource,
    Severity,
    load_project,
    run_rules,
)
from repro.lint.report import (
    filter_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
)

# A hot-path module with one obvious slots violation, reused throughout.
VIOLATION = "class Hot:\n    def __init__(self):\n        self.x = 1\n"


class TestSuppressions:
    def test_named_suppression_silences_the_rule(self, make_project):
        src = "class Hot:  # repro: lint-ok[slots]\n    pass\n"
        project = make_project({"sim/kernel.py": src})
        assert run_rules(project, ["slots"]) == []

    def test_comment_only_line_covers_the_next_line(self, make_project):
        src = "# repro: lint-ok[slots]\nclass Hot:\n    pass\n"
        project = make_project({"sim/kernel.py": src})
        assert run_rules(project, ["slots"]) == []

    def test_suppression_for_other_rule_does_not_silence(self, make_project):
        src = "class Hot:  # repro: lint-ok[determinism]\n    pass\n"
        project = make_project({"sim/kernel.py": src})
        findings = run_rules(project, ["slots"])
        assert [f.rule for f in findings] == ["slots"]

    def test_blanket_suppression_is_an_error(self, make_project):
        src = "class Hot:  # repro: lint-ok\n    pass\n"
        project = make_project({"sim/kernel.py": src})
        findings = run_rules(project, ["slots"])
        rules = {f.rule for f in findings}
        assert "suppression" in rules  # the blanket waiver itself
        assert "slots" in rules  # and it silenced nothing
        blanket = [f for f in findings if f.rule == "suppression"][0]
        assert blanket.severity is Severity.ERROR

    def test_unused_suppression_warns_on_full_runs(self, make_project):
        src = "x = 1  # repro: lint-ok[slots]\n"
        project = make_project({"core/util.py": src})
        findings = run_rules(project)
        assert any(
            f.rule == "suppression" and "unused" in f.message for f in findings
        )
        # Partial runs cannot tell unused from not-checked: no warning.
        assert run_rules(project, ["determinism"]) == []

    def test_docstring_mention_is_not_a_waiver(self):
        src = '"""Docs say: use # repro: lint-ok[slots] to waive."""\nx = 1\n'
        module = ModuleSource("core/doc.py", src)
        assert module.suppressions == {}

    def test_unknown_rule_waiver_is_an_error(self, make_project):
        src = "x = 1  # repro: lint-ok[hold-accross-yield]\n"
        project = make_project({"core/util.py": src})
        findings = run_rules(project, ["slots"])  # even on partial runs
        (finding,) = findings
        assert finding.rule == "suppression"
        assert finding.severity is Severity.ERROR
        assert "unknown rule 'hold-accross-yield'" in finding.message

    def test_unknown_rule_waiver_not_double_reported(self, make_project):
        src = "x = 1  # repro: lint-ok[no-such-rule]\n"
        project = make_project({"core/util.py": src})
        findings = run_rules(project)  # full run: unused warnings active
        assert [f for f in findings if "unknown rule" in f.message]
        assert not [f for f in findings if "unused" in f.message]

    def test_blanket_waiver_on_a_yield_is_an_error(self, make_project):
        src = (
            "class Bus:\n"
            "    def transact(self, txn):\n"
            "        yield self.arbiter.request(txn, 0)  # repro: lint-ok\n"
            "        self.arbiter.release(txn)\n"
        )
        project = make_project({"bus/asb.py": src})
        findings = run_rules(project, ["resource-release"])
        blanket = [f for f in findings if f.rule == "suppression"]
        assert blanket and blanket[0].severity is Severity.ERROR
        assert "blanket" in blanket[0].message
        # And it silenced nothing: the leak is still reported.
        assert [f for f in findings if f.rule == "resource-release"]


class TestReporters:
    def _findings(self):
        return [
            Finding("slots", "a.py", 3, "class A has no __slots__"),
            Finding(
                "suppression", "b.py", 1, "unused", severity=Severity.WARNING
            ),
        ]

    def test_text_report(self):
        out = io.StringIO()
        render_text(self._findings(), out)
        text = out.getvalue()
        assert "a.py:3: [error] slots: class A has no __slots__" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_text_report_clean(self):
        out = io.StringIO()
        render_text([], out)
        assert "clean" in out.getvalue()

    def test_json_report_schema(self):
        out = io.StringIO()
        render_json(self._findings(), out)
        doc = json.loads(out.getvalue())
        assert doc["errors"] == 1
        assert doc["warnings"] == 1
        assert doc["findings"][0] == {
            "rule": "slots",
            "path": "a.py",
            "line": 3,
            "severity": "error",
            "message": "class A has no __slots__",
        }

    def test_sarif_report(self):
        out = io.StringIO()
        render_sarif(self._findings(), out)
        doc = json.loads(out.getvalue())
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "slots" in rule_ids and "suppression" in rule_ids
        first, second = run["results"]
        assert first["ruleId"] == "slots"
        assert first["level"] == "error"
        assert rule_ids[first["ruleIndex"]] == "slots"
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 3
        assert second["level"] == "warning"

    def test_sarif_rule_index_covers_unregistered_rules(self):
        out = io.StringIO()
        render_sarif(
            [Finding("ad-hoc", "a.py", 1, "one-off")], out
        )
        doc = json.loads(out.getvalue())
        (run,) = doc["runs"]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        (result,) = run["results"]
        assert rule_ids[result["ruleIndex"]] == "ad-hoc"


class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        findings = [
            Finding("slots", "a.py", 3, "class A has no __slots__"),
            Finding("slots", "a.py", 9, "class B has no __slots__"),
        ]
        baseline_file = tmp_path / "baseline.json"
        with open(baseline_file, "w") as handle:
            render_json(findings[:1], handle)
        accepted = load_baseline(str(baseline_file))
        fresh, known = filter_baseline(findings, accepted)
        assert known == 1
        assert [f.message for f in fresh] == ["class B has no __slots__"]

    def test_line_drift_does_not_resurrect(self, tmp_path):
        original = Finding("slots", "a.py", 3, "class A has no __slots__")
        moved = Finding("slots", "a.py", 40, "class A has no __slots__")
        baseline_file = tmp_path / "baseline.json"
        with open(baseline_file, "w") as handle:
            render_json([original], handle)
        fresh, known = filter_baseline([moved], load_baseline(str(baseline_file)))
        assert fresh == [] and known == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            load_baseline(str(bad))


class TestSelection:
    def test_unknown_rule_rejected(self, make_project):
        project = make_project({"core/x.py": "x = 1\n"})
        with pytest.raises(KeyError):
            run_rules(project, ["no-such-rule"])

    def test_registry_contains_the_documented_rules(self):
        run_rules(load_project(["tests/lint/conftest.py"]))  # force registration
        for expected in (
            "determinism",
            "slots",
            "trace-guard",
            "process-yield",
            "fault-proxy",
            "protocol-tables",
        ):
            assert expected in RULES

    def test_findings_sorted_and_stable(self, make_project):
        src = textwrap.dedent(
            """
            class B:
                pass

            class A:
                pass
            """
        )
        project = make_project({"sim/kernel.py": src})
        findings = run_rules(project, ["slots"])
        assert [f.line for f in findings] == sorted(f.line for f in findings)
