"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`ablation_wrapper` — wrappers on/off on mismatched-protocol
  pairs (the live version of Tables 2/3: stale reads and invariant
  violations appear exactly when the wrapper is off).
* :func:`ablation_locks` — lock implementation (uncached spinlock,
  Bakery, hardware lock register) under the TCS workload.
* :func:`ablation_interrupt` — sensitivity of the proposed solution to
  the ARM's interrupt response/entry cost (the PF2-vs-PF3 discussion:
  "platforms without need for a special ISR would perform even better").
* :func:`ablation_arbitration` — fixed-priority vs round-robin bus
  arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exp import MicrobenchJob, SequenceJob, SweepRunner, run_jobs
from ..workloads.microbench import MicrobenchSpec

__all__ = [
    "AblationRow",
    "ablation_wrapper",
    "ablation_locks",
    "ablation_interrupt",
    "ablation_arbitration",
    "render_rows",
]


@dataclass
class AblationRow:
    """One configuration and its measured outcome."""

    label: str
    value: float
    unit: str

    def render(self) -> str:
        """Aligned one-line rendering."""
        return f"{self.label:52s} {self.value:12.1f} {self.unit}"


def render_rows(title: str, rows: Sequence[AblationRow]) -> str:
    """A titled block of ablation rows."""
    return "\n".join([title] + [row.render() for row in rows])


def ablation_wrapper(
    pairs: Sequence[Tuple[str, str]] = (("MESI", "MEI"), ("MSI", "MESI"), ("MESI", "MOESI")),
    runner: Optional[SweepRunner] = None,
) -> List[AblationRow]:
    """Stale reads with and without the wrapper, per protocol pair."""
    jobs = [
        SequenceJob(tuple(pair), wrapped=wrapped)
        for pair in pairs
        for wrapped in (False, True)
    ]
    rows = []
    for job, result in zip(jobs, run_jobs(jobs, runner)):
        mode = "wrapped" if job.wrapped else "unwrapped"
        rows.append(
            AblationRow(
                f"{job.protocols[0]}+{job.protocols[1]} {mode}: stale reads",
                result["stale_reads"], "reads",
            )
        )
    return rows


def ablation_locks(
    kinds: Sequence[str] = ("swap", "bakery", "hw"),
    lines: int = 8,
    iterations: int = 8,
    runner: Optional[SweepRunner] = None,
) -> List[AblationRow]:
    """TCS execution time per lock implementation (proposed solution)."""
    jobs = [
        MicrobenchJob(
            MicrobenchSpec("tcs", "proposed", lines=lines, iterations=iterations, lock=kind)
        )
        for kind in kinds
    ]
    return [
        AblationRow(f"TCS proposed, {kind} lock", result["elapsed_ns"], "ns")
        for kind, result in zip(kinds, run_jobs(jobs, runner))
    ]


def ablation_interrupt(
    entry_cycles: Sequence[int] = (1, 4, 8, 16),
    lines: int = 8,
    iterations: int = 8,
    runner: Optional[SweepRunner] = None,
) -> List[AblationRow]:
    """WCS proposed execution time vs ARM interrupt entry cost."""
    spec = MicrobenchSpec("wcs", "proposed", lines=lines, iterations=iterations)
    jobs = [
        MicrobenchJob(spec, arm_interrupt_entry_cycles=cycles)
        for cycles in entry_cycles
    ]
    return [
        AblationRow(
            f"WCS proposed, interrupt entry = {cycles} cycles",
            result["elapsed_ns"], "ns",
        )
        for cycles, result in zip(entry_cycles, run_jobs(jobs, runner))
    ]


def ablation_arbitration(
    lines: int = 8,
    iterations: int = 8,
    runner: Optional[SweepRunner] = None,
) -> List[AblationRow]:
    """WCS execution time under both arbitration policies."""
    policies = ("fixed", "round-robin")
    spec = MicrobenchSpec("wcs", "proposed", lines=lines, iterations=iterations)
    jobs = [MicrobenchJob(spec, arbitration=policy) for policy in policies]
    return [
        AblationRow(f"WCS proposed, {policy} arbitration", result["elapsed_ns"], "ns")
        for policy, result in zip(policies, run_jobs(jobs, runner))
    ]
