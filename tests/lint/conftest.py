"""Shared helpers for the lint tests: in-memory projects."""

from pathlib import Path

import pytest

from repro.lint.core import ModuleSource, Project


@pytest.fixture
def make_project():
    """Build a :class:`Project` from {path: source} without touching disk."""

    def build(files):
        project = Project(root=Path("."))
        for path, text in files.items():
            project.modules.append(ModuleSource(path, text))
        return project

    return build
