"""Argument wiring for ``repro serve`` / ``repro submit`` /
``repro bench service`` (kept here so :mod:`repro.__main__` stays a
table of thin delegations)."""

from __future__ import annotations

import json
import os
import sys

from ..core.platform import ENGINE_NAMES
from ..errors import IntegrationError
from .client import ServiceClient, ServiceHTTPError
from .config import ServiceConfig

__all__ = [
    "add_serve_arguments",
    "add_submit_arguments",
    "run_bench_service",
    "run_serve",
    "run_submit",
]


def add_serve_arguments(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = pick a free one; the "
                             "bound port is published in DATA_DIR/service.json)")
    parser.add_argument("--data-dir", default="service-data", metavar="DIR",
                        help="journal + cache + announce file root")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache root (default: DATA_DIR/cache; "
                             "point it at a sweep cache to share results)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes (default: 2)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="admitted-but-not-running bound; beyond it "
                             "submissions are shed with 429 (default: 64)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS", dest="timeout_s",
                        help="per-attempt job deadline (default: 300)")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="attempts per hung/crashed job (default: 2)")
    parser.add_argument("--engine", default="exact", choices=ENGINE_NAMES,
                        help="simulation engine tag for the result cache")
    parser.add_argument("--allow-probe", action="store_true",
                        help="admit diagnostic probe jobs (chaos drills "
                             "and smoke benchmarks only)")


def run_serve(args) -> int:
    from .server import serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        cache_dir=args.cache_dir,
        workers=args.workers,
        max_queue=args.max_queue,
        timeout_s=args.timeout_s,
        max_attempts=args.max_attempts,
        engine=args.engine,
        allow_probe=args.allow_probe,
    )
    return serve(config)


def add_submit_arguments(parser) -> None:
    parser.add_argument("payload",
                        help="job payload: inline JSON, @file.json, or "
                             "'-' for stdin")
    parser.add_argument("--host", default=None,
                        help="service host (default: from --data-dir's "
                             "announce file)")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--data-dir", default="service-data", metavar="DIR",
                        help="read host/port from DIR/service.json when "
                             "--host/--port are not given")
    parser.add_argument("--wait", type=float, default=None, metavar="SECONDS",
                        help="block until the job is terminal (long-polling)")
    parser.add_argument("--follow", action="store_true",
                        help="stream the job's SSE feed until terminal")


def _resolve_endpoint(args) -> tuple:
    if args.host is not None and args.port is not None:
        return args.host, args.port
    announce_path = os.path.join(args.data_dir, "service.json")
    try:
        with open(announce_path) as handle:
            announce = json.load(handle)
    except (OSError, ValueError):
        raise IntegrationError(
            f"no --host/--port and no announce file at {announce_path} "
            "(is the service running?)"
        )
    return (
        args.host if args.host is not None else announce["host"],
        args.port if args.port is not None else announce["port"],
    )


def _load_payload(spec: str):
    if spec == "-":
        raw = sys.stdin.read()
    elif spec.startswith("@"):
        with open(spec[1:]) as handle:
            raw = handle.read()
    else:
        raw = spec
    try:
        return json.loads(raw)
    except ValueError as exc:
        raise IntegrationError(f"payload is not JSON: {exc}")


def run_submit(args) -> int:
    host, port = _resolve_endpoint(args)
    client = ServiceClient(host, port)
    payload = _load_payload(args.payload)
    try:
        verdict = client.submit(payload)
    except ServiceHTTPError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        if exc.retry_after_s is not None:
            print(f"retry after {exc.retry_after_s}s", file=sys.stderr)
        return 1
    job_id = verdict["job_id"]
    if args.follow:
        for frame in client.events(job_id):
            print(json.dumps(frame, sort_keys=True), flush=True)
        return 0
    if args.wait is not None:
        state = client.wait(job_id, timeout_s=args.wait)
        print(json.dumps(state, indent=1, sort_keys=True))
        return 0 if state.get("status") == "done" else 1
    print(json.dumps(verdict, indent=1, sort_keys=True))
    return 0


def run_bench_service(args) -> int:
    from pathlib import Path

    from . import bench

    baseline_path = args.baseline
    if baseline_path is None:
        for candidate in (
            Path.cwd() / bench.BENCH_FILE,
            Path(__file__).resolve().parents[3] / bench.BENCH_FILE,
        ):
            if candidate.is_file():
                baseline_path = str(candidate)
                break
    baseline = bench.load_results(baseline_path) if baseline_path else None
    if args.check and baseline is None:
        print("bench service --check: no baseline found -- run "
              "benchmarks/bench_service.py to commit one", file=sys.stderr)
        return 2
    current = bench.run_suite(quick=args.quick)
    print(bench.render_comparison(current, baseline))
    if baseline is None:
        print("(no baseline found -- run benchmarks/bench_service.py "
              "to commit one)")
        return 0
    if args.check:
        # Only deterministic admission counters are compared; wall
        # clock is reported but never gated on.
        failures = bench.check_regression(current, baseline)
        if failures:
            for failure in failures:
                print(f"SERVICE DRIFT {failure}", file=sys.stderr)
            return 1
        print("all checked counters match the baseline")
    return 0
