"""The lint CLI surface: path globs, --changed-only, SARIF output.

Exit-code semantics are unchanged by the new flags and pinned here:
0 clean (including a --changed-only run with nothing changed),
1 findings, 2 usage/configuration problems (bad glob, no git).
"""

import argparse
import io
import json
import subprocess

import pytest

from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_lint_arguments,
    run_lint,
)

# A module the determinism rule flags wherever it lives (set iteration).
VIOLATION = "items = {1, 2, 3}\ntotal = 0\nfor item in items:\n    total += item\n"
CLEAN = "items = (1, 2, 3)\ntotal = sum(items)\n"


def lint(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    out, err = io.StringIO(), io.StringIO()
    code = run_lint(parser.parse_args(argv), stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


def git(tmp_path, *argv):
    return subprocess.run(
        ["git", "-C", str(tmp_path),
         "-c", "user.email=t@example.com", "-c", "user.name=t",
         *argv],
        capture_output=True, text=True, check=True,
    )


class TestPathGlobs:
    def test_glob_expansion_lints_the_matches(self, tmp_path):
        (tmp_path / "hot.py").write_text(VIOLATION)
        (tmp_path / "cold.py").write_text(CLEAN)
        code, out, _err = lint(["--paths", str(tmp_path / "*.py")])
        assert code == EXIT_FINDINGS
        assert "hot.py" in out and "cold.py" not in out

    def test_positional_paths_also_take_globs(self, tmp_path):
        (tmp_path / "hot.py").write_text(VIOLATION)
        code, out, _err = lint([str(tmp_path / "h*.py")])
        assert code == EXIT_FINDINGS
        assert "hot.py" in out

    def test_unmatched_glob_is_a_usage_error(self, tmp_path):
        code, _out, err = lint(["--paths", str(tmp_path / "nope" / "*.py")])
        assert code == EXIT_USAGE
        assert "matched nothing" in err

    def test_directory_passes_through(self, tmp_path):
        (tmp_path / "cold.py").write_text(CLEAN)
        code, out, _err = lint([str(tmp_path)])
        assert code == EXIT_CLEAN
        assert "clean" in out


class TestChangedOnly:
    def test_exclusive_with_explicit_paths(self, tmp_path):
        code, _out, err = lint(["--changed-only", str(tmp_path)])
        assert code == EXIT_USAGE
        assert "mutually exclusive" in err

    def test_outside_a_repo_is_a_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _out, err = lint(["--changed-only"])
        assert code == EXIT_USAGE
        assert "needs git" in err

    def test_nothing_changed_reports_clean(self, tmp_path, monkeypatch):
        git(tmp_path, "init", "-q")
        (tmp_path / "hot.py").write_text(VIOLATION)
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        code, out, _err = lint(["--changed-only"])
        assert code == EXIT_CLEAN
        assert "no changed Python files" in out

    def test_modified_and_untracked_files_are_linted(
        self, tmp_path, monkeypatch
    ):
        git(tmp_path, "init", "-q")
        (tmp_path / "tracked.py").write_text(CLEAN)
        (tmp_path / "notes.txt").write_text("not python\n")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "tracked.py").write_text(VIOLATION)  # modified
        (tmp_path / "fresh.py").write_text(VIOLATION)  # untracked
        (tmp_path / "notes.txt").write_text("still not python\n")
        monkeypatch.chdir(tmp_path)
        code, out, _err = lint(["--changed-only"])
        assert code == EXIT_FINDINGS
        assert "tracked.py" in out and "fresh.py" in out
        assert "notes.txt" not in out

    def test_deleted_file_is_skipped(self, tmp_path, monkeypatch):
        git(tmp_path, "init", "-q")
        (tmp_path / "gone.py").write_text(CLEAN)
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "gone.py").unlink()
        monkeypatch.chdir(tmp_path)
        code, out, _err = lint(["--changed-only"])
        assert code == EXIT_CLEAN
        assert "no changed Python files" in out


class TestSarifOutput:
    def test_sarif_document_shape(self, tmp_path):
        (tmp_path / "hot.py").write_text(VIOLATION)
        code, out, _err = lint([str(tmp_path), "--format", "sarif"])
        assert code == EXIT_FINDINGS
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert any(r["ruleId"] == "determinism" for r in run["results"])

    def test_clean_sarif_has_empty_results(self, tmp_path):
        (tmp_path / "cold.py").write_text(CLEAN)
        code, out, _err = lint([str(tmp_path), "--format", "sarif"])
        assert code == EXIT_CLEAN
        assert json.loads(out)["runs"][0]["results"] == []


class TestLabelStability:
    def test_package_files_keep_package_relative_labels(self):
        # Naming a package file directly must not change its label:
        # waivers and baselines key on the package-relative path.
        from pathlib import Path

        import repro
        from repro.lint.core import load_project

        kernel = Path(repro.__file__).parent / "sim" / "kernel.py"
        project = load_project([str(kernel)])
        assert [m.path for m in project.modules] == ["sim/kernel.py"]

    def test_outside_files_fall_back_to_root_relative(self, tmp_path):
        from repro.lint.core import load_project

        (tmp_path / "mod.py").write_text(CLEAN)
        project = load_project([str(tmp_path)])
        assert [m.path for m in project.modules] == ["mod.py"]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
