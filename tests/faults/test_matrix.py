"""Every fault class in the matrix lands in its expected detector."""

import json

import pytest

from repro.faults.matrix import (
    default_matrix,
    render_results,
    results_to_json,
    run_entry,
    run_matrix,
)

# Run the full matrix once; individual tests assert per-entry facts.
_RESULTS = {r.entry.name: r for r in run_matrix()}


def test_matrix_covers_every_site():
    sites = {e.spec.site for e in default_matrix()}
    from repro.faults import SITES

    assert sites == set(SITES)


def test_baseline_workload_is_clean():
    baseline = _RESULTS["baseline"]
    assert baseline.outcome == "not-triggered"
    assert baseline.fires == 0


@pytest.mark.parametrize("entry", default_matrix(), ids=lambda e: e.name)
def test_entry_matches_expected_classification(entry):
    result = _RESULTS[entry.name]
    assert result.ok, (
        f"{entry.name}: expected {entry.expected}, got {result.outcome} "
        f"({result.detail})"
    )
    assert result.outcome != "missed"  # zero silent hangs, ever


def test_liveness_faults_produce_diagnostic_dumps():
    for name in ("drain-drop", "fiq-lose", "cam-stale", "arbiter-starve"):
        result = _RESULTS[name]
        assert result.dump is not None
        assert "watchdog" in result.dump
        assert "in-flight bus tenures" in result.dump


def test_checker_fault_counts_violations():
    result = _RESULTS["snoop-silent"]
    assert result.violations > 0
    assert "violation" in result.detail


def test_benign_faults_actually_fired():
    for name in ("drain-delay", "fiq-delay", "mem-delay"):
        assert _RESULTS[name].fires > 0


def test_render_results_table():
    table = render_results(list(_RESULTS.values()))
    assert "expected" in table
    assert "drain-drop" in table
    assert "MISMATCH" not in table


def test_results_json_round_trips():
    payload = json.loads(results_to_json(list(_RESULTS.values())))
    assert len(payload) == len(_RESULTS)
    by_name = {item["name"]: item for item in payload}
    assert by_name["drain-drop"]["outcome"] == "watchdog"
    assert by_name["drain-drop"]["dump"]
    assert all(item["ok"] for item in payload)
