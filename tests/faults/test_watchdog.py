"""Watchdog config validation, non-interference, and detection."""

import pytest

from repro.core.platform import Platform, PlatformConfig
from repro.cpu.presets import preset_arm920t, preset_powerpc755
from repro.errors import ConfigError
from repro.faults import WatchdogConfig
from repro.workloads.microbench import MicrobenchSpec, run_microbench


class TestConfig:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            WatchdogConfig(check_interval_ns=0)

    def test_threshold_must_cover_interval(self):
        with pytest.raises(ConfigError):
            WatchdogConfig(check_interval_ns=1000, stall_threshold_ns=500)

    def test_with_copies(self):
        config = WatchdogConfig().with_(stall_threshold_ns=500_000)
        assert config.stall_threshold_ns == 500_000


class TestNonInterference:
    def test_healthy_workload_unbothered(self):
        """A watchdog on a legitimate contended run must never fire."""
        spec = MicrobenchSpec(scenario="wcs", solution="proposed",
                              lines=4, iterations=2)
        plain = run_microbench(spec)
        watched = run_microbench(spec, watchdog=WatchdogConfig())
        assert watched.elapsed_ns == plain.elapsed_ns
        assert watched.stats == plain.stats

    def test_platform_without_watchdog_has_none(self):
        platform = Platform(
            PlatformConfig(cores=(preset_powerpc755(), preset_arm920t()))
        )
        assert platform.watchdog is None
        assert platform.fault_engine is None


class TestReporting:
    def test_build_report_snapshot_on_healthy_platform(self):
        spec = MicrobenchSpec(scenario="wcs", solution="proposed",
                              lines=4, iterations=2)
        result = run_microbench(
            spec, keep_platform=True, watchdog=WatchdogConfig()
        )
        report = result.platform.watchdog.build_report("livelock")
        names = {m.name for m in report.masters}
        assert names == {"ppc755", "arm920t"}
        assert report.stalled == []  # nothing was stuck
        assert "watchdog livelock report" in report.render()
        # The completed run's counters made it into the snapshot.
        assert all(m.retired > 0 for m in report.masters)
