"""Unit tests for the assembler."""

import pytest

from repro.cpu import Assembler
from repro.errors import AssemblerError


class TestLabels:
    def test_forward_reference_resolves(self):
        asm = Assembler()
        asm.jmp("end")
        asm.nop()
        asm.label("end")
        asm.halt()
        program = asm.assemble()
        assert program[0].target == 2

    def test_backward_reference_resolves(self):
        asm = Assembler()
        asm.label("top")
        asm.nop()
        asm.jmp("top")
        program = asm.assemble()
        assert program[1].target == 0

    def test_unknown_label_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblerError):
            asm.label("x")

    def test_isr_label_recorded(self):
        asm = Assembler()
        asm.halt()
        asm.isr("_isr")
        asm.rfi()
        program = asm.assemble()
        assert program.isr_entry == 1

    def test_no_isr_is_none(self):
        asm = Assembler()
        asm.halt()
        assert asm.assemble().isr_entry is None


class TestEmitters:
    def test_every_emitter_produces_valid_instr(self):
        asm = Assembler()
        asm.label("t")
        asm.li(1, 5).mov(2, 1).add(3, 1, 2).addi(3, 3, 1).sub(4, 3, 1)
        asm.subi(4, 4, 1).and_(5, 1, 2).or_(5, 1, 2).xor(5, 1, 2)
        asm.mul(6, 1, 2).shl(6, 6, 1).shr(6, 6, 1)
        asm.ld(7, 1).st(7, 1).swp(7, 1)
        asm.beq(1, 2, "t").bne(1, 2, "t").blt(1, 2, "t").bge(1, 2, "t")
        asm.jmp("t").jal(8, "t").jr(8)
        asm.dcbf(1).dcbi(1).dcbst(1).sync()
        asm.ei().di()
        asm.nop().delay(5).halt()
        program = asm.assemble()
        assert len(program) == 31

    def test_chaining_returns_self(self):
        asm = Assembler()
        assert asm.nop() is asm

    def test_listing_contains_labels_and_indices(self):
        asm = Assembler()
        asm.label("entry")
        asm.li(1, 7)
        asm.halt()
        listing = asm.assemble().listing()
        assert "entry:" in listing
        assert "LI r1, 0x7" in listing

    def test_getitem_and_len(self):
        asm = Assembler()
        asm.nop().halt()
        program = asm.assemble()
        assert len(program) == 2
        assert program[1].op == "HALT"

    def test_invalid_register_rejected_at_emit(self):
        from repro.errors import IsaError

        with pytest.raises(IsaError):
            Assembler().li(99, 0)
