"""The pure-software coherence solution (Section 4, baseline 2).

When no snooping hardware exists, the programmer must drain (write back
and invalidate) every shared cache line used inside a critical section
*before releasing the lock*, so the next lock holder reads current data
from memory.  These emitters produce that exit sequence; their cost —
one DCBF plus an ordering SYNC per line, inside the lock hold time —
is exactly what the proposed hardware solution eliminates.
"""

from __future__ import annotations

from ..cpu.assembler import Assembler
from ..errors import ConfigError

__all__ = ["emit_drain_block", "emit_invalidate_block", "drain_instruction_count"]


def emit_drain_block(
    asm: Assembler,
    base_addr: int,
    n_lines: int,
    line_bytes: int = 32,
    sync_each: bool = True,
    label_stem: str = "drain",
) -> None:
    """Emit a loop draining ``n_lines`` lines starting at ``base_addr``.

    Clobbers r10 (cursor) and r11 (count).  ``sync_each`` inserts the
    ordering SYNC after every DCBF (PowerPC dcbf and ARM920T clean-and-
    invalidate both require one for the push to be observable); passing
    False models a relaxed exit sequence with a single trailing SYNC.
    """
    if n_lines < 1:
        raise ConfigError(f"drain of {n_lines} lines")
    loop = f"_{label_stem}_{base_addr:x}_{len(asm._instrs)}"
    asm.li(10, base_addr)
    asm.li(11, n_lines)
    asm.label(loop)
    asm.dcbf(10)
    if sync_each:
        asm.sync()
    asm.addi(10, 10, line_bytes)
    asm.subi(11, 11, 1)
    asm.bne(11, 0, loop)
    if not sync_each:
        asm.sync()


def emit_invalidate_block(
    asm: Assembler,
    base_addr: int,
    n_lines: int,
    line_bytes: int = 32,
    label_stem: str = "inval",
) -> None:
    """Emit a loop invalidating (without write-back) ``n_lines`` lines.

    The entry-side counterpart used when a task only *read* shared data
    and wants to discard possibly stale copies.  Clobbers r10/r11.
    """
    if n_lines < 1:
        raise ConfigError(f"invalidate of {n_lines} lines")
    loop = f"_{label_stem}_{base_addr:x}_{len(asm._instrs)}"
    asm.li(10, base_addr)
    asm.li(11, n_lines)
    asm.label(loop)
    asm.dcbi(10)
    asm.addi(10, 10, line_bytes)
    asm.subi(11, 11, 1)
    asm.bne(11, 0, loop)


def drain_instruction_count(n_lines: int, sync_each: bool = True) -> int:
    """Instructions executed by :func:`emit_drain_block` (for cost models)."""
    per_line = 4 + (1 if sync_each else 0)
    return 2 + per_line * n_lines + (0 if sync_each else 1)
