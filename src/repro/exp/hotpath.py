"""Hot-path microbenchmarks for the simulation substrate.

Measures the three layers every paper-evaluation number flows through —
the event kernel, the cache tag array, and the tracing fabric — plus
the end-to-end wall time of a fixed Table-2 workload (the MESI + MEI
protocol pair of the paper's Table 2 running the WCS critical-section
kernel) and the cross-engine throughput of the reference workload
(exact vs batch, see ``docs/engines.md``).  Results are written to
``BENCH_hotpath.json`` at the repo root so successive PRs accumulate a
performance trajectory, and the CI ``perf-smoke`` job fails on
regressions against the committed baseline.

Result documents are **schema 2**: tagged with the execution engine
(name, version, native build or not) and the Python implementation.
Perf numbers are only comparable like-for-like — a pure-Python
baseline checked against a native-build run, or an exact baseline
against a batch run, would "regress" or "improve" meaninglessly — so
:func:`baseline_mismatch` refuses cross-engine and cross-implementation
comparisons, and the check paths exit with status 2 on them.

The functions here are import-safe for both the ``benchmarks/`` script
and the ``repro bench hotpath`` CLI subcommand; they depend only on the
standard library and the package itself.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..cache.array import CacheArray, CacheGeometry
from ..cache.line import State
from ..cache.protocols import make_protocol
from ..errors import ConfigError
from ..sim import Simulator, Tracer

__all__ = [
    "BENCH_FILE",
    "run_suite",
    "render_comparison",
    "check_regression",
    "baseline_mismatch",
]

#: canonical result file name (at the repository root)
BENCH_FILE = "BENCH_hotpath.json"

#: metrics where larger is better (rates); wall times are inverted
RATE_METRICS = (
    "kernel_events_per_sec",
    "kernel_timeout_events_per_sec",
    "array_lookups_per_sec",
    "tracer_disabled_emits_per_sec",
    "engine_exact_accesses_per_sec",
    "engine_batch_accesses_per_sec",
    "engine_batch_replay_events_per_sec",
)
TIME_METRICS = ("table2_e2e_seconds",)


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Smallest elapsed wall time over ``repeats`` runs of ``fn``."""
    return min(fn() for _ in range(repeats))


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------
def _kernel_zero_delay(n: int) -> float:
    """n rounds of event-create / succeed / resume, all on one tick.

    This is the kernel's same-tick hot path: every ``succeed`` schedules
    a zero-delay firing and every firing resumes a waiting process.
    """
    sim = Simulator()

    def driver():
        event = sim.event
        for _ in range(n):
            ev = event()
            ev.succeed(None)
            yield ev

    sim.process(driver())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def _kernel_timeouts(n: int) -> float:
    """n one-tick timeouts through the time heap (process resume path)."""
    sim = Simulator()

    def driver():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1)

    sim.process(driver())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# cache array
# ---------------------------------------------------------------------------
def _array_lookups(n: int) -> float:
    """n lookups (3/4 hits, 1/4 misses) against a full 16 KiB 4-way array."""
    geom = CacheGeometry(16 * 1024, 32, 4)
    array = CacheArray(geom)
    protocol = make_protocol("MESI")
    data = [0] * geom.line_words
    for set_index in range(geom.n_sets):
        for way in range(geom.ways):
            addr = geom.rebuild_addr(way, set_index)
            array.install(addr, way, data, State.EXCLUSIVE, protocol)
    hits = [geom.rebuild_addr(way, s) for way in range(3) for s in (0, 7, 31, 63)]
    misses = [geom.rebuild_addr(geom.ways + 9, s) for s in (0, 7, 31, 63)]
    addrs = (hits + misses) * (n // (len(hits) + len(misses)) + 1)
    addrs = addrs[:n]
    lookup = array.lookup
    start = time.perf_counter()
    for addr in addrs:
        lookup(addr)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
def _tracer_disabled_emits(n: int) -> float:
    """n disabled-channel emissions as a component call site performs them.

    Uses the cached channel-guard API when the tracer provides it (the
    optimised call-site idiom); otherwise falls back to the legacy
    unconditional ``emit`` call, which is what seed call sites paid.
    """
    tracer = Tracer(channels=())
    if hasattr(tracer, "channel"):
        ch = tracer.channel("bus")
        start = time.perf_counter()
        for i in range(n):
            if ch.enabled:
                ch.emit(i, "m0", "grant", op="rd", addr=i, retry_no=0)
        return time.perf_counter() - start
    emit = tracer.emit
    start = time.perf_counter()
    for i in range(n):
        emit(i, "bus", "m0", "grant", op="rd", addr=i, retry_no=0)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# end-to-end: the Table-2 protocol pair under the WCS kernel
# ---------------------------------------------------------------------------
def _table2_e2e(iterations: int) -> float:
    """Wall time of the fixed Table-2 workload (MESI + MEI, WCS loop)."""
    from ..cpu.presets import preset_generic
    from ..workloads.microbench import MicrobenchSpec, run_microbench

    spec = MicrobenchSpec(
        scenario="wcs",
        solution="proposed",
        lines=16,
        exec_time=2,
        iterations=iterations,
    )
    cores = (preset_generic("p1", "MESI"), preset_generic("p2", "MEI"))
    start = time.perf_counter()
    result = run_microbench(spec, cores=cores)
    elapsed = time.perf_counter() - start
    if result.elapsed_ns <= 0:  # pragma: no cover - sanity guard
        raise RuntimeError("table2 e2e workload simulated zero time")
    return elapsed


# ---------------------------------------------------------------------------
# cross-engine throughput: the reference workload on exact vs batch
# ---------------------------------------------------------------------------
def _engine_metrics(n_accesses: int, repeats: int) -> Dict[str, float]:
    """Reference-workload throughput of the exact and batch engines.

    ``engine_batch_replay_events_per_sec`` expresses the batch engine's
    rate in kernel-event-equivalent terms: the number of events the
    exact engine fires replaying this trace, divided by the batch
    engine's wall time.  That is the like-for-like counterpart of
    ``kernel_events_per_sec`` for an engine that fires no events.
    """
    from ..engines import get_engine, reference_config, reference_workload

    config = reference_config()
    accesses = reference_workload(n=n_accesses)
    exact, batch = get_engine("exact"), get_engine("batch")
    events = 0

    def exact_wall() -> float:
        nonlocal events
        result = exact.run(config, accesses)
        events = result.events
        return result.wall_s

    exact_s = _best_of(repeats, exact_wall)
    batch_s = _best_of(repeats, lambda: batch.run(config, accesses).wall_s)
    return {
        "engine_exact_accesses_per_sec": len(accesses) / exact_s,
        "engine_batch_accesses_per_sec": len(accesses) / batch_s,
        "engine_batch_replay_events_per_sec": events / batch_s,
        "engine_batch_speedup_vs_exact": exact_s / batch_s,
    }


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------
def run_suite(
    quick: bool = False, repeats: int = 3, engine: str = "exact"
) -> Dict[str, Any]:
    """Run every hot-path benchmark; returns the result document.

    ``engine`` tags the document with the kernel engine the suite ran
    under (``exact``, or ``compiled`` when exercising a native build);
    the kernel/array/tracer/e2e metrics execute the event kernel, so
    the statistics-only ``batch`` engine cannot be the tag — its
    throughput is reported by the ``engine_batch_*`` metrics instead.
    """
    from ..core.platform import KERNEL_ENGINES
    from ..engines import engine_fingerprint

    if engine not in KERNEL_ENGINES:
        raise ConfigError(
            f"hotpath suite runs the event kernel; engine {engine!r} "
            f"cannot tag it (choose from {list(KERNEL_ENGINES)})"
        )
    scale = 1 if quick else 5
    n_kernel = 40_000 * scale
    n_array = 80_000 * scale
    n_tracer = 120_000 * scale
    n_engine = 1_000 * scale
    # The e2e workload is FIXED across quick/full: it is a wall time, so
    # a quick run must stay comparable to a committed full-mode baseline
    # (the rate metrics are size-independent; a shrunk wall time is not).
    e2e_iters = 20

    metrics = {
        "kernel_events_per_sec": n_kernel / _best_of(repeats, lambda: _kernel_zero_delay(n_kernel)),
        "kernel_timeout_events_per_sec": n_kernel / _best_of(repeats, lambda: _kernel_timeouts(n_kernel)),
        "array_lookups_per_sec": n_array / _best_of(repeats, lambda: _array_lookups(n_array)),
        "tracer_disabled_emits_per_sec": n_tracer / _best_of(repeats, lambda: _tracer_disabled_emits(n_tracer)),
        "table2_e2e_seconds": _best_of(repeats, lambda: _table2_e2e(e2e_iters)),
    }
    metrics.update(_engine_metrics(n_engine, repeats))
    return {
        "schema": 2,
        "suite": "hotpath",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "impl": _platform.python_implementation(),
        "engine": engine_fingerprint(engine),
        "params": {
            "kernel_events": n_kernel,
            "array_lookups": n_array,
            "tracer_emits": n_tracer,
            "engine_accesses": n_engine,
            "table2_iterations": e2e_iters,
            "repeats": repeats,
        },
        "metrics": {
            k: round(v, 6) if k in TIME_METRICS else round(v, 1)
            for k, v in metrics.items()
        },
    }


def speedups(current: Dict[str, Any], baseline: Dict[str, Any]) -> Dict[str, float]:
    """Per-metric speedup of ``current`` over ``baseline`` (>1 is faster)."""
    out: Dict[str, float] = {}
    cur, base = current.get("metrics", {}), baseline.get("metrics", {})
    for key in RATE_METRICS:
        if key in cur and key in base and base[key]:
            out[key] = cur[key] / base[key]
    for key in TIME_METRICS:
        if key in cur and key in base and cur[key]:
            out[key] = base[key] / cur[key]
    return out


def render_comparison(current: Dict[str, Any], baseline: Optional[Dict[str, Any]]) -> str:
    """Human-readable table of the run, against a baseline when given."""
    engine = current.get("engine") or {}
    tag = engine.get("name", "exact") + (
        " native" if engine.get("native") else ""
    )
    lines = [
        f"hotpath suite (quick={current.get('quick')}, "
        f"py {current.get('python')}, engine {tag})"
    ]
    ratios = speedups(current, baseline) if baseline else {}
    for key, value in current.get("metrics", {}).items():
        if key in TIME_METRICS:
            rendered = f"{value:.4f} s"
        elif key.endswith("speedup_vs_exact"):
            rendered = f"{value:>14,.1f} x"
        else:
            rendered = f"{value:>14,.0f} /s"
        suffix = f"   {ratios[key]:.2f}x vs baseline" if key in ratios else ""
        lines.append(f"  {key:<36} {rendered}{suffix}")
    return "\n".join(lines)


def baseline_mismatch(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Why ``current`` must not be perf-compared against ``baseline``.

    Engine and Python-implementation tags must agree: a pure-Python run
    against a native-build baseline (or CPython vs PyPy) would report a
    "regression" that is really a platform difference.  Legacy schema-1
    baselines carry no tags; absent fields are not treated as
    mismatches so old baselines keep working until regenerated.
    """
    problems: List[str] = []
    base_engine = (baseline.get("engine") or {}).get("name")
    cur_engine = (current.get("engine") or {}).get("name")
    if base_engine is not None and cur_engine is not None \
            and base_engine != cur_engine:
        problems.append(
            f"baseline was recorded under engine {base_engine!r}, "
            f"this run used {cur_engine!r}"
        )
    base_native = (baseline.get("engine") or {}).get("native")
    cur_native = (current.get("engine") or {}).get("native")
    if base_native is not None and cur_native is not None \
            and base_native != cur_native:
        problems.append(
            f"baseline was recorded with native={base_native}, "
            f"this run has native={cur_native}"
        )
    base_impl, cur_impl = baseline.get("impl"), current.get("impl")
    if base_impl is not None and cur_impl is not None \
            and base_impl != cur_impl:
        problems.append(
            f"baseline was recorded on {base_impl}, this run is on "
            f"{cur_impl}"
        )
    return problems


def check_regression(
    current: Dict[str, Any], baseline: Dict[str, Any], tolerance: float = 0.25
) -> list[str]:
    """Metrics of ``current`` more than ``tolerance`` worse than baseline."""
    failures = []
    for key, ratio in speedups(current, baseline).items():
        if ratio < 1.0 - tolerance:
            failures.append(f"{key}: {ratio:.2f}x of baseline (floor {1.0 - tolerance:.2f}x)")
    return failures


def load_results(path: str) -> Optional[Dict[str, Any]]:
    """Parse a previously written result file (None when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
