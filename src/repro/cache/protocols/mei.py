"""The MEI protocol (PowerPC755-style: Modified, Exclusive, Invalid).

With no Shared state, every valid line is the only cached copy in the
system.  A snooped read therefore cannot downgrade to S — the holder
pushes dirty data and invalidates (the PowerPC755 behaviour the paper
builds on: the ARTRY/drain handshake of Section 3).
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["MEIProtocol"]


class MEIProtocol(CoherenceProtocol):
    """Modified / Exclusive / Invalid."""

    name = "MEI"
    states = frozenset({State.MODIFIED, State.EXCLUSIVE, State.INVALID})
    uses_shared_signal = False
    supports_supply = False

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        return State.MODIFIED if exclusive else State.EXCLUSIVE

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state in (State.MODIFIED, State.EXCLUSIVE):
            return State.MODIFIED, WriteAction.NONE
        raise ProtocolError(f"MEI write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        # Any external touch invalidates: there is no S to retreat to.
        if state is State.MODIFIED:
            if op is SnoopOp.INVALIDATE:
                # An upgrade cannot target a line another cache holds M;
                # treat defensively as invalidate-with-drain.
                return SnoopOutcome(State.INVALID, drain=True)
            return SnoopOutcome(State.INVALID, drain=True)
        # EXCLUSIVE: clean, just drop the copy.
        return SnoopOutcome(State.INVALID)
