"""Delta-debugging shrinker: minimise a failing case, keep the failure.

Given a :class:`~repro.fuzz.case.FuzzCase` whose outcome is
interesting (a violation, a deadlock, ...), :func:`shrink_case`
produces the smallest case it can find that still classifies the same
way:

1. the workload is frozen into its *explicit* form (literal access
   lists) so individual accesses become deletable without disturbing
   any generator's RNG stream;
2. classic ddmin over the accesses: remove chunks, halve the chunk
   size on failure to reduce, until the access list is 1-minimal
   (every single remaining access is load-bearing);
3. greedy configuration passes: drop the fault spec, shrink the cache
   geometry — each simplification is kept only when the failure class
   survives it.

Every probe is a full deterministic :func:`~repro.fuzz.case.run_case`,
so the shrunk case replays byte-identically: running it twice yields
the same classification, the same detail string, the same simulated
timestamps.  ``max_tests`` bounds the probe budget; when it runs out
the best case found so far is returned (still failing, just possibly
not minimal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .case import FuzzCase, explicit_workload, run_case

__all__ = ["ShrinkResult", "shrink_case", "count_accesses"]


def count_accesses(workload: Dict[str, Any]) -> int:
    """Number of accesses an (explicit) workload will issue."""
    if workload.get("kind") == "explicit-serial":
        return len(workload["accesses"])
    if workload.get("kind") == "explicit":
        return sum(len(trace) for trace in workload["traces"].values())
    return count_accesses(explicit_workload(workload))


@dataclass
class ShrinkResult:
    """What the shrinker achieved."""

    original: FuzzCase
    shrunk: FuzzCase
    #: the failure class that was preserved throughout
    outcome: str
    accesses_before: int
    accesses_after: int
    tests_run: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "original": self.original.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "outcome": self.outcome,
            "accesses_before": self.accesses_before,
            "accesses_after": self.accesses_after,
            "tests_run": self.tests_run,
        }

    def summary(self) -> str:
        """One-line human rendering."""
        return (
            f"shrunk {self.accesses_before} -> {self.accesses_after} "
            f"accesses in {self.tests_run} probes, outcome={self.outcome!r}"
        )


class _Budget:
    """Probe counter with a hard ceiling."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _flatten(workload: Dict[str, Any]) -> List[Tuple[Optional[str], Any]]:
    """Explicit workload -> list of (proc_key, access) in issue order."""
    if workload["kind"] == "explicit-serial":
        return [(None, access) for access in workload["accesses"]]
    flat: List[Tuple[Optional[str], Any]] = []
    for proc in sorted(workload["traces"]):
        for access in workload["traces"][proc]:
            flat.append((proc, access))
    return flat


def _rebuild(
    workload: Dict[str, Any], flat: List[Tuple[Optional[str], Any]]
) -> Dict[str, Any]:
    """Inverse of :func:`_flatten` for a (subset of a) flat list."""
    if workload["kind"] == "explicit-serial":
        return {"kind": "explicit-serial",
                "accesses": [access for _proc, access in flat]}
    traces: Dict[str, List[Any]] = {proc: [] for proc in workload["traces"]}
    for proc, access in flat:
        traces[proc].append(access)
    # Drop processors whose trace shrank to nothing: a driver with no
    # accesses contributes only noise to the replay.
    traces = {proc: trace for proc, trace in traces.items() if trace}
    if not traces:
        traces = {"0": []}
    return {"kind": "explicit", "traces": traces}


def _ddmin(items: List[Any], test, budget: _Budget) -> List[Any]:
    """Zeller's ddmin: the returned subset still passes ``test``.

    ``test(subset)`` must return True when the failure persists.
    ``items`` itself is assumed to pass.
    """
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and budget.take() and test(candidate):
                items = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                # re-test from the same offset: the list shifted left
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_case(
    case: FuzzCase,
    target_outcome: Optional[str] = None,
    max_tests: int = 500,
) -> ShrinkResult:
    """Minimise ``case`` while preserving its failure class.

    ``target_outcome`` defaults to whatever :func:`run_case` classifies
    the input as; shrinking a ``"clean"`` case is rejected upstream by
    the CLI (there is nothing to preserve).
    """
    original = case
    budget = _Budget(max_tests)
    if target_outcome is None:
        budget.take()
        target_outcome = run_case(case).outcome

    if case.scenario == "deadlock":
        # Nothing deletable: the scenario is already the paper's
        # minimal Fig 4 interleaving.
        return ShrinkResult(
            original=original, shrunk=case, outcome=target_outcome,
            accesses_before=0, accesses_after=0, tests_run=budget.used,
        )

    case = case.with_(workload=explicit_workload(case.workload))
    before = count_accesses(case.workload)

    def still_fails(candidate: FuzzCase) -> bool:
        return run_case(candidate).outcome == target_outcome

    # -- pass 1: ddmin over the accesses --------------------------------
    flat = _flatten(case.workload)

    def test_subset(subset) -> bool:
        return still_fails(
            case.with_(workload=_rebuild(case.workload, subset))
        )

    flat = _ddmin(flat, test_subset, budget)
    case = case.with_(workload=_rebuild(case.workload, flat))

    # -- pass 2: greedy config simplifications --------------------------
    for simplify in _CONFIG_PASSES:
        candidate = simplify(case)
        if candidate is not None and budget.take() and still_fails(candidate):
            case = candidate

    return ShrinkResult(
        original=original,
        shrunk=case,
        outcome=target_outcome,
        accesses_before=before,
        accesses_after=count_accesses(case.workload),
        tests_run=budget.used,
    )


_SMALLEST_SIZE = 256
_DIRECT_WAY = 1


def _drop_fault(case: FuzzCase) -> Optional[FuzzCase]:
    return case.with_(fault=None) if case.fault is not None else None


def _smallest_sizes(case: FuzzCase) -> tuple:
    # Sized to the case's master count, not a hardcoded pair.
    return (_SMALLEST_SIZE,) * len(case.cache_sizes)


def _direct_mapped(case: FuzzCase) -> tuple:
    return (_DIRECT_WAY,) * len(case.cache_ways)


def _shrink_geometry(case: FuzzCase) -> Optional[FuzzCase]:
    sizes, ways = _smallest_sizes(case), _direct_mapped(case)
    if case.cache_sizes == sizes and case.cache_ways == ways:
        return None
    return case.with_(cache_sizes=sizes, cache_ways=ways)


def _shrink_sizes(case: FuzzCase) -> Optional[FuzzCase]:
    sizes = _smallest_sizes(case)
    if case.cache_sizes == sizes:
        return None
    return case.with_(cache_sizes=sizes)


def _shrink_ways(case: FuzzCase) -> Optional[FuzzCase]:
    ways = _direct_mapped(case)
    if case.cache_ways == ways:
        return None
    return case.with_(cache_ways=ways)


#: tried in order; each accepted only when the failure class survives
_CONFIG_PASSES = (_drop_fault, _shrink_geometry, _shrink_sizes, _shrink_ways)
