"""Coherence fabrics: interconnect organisations behind one contract.

See :mod:`repro.fabric.interfaces` for the contract and
``docs/fabrics.md`` for semantics and paper-faithfulness notes.
Importing this package registers the three shipped fabrics.
"""

from .interfaces import FabricCapabilities, IFabric
from .registry import (
    fabric_fingerprint,
    fabric_names,
    get_fabric,
    make_fabric,
    register_fabric,
)
from .atomic import AtomicFabric
from .split import SplitBus
from .directory import BankedArbiter, DirectoryFabric

__all__ = [
    "FabricCapabilities",
    "IFabric",
    "register_fabric",
    "get_fabric",
    "fabric_names",
    "make_fabric",
    "fabric_fingerprint",
    "AtomicFabric",
    "SplitBus",
    "BankedArbiter",
    "DirectoryFabric",
]
