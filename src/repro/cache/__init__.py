"""Cache subsystem: arrays, lines, protocols, the snooping controller."""

from .array import CacheArray, CacheGeometry
from .controller import CacheController, SnoopDecision
from .line import CacheLine, State
from .protocols import (
    PROTOCOLS,
    CoherenceProtocol,
    MEIProtocol,
    MESIProtocol,
    MOESIProtocol,
    MSIProtocol,
    SIProtocol,
    SnoopOp,
    SnoopOutcome,
    WriteAction,
    make_protocol,
)

__all__ = [
    "CacheArray",
    "CacheGeometry",
    "CacheController",
    "SnoopDecision",
    "CacheLine",
    "State",
    "CoherenceProtocol",
    "SnoopOp",
    "SnoopOutcome",
    "WriteAction",
    "MEIProtocol",
    "MSIProtocol",
    "MESIProtocol",
    "MOESIProtocol",
    "SIProtocol",
    "PROTOCOLS",
    "make_protocol",
]
