"""Fuzzing-as-jobs adapter: payload round-trips, determinism, registry."""

import pytest

from repro.errors import ConfigError
from repro.exp.cache import content_key
from repro.exp.jobs import job_from_payload, job_kinds
from repro.fuzz.gen import CaseGenerator
from repro.fuzz.jobs import FuzzCaseJob, ShrinkJob


class TestRegistry:
    def test_fuzz_kinds_are_registered(self):
        kinds = job_kinds()
        assert "fuzz_case" in kinds
        assert "shrink" in kinds

    def test_payload_round_trips_generative(self):
        job = FuzzCaseJob(seed=7, index=3, n_masters=4, fabric="split")
        rebuilt = job_from_payload(job.payload())
        assert isinstance(rebuilt, FuzzCaseJob)
        assert rebuilt.payload() == job.payload()

    def test_payload_round_trips_explicit(self):
        case = CaseGenerator(11, n_masters=2).case(0)
        job = FuzzCaseJob.from_case(case)
        rebuilt = job_from_payload(job.payload())
        assert rebuilt.payload() == job.payload()
        assert rebuilt.resolve_case().to_dict() == case.to_dict()

    def test_shrink_round_trips(self):
        case = CaseGenerator(11, n_masters=2).case(0)
        job = ShrinkJob.from_case(case, max_tests=10)
        rebuilt = job_from_payload(job.payload())
        assert isinstance(rebuilt, ShrinkJob)
        assert rebuilt.payload() == job.payload()

    def test_shrink_without_case_rejected(self):
        with pytest.raises(ConfigError):
            job_from_payload({"kind": "shrink"})


class TestContentAddressing:
    def test_generative_key_is_stable(self):
        a = FuzzCaseJob(seed=7, index=3).payload()
        b = FuzzCaseJob(seed=7, index=3).payload()
        assert content_key(a) == content_key(b)

    def test_distinct_indices_get_distinct_keys(self):
        a = FuzzCaseJob(seed=7, index=0).payload()
        b = FuzzCaseJob(seed=7, index=1).payload()
        assert content_key(a) != content_key(b)

    def test_explicit_and_generative_forms_differ(self):
        generative = FuzzCaseJob(seed=11, index=0)
        explicit = FuzzCaseJob.from_case(generative.resolve_case())
        assert content_key(generative.payload()) != content_key(
            explicit.payload()
        )


class TestExecution:
    def test_generative_case_is_index_stable(self):
        job = FuzzCaseJob(
            seed=2004, index=0, n_masters=2,
            p_deadlock=0.0, p_unwrapped=0.0, p_fault=0.0,
        )
        assert (
            job.resolve_case().to_dict()
            == job.resolve_case().to_dict()
        )

    def test_run_classifies_against_the_oracle(self):
        job = FuzzCaseJob(
            seed=2004, index=0, n_masters=2,
            p_deadlock=0.0, p_unwrapped=0.0, p_fault=0.0,
        )
        result = job.run()
        assert "outcome" in result
        assert result["case"] == job.resolve_case().to_dict()

    def test_run_is_deterministic(self):
        job = FuzzCaseJob(
            seed=2004, index=1, n_masters=2,
            p_deadlock=0.0, p_unwrapped=0.0, p_fault=0.0,
        )
        assert job.run() == job.run()

    def test_explicit_job_without_case_rejected(self):
        job = FuzzCaseJob(explicit=True)
        with pytest.raises(ConfigError):
            job.resolve_case()

    def test_labels_are_informative(self):
        assert "seed=7" in FuzzCaseJob(seed=7, index=3).label
        case = CaseGenerator(11, n_masters=2).case(0)
        assert ShrinkJob.from_case(case).label.startswith("shrink")
