"""Fixture twins for the three concurrency rules.

Every check gets a violating module and its fixed twin: the twin is
the in-tree fix shape (finally release, release-before-wait, snapshot
iteration, guarded drain commit, bypass/ceiling cycle breakers) and
must come back clean for the rule under test.
"""

import textwrap

from repro.lint.core import load_project, run_rules

CONCUR_RULES = ("resource-release", "hold-across-yield", "wait-cycle")


def findings_for(make_project, rule, files):
    project = make_project(
        {path: textwrap.dedent(src) for path, src in files.items()}
    )
    return [f for f in run_rules(project, [rule]) if f.rule == rule]


class TestResourceRelease:
    def test_unguarded_release_leaks_on_exception(self, make_project):
        found = findings_for(
            make_project,
            "resource-release",
            {
                "bus.py": """
                class Bus:
                    def transact(self, txn):
                        yield self.arbiter.request(txn, 0)
                        yield self.sim.timeout(2)
                        self.arbiter.release(txn)
                """
            },
        )
        (finding,) = found
        assert "bus-tenure" in finding.message
        assert "exception escapes" in finding.message
        assert finding.line == 4  # anchored at the acquire

    def test_return_path_skipping_release(self, make_project):
        found = findings_for(
            make_project,
            "resource-release",
            {
                "bus.py": """
                class Bus:
                    def transact(self, txn):
                        yield self.arbiter.request(txn, 0)
                        if txn:
                            return None
                        try:
                            yield self.sim.timeout(2)
                        finally:
                            self.arbiter.release(txn)
                """
            },
        )
        (finding,) = found
        assert "normal return path" in finding.message

    def test_finally_release_is_clean(self, make_project):
        found = findings_for(
            make_project,
            "resource-release",
            {
                "bus.py": """
                class Bus:
                    def transact(self, txn):
                        yield self.arbiter.request(txn, 0)
                        try:
                            yield self.sim.timeout(2)
                        finally:
                            self.arbiter.release(txn)
                """
            },
        )
        assert found == []

    def test_ownership_transfer_is_not_a_normal_path_leak(self, make_project):
        found = findings_for(
            make_project,
            "resource-release",
            {
                "split.py": """
                class Split:
                    def transact(self, txn):
                        yield self._acquire_slot()
                        self.sim.process(self._data_tenure(txn))
                        return None

                    def _data_tenure(self, txn):
                        yield self.sim.timeout(1)
                        self._release_slot()
                """
            },
        )
        # The handoff covers every *normal* return; only the window
        # between grant and spawn can leak (an exception there).
        assert all("normal return path" not in f.message for f in found)

    def test_missing_transfer_leaks_on_normal_path(self, make_project):
        found = findings_for(
            make_project,
            "resource-release",
            {
                "split.py": """
                class Split:
                    def transact(self, txn):
                        yield self._acquire_slot()
                        return None
                """
            },
        )
        (finding,) = found
        assert "window-slot" in finding.message


class TestHoldDenyList:
    def test_port_held_across_bus_wait(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Controller:
                    def read(self, addr):
                        yield self.port.acquire()
                        try:
                            yield self.arbiter.request(addr, 0)
                            try:
                                yield self.sim.timeout(1)
                            finally:
                                self.arbiter.release(addr)
                        finally:
                            self.port.release()
                """
            },
        )
        (finding,) = found
        assert "cache-port" in finding.message
        assert "bus-tenure" in finding.message

    def test_hold_through_yield_from_chain(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Bus:
                    def transact(self, txn):
                        yield self.arbiter.request(txn, 0)
                        try:
                            yield self.sim.timeout(1)
                        finally:
                            self.arbiter.release(txn)

                class Controller:
                    def read(self, addr):
                        yield self.port.acquire()
                        try:
                            value = yield from self.bus.transact(addr)
                        finally:
                            self.port.release()
                        return value
                """
            },
        )
        (finding,) = found
        assert "via transact" in finding.message

    def test_release_before_wait_is_clean(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Controller:
                    def read(self, addr):
                        yield self.port.acquire()
                        try:
                            value = self.lines[addr]
                        finally:
                            self.port.release()
                        yield self.arbiter.request(addr, 0)
                        try:
                            yield self.sim.timeout(1)
                        finally:
                            self.arbiter.release(addr)
                        return value
                """
            },
        )
        assert found == []


class TestLiveRegistryWalk:
    def test_live_snooper_iteration(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "bus.py": """
                class Bus:
                    def _snoop_window(self, txn):
                        replies = []
                        for snooper in self.snoopers:
                            replies.append(snooper.snoop(txn))
                        return replies
                """
            },
        )
        (finding,) = found
        assert "snoop-window" in finding.message
        assert "self.snoopers" in finding.message

    def test_local_alias_of_live_registry_still_flagged(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "bus.py": """
                class Bus:
                    def _snoop_window(self, txn):
                        snoopers = self.snoopers
                        for snooper in snoopers:
                            snooper.observe(txn)
                """
            },
        )
        (finding,) = found
        assert "snoop-window" in finding.message

    def test_snapshot_iteration_is_clean(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "bus.py": """
                class Bus:
                    def _snoop_window(self, txn):
                        replies = []
                        for snooper in tuple(self.snoopers):
                            replies.append(snooper.snoop(txn))
                        snapshot = tuple(self.snoopers)
                        for snooper in snapshot:
                            snooper.observe(txn)
                        return replies
                """
            },
        )
        assert found == []

    def test_loop_without_callbacks_is_clean(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "bus.py": """
                class Bus:
                    def names(self):
                        return [s.name for s in self.snoopers]

                    def count(self):
                        total = 0
                        for snooper in self.snoopers:
                            total += 1
                        return total
                """
            },
        )
        assert found == []


class TestStaleDrainCapture:
    def test_unguarded_drain_commit(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Controller:
                    def _drain_push(self, base, next_state):
                        line = self.array.lookup(base)

                        def commit(result):
                            line.state = next_state

                        yield from self.bus.transact(
                            self._txn(base), priority=Priority.DRAIN, commit=commit
                        )
                """
            },
        )
        (finding,) = found
        assert "stale capture" in finding.message
        assert "'commit'" in finding.message

    def test_snapshot_guarded_commit_is_clean(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Controller:
                    def _drain_push(self, base, next_state):
                        line = self.array.lookup(base)
                        snapshot = tuple(line.data)

                        def commit(result):
                            if tuple(line.data) != snapshot:
                                return
                            line.state = next_state

                        yield from self.bus.transact(
                            self._txn(base), priority=Priority.DRAIN, commit=commit
                        )
                """
            },
        )
        assert found == []

    def test_normal_priority_commit_not_flagged(self, make_project):
        found = findings_for(
            make_project,
            "hold-across-yield",
            {
                "ctrl.py": """
                class Controller:
                    def _miss(self, base, next_state):
                        line = self.array.lookup(base)

                        def commit(result):
                            line.state = next_state

                        yield from self.bus.transact(
                            self._txn(base), priority=Priority.NORMAL, commit=commit
                        )
                """
            },
        )
        assert found == []


# The port <-> drain-completion ring: a reader parks on the drain
# completion holding the port; the drain worker provides the
# completion only after taking the port.
_CYCLE_READER = """
class Controller:
    def read(self, addr):
        yield self.port.acquire()
        try:
            pending = self.pending
            if pending is not None:
                yield self.sim.all_of([pending.completion])
        finally:
            self.port.release()
"""

_CYCLE_WORKER = """
class Worker:
    def _drain_worker(self):
        while True:
            job = self.queue.popleft()
            yield self.port.acquire()
            try:
                yield self.sim.timeout(1)
            finally:
                self.port.release()
            job.completion.succeed()
"""

_BYPASS_WORKER = """
class Worker:
    def _drain_worker(self):
        while True:
            job = self.queue.popleft()
            if self.drain_needs_port:
                yield self.port.acquire()
                try:
                    yield self.sim.timeout(1)
                finally:
                    self.port.release()
            else:
                yield self.sim.timeout(1)
            job.completion.succeed()
"""


class TestWaitCycle:
    def test_port_drain_cycle_reported(self, make_project):
        found = findings_for(
            make_project,
            "wait-cycle",
            {"ctrl.py": _CYCLE_READER, "worker.py": _CYCLE_WORKER},
        )
        assert found, "expected the cache-port <-> drain-completion cycle"
        assert any(
            "cache-port" in f.message and "drain-completion" in f.message
            for f in found
        )
        assert all("waits-for cycle" in f.message for f in found)

    def test_drain_policy_bypass_breaks_the_cycle(self, make_project):
        found = findings_for(
            make_project,
            "wait-cycle",
            {"ctrl.py": _CYCLE_READER, "worker.py": _BYPASS_WORKER},
        )
        assert found == []

    def test_retry_ceiling_downgrades_to_livelock(self, make_project):
        reader = """
        class Ctrl:
            def read(self, addr):
                yield self.port.acquire()
                try:
                    while True:
                        yield self.arbiter.request(addr, 0)
                        self.arbiter.release(addr)
                        self._check_retry_ceiling(addr)
                        break
                finally:
                    self.port.release()
        """
        bus = """
        class Bus:
            def transact(self, txn):
                yield self.arbiter.request(txn, 0)
                try:
                    yield self.port.acquire()
                    self.port.release()
                finally:
                    self.arbiter.release(txn)
        """
        with_ceiling = findings_for(
            make_project, "wait-cycle", {"ctrl.py": reader, "bus.py": bus}
        )
        assert with_ceiling == []
        unguarded = findings_for(
            make_project,
            "wait-cycle",
            {
                "ctrl.py": reader.replace(
                    "self._check_retry_ceiling(addr)\n", "pass\n"
                ),
                "bus.py": bus,
            },
        )
        assert unguarded, "without the ceiling the ring must be reported"


class TestInTreeCleanliness:
    def test_package_source_has_zero_concurrency_findings(self):
        project = load_project()
        found = [
            f
            for f in run_rules(project, list(CONCUR_RULES))
            if f.rule in CONCUR_RULES
        ]
        assert found == [], [f.render() for f in found]
