"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`ablation_wrapper` — wrappers on/off on mismatched-protocol
  pairs (the live version of Tables 2/3: stale reads and invariant
  violations appear exactly when the wrapper is off).
* :func:`ablation_locks` — lock implementation (uncached spinlock,
  Bakery, hardware lock register) under the TCS workload.
* :func:`ablation_interrupt` — sensitivity of the proposed solution to
  the ARM's interrupt response/entry cost (the PF2-vs-PF3 discussion:
  "platforms without need for a special ISR would perform even better").
* :func:`ablation_arbitration` — fixed-priority vs round-robin bus
  arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..cpu.presets import preset_arm920t, preset_powerpc755
from ..workloads.microbench import MicrobenchSpec, run_microbench
from ..workloads.sequences import run_sequence

__all__ = [
    "AblationRow",
    "ablation_wrapper",
    "ablation_locks",
    "ablation_interrupt",
    "ablation_arbitration",
    "render_rows",
]


@dataclass
class AblationRow:
    """One configuration and its measured outcome."""

    label: str
    value: float
    unit: str

    def render(self) -> str:
        """Aligned one-line rendering."""
        return f"{self.label:52s} {self.value:12.1f} {self.unit}"


def render_rows(title: str, rows: Sequence[AblationRow]) -> str:
    """A titled block of ablation rows."""
    return "\n".join([title] + [row.render() for row in rows])


def ablation_wrapper(
    pairs: Sequence[Tuple[str, str]] = (("MESI", "MEI"), ("MSI", "MESI"), ("MESI", "MOESI")),
) -> List[AblationRow]:
    """Stale reads with and without the wrapper, per protocol pair."""
    rows = []
    for pair in pairs:
        for wrapped in (False, True):
            result = run_sequence(pair, wrapped=wrapped)
            mode = "wrapped" if wrapped else "unwrapped"
            rows.append(
                AblationRow(
                    f"{pair[0]}+{pair[1]} {mode}: stale reads",
                    result.stale_reads, "reads",
                )
            )
    return rows


def ablation_locks(
    kinds: Sequence[str] = ("swap", "bakery", "hw"),
    lines: int = 8,
    iterations: int = 8,
) -> List[AblationRow]:
    """TCS execution time per lock implementation (proposed solution)."""
    rows = []
    for kind in kinds:
        spec = MicrobenchSpec(
            "tcs", "proposed", lines=lines, iterations=iterations, lock=kind
        )
        result = run_microbench(spec)
        rows.append(AblationRow(f"TCS proposed, {kind} lock", result.elapsed_ns, "ns"))
    return rows


def ablation_interrupt(
    entry_cycles: Sequence[int] = (1, 4, 8, 16),
    lines: int = 8,
    iterations: int = 8,
) -> List[AblationRow]:
    """WCS proposed execution time vs ARM interrupt entry cost."""
    rows = []
    for cycles in entry_cycles:
        cores = (
            preset_powerpc755(),
            preset_arm920t().with_(interrupt_entry_cycles=cycles),
        )
        spec = MicrobenchSpec("wcs", "proposed", lines=lines, iterations=iterations)
        result = run_microbench(spec, cores=cores)
        rows.append(
            AblationRow(
                f"WCS proposed, interrupt entry = {cycles} cycles",
                result.elapsed_ns, "ns",
            )
        )
    return rows


def ablation_arbitration(
    lines: int = 8,
    iterations: int = 8,
) -> List[AblationRow]:
    """WCS execution time under both arbitration policies."""
    rows = []
    for policy in ("fixed", "round-robin"):
        spec = MicrobenchSpec("wcs", "proposed", lines=lines, iterations=iterations)
        result = run_microbench(spec, arbitration=policy)
        rows.append(AblationRow(f"WCS proposed, {policy} arbitration", result.elapsed_ns, "ns"))
    return rows
