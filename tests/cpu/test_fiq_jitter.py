"""Tests for the seeded FIQ response jitter."""

import pytest

from repro.core import Platform, PlatformConfig
from repro.cpu import Assembler, preset_arm920t, preset_powerpc755
from repro.workloads import MicrobenchSpec, run_microbench


def jittery_cores(jitter):
    return (
        preset_powerpc755(),
        preset_arm920t().with_(fiq_response_jitter_cycles=jitter),
    )


class TestJitter:
    def test_zero_jitter_is_default(self):
        assert preset_arm920t().fiq_response_jitter_cycles == 0

    def test_jittered_run_is_deterministic(self):
        spec = MicrobenchSpec("wcs", "proposed", lines=4, iterations=3)
        first = run_microbench(spec, cores=jittery_cores(8)).elapsed_ns
        second = run_microbench(spec, cores=jittery_cores(8)).elapsed_ns
        assert first == second  # seeded per core name: reproducible

    def test_jitter_changes_timing(self):
        spec = MicrobenchSpec("wcs", "proposed", lines=4, iterations=3)
        plain = run_microbench(spec, cores=jittery_cores(0)).elapsed_ns
        noisy = run_microbench(spec, cores=jittery_cores(16)).elapsed_ns
        assert noisy != plain

    def test_jitter_only_delays_never_hastens(self):
        """The jittered take time is never before the base response."""
        spec = MicrobenchSpec("wcs", "proposed", lines=2, iterations=4)
        plain = run_microbench(spec, cores=jittery_cores(0)).elapsed_ns
        noisy = run_microbench(spec, cores=jittery_cores(32)).elapsed_ns
        assert noisy >= plain

    def test_runs_stay_coherent_under_jitter(self):
        spec = MicrobenchSpec("wcs", "proposed", lines=4, iterations=3)
        run_microbench(spec, cores=jittery_cores(12), check=True)
