"""The exact engine: the discrete-event kernel, golden-trace identical.

A thin adapter: build the platform, drive the serialised trace through
the cache controllers one access at a time (each access completes
before the next begins, exactly like
:func:`repro.workloads.tracegen.replay_trace`), and collect the
counters plus the final line-state occupancy.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..core.platform import Platform, PlatformConfig
from .interfaces import EngineCapabilities, EngineRunResult, ISimEngine
from .registry import register_engine

__all__ = ["ExactEngine", "line_state_occupancy"]


def line_state_occupancy(platform: Platform) -> dict:
    """Final per-master count of valid lines by state letter."""
    occupancy = {}
    for cfg, controller in zip(platform.config.cores, platform.controllers):
        counts: dict = {}
        for _addr, line in controller.array.valid_lines():
            key = line.state.value
            counts[key] = counts.get(key, 0) + 1
        occupancy[cfg.name] = counts
    return occupancy


@register_engine
class ExactEngine(ISimEngine):
    """The event-kernel engine (the default)."""

    name = "exact"
    version = 1

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities(
            trace_exact=True, timing=True, concurrent=True, native=False
        )

    def available(self) -> bool:
        return True

    def run(
        self, config: PlatformConfig, accesses: Sequence
    ) -> EngineRunResult:
        platform = self._build(config)
        controllers = platform.controllers
        values: list = []

        def driver():
            for access in accesses:
                controller = controllers[access.proc]
                if access.op == "read":
                    value = yield from controller.read(access.addr)
                    values.append(value)
                elif access.op == "swap":
                    old = yield from controller.swap(access.addr, access.value)
                    values.append(old)
                else:
                    yield from controller.write(access.addr, access.value)
                    values.append(None)

        platform.sim.process(driver(), name=f"{self.name}-driver")
        # Wall time is a benchmark metric here, not simulator state:
        # simulated time is elapsed_ns (sim.now) below.
        start = time.perf_counter()  # repro: lint-ok[determinism]
        platform.sim.run(detect_deadlock=False)
        wall = time.perf_counter() - start  # repro: lint-ok[determinism]
        return EngineRunResult(
            engine=self.name,
            stats=platform.stats.as_dict(),
            accesses=len(accesses),
            events=platform.sim.events_fired,
            elapsed_ns=platform.sim.now,
            wall_s=wall,
            line_states=line_state_occupancy(platform),
            values=values,
        )

    def _build(self, config: PlatformConfig) -> Platform:
        # Normalise the tag so a config routed here by name builds a
        # kernel platform regardless of what it was tagged with.
        if config.engine != self.name:
            config = config.with_(engine=self.name)
        return Platform(config)

    def events_for(
        self, config: PlatformConfig, accesses: Sequence
    ) -> Optional[int]:
        """Kernel events the exact engine fires for this workload.

        The calibration other engines use to express their throughput
        in ``kernel_events_per_sec``-equivalent terms.
        """
        return self.run(config, accesses).events
