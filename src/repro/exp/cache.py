"""On-disk result cache, content-addressed by payload + version + engine.

Every cache entry is one JSON file ``<root>/<sha256>.json`` whose key
is the SHA-256 of the canonical JSON encoding of::

    {"version": <repro.__version__>,
     "engine": {"name": <engine>, "version": <engine version>},
     "job": <job payload>}

Including the package version means any release invalidates every
cached result wholesale — the simulator's timing model may have
changed, and a stale hit would silently corrupt regenerated figures.
The engine fingerprint keeps results from different execution engines
apart: the batch engine reproduces the exact engine's counters but
carries no timing, so a batch result served to a latency figure would
poison it silently — with the engine in the key such a hit is
structurally impossible (``tests/exp/test_cache.py`` keeps it that
way).  Changing any field of the job spec changes the payload and
therefore the key, so distinct configurations can never collide.

Writes go through a temp file + :func:`os.replace` so a crashed or
concurrent run never leaves a torn entry.  Reads *validate*: an entry
that fails to JSON-decode or does not look like a cache entry (a dict
with ``version``/``job``/``result`` keys) is **quarantined** — moved to
``<root>/corrupt/`` for post-mortem — and reported as a miss, so one
torn or truncated file costs one re-simulation, never a crash and
never a poisoned figure.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = [
    "DEFAULT_ENGINE",
    "ResultCache",
    "canonical_payload",
    "content_key",
    "engine_tag",
]


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the analysis layer, which
    # imports this module, before __version__ is bound.
    from .. import __version__

    return __version__


#: the engine sweep jobs run under when none is named (the event kernel)
DEFAULT_ENGINE = "exact"


def engine_tag(engine: Optional[str] = None) -> Dict[str, Any]:
    """The ``{"name", "version"}`` key fragment for ``engine``.

    Resolved through the engine registry so a bumped engine version
    invalidates that engine's cached results and nobody else's.  The
    ``native`` flag is deliberately excluded: a compiled build of the
    same engine version is semantically identical, so its results are
    interchangeable with the pure-Python ones.
    """
    from ..engines import engine_fingerprint  # lazy: avoids an import cycle

    fp = engine_fingerprint(engine or DEFAULT_ENGINE)
    return {"name": fp["name"], "version": fp["version"]}


def canonical_payload(payload: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(
    payload: Dict[str, Any],
    version: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    """SHA-256 cache key of a job payload under ``version`` + ``engine``."""
    if version is None:
        version = _package_version()
    blob = canonical_payload(
        {"version": version, "engine": engine_tag(engine), "job": payload}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON result files."""

    def __init__(
        self,
        root: str,
        version: Optional[str] = None,
        engine: Optional[str] = None,
    ):
        self.root = root
        self.version = version if version is not None else _package_version()
        #: the engine this cache's keys are scoped to
        self.engine = engine_tag(engine)
        #: entries moved to <root>/corrupt/ by this instance
        self.quarantined = 0
        os.makedirs(self.root, exist_ok=True)

    def key_for(self, payload: Dict[str, Any]) -> str:
        """The cache key of ``payload`` under this cache's version+engine."""
        blob = canonical_payload(
            {"version": self.version, "engine": self.engine, "job": payload}
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> str:
        """Filesystem path of the entry for ``key``."""
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result for ``key``, or None on miss.

        A present-but-unreadable entry (truncated write, disk hiccup,
        manual tampering) is quarantined rather than crashing the sweep
        or silently masking the damage: the file moves to
        ``<root>/corrupt/`` and the caller re-simulates.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return None  # plain miss: nothing on disk for this key
        try:
            entry = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not self._valid_entry(entry):
            self._quarantine(path)
            return None
        return entry["result"]

    @staticmethod
    def _valid_entry(entry: Any) -> bool:
        """Schema check: the shape :meth:`put` writes, nothing less."""
        return (
            isinstance(entry, dict)
            and "result" in entry
            and "job" in entry
            and isinstance(entry.get("version"), str)
            and isinstance(entry.get("engine"), dict)
        )

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry to ``<root>/corrupt/`` (best effort)."""
        corrupt_dir = os.path.join(self.root, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, os.path.join(corrupt_dir, os.path.basename(path)))
        except OSError:
            # Last resort: drop it so the next run does not trip again.
            try:
                os.unlink(path)
            except OSError:
                pass
        self.quarantined += 1

    def put(self, key: str, payload: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Store ``result`` for ``key`` atomically.

        The payload is stored alongside the result so entries stay
        inspectable/debuggable with plain ``cat``.
        """
        entry = {
            "version": self.version,
            "engine": self.engine,
            "job": payload,
            "result": result,
        }
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
