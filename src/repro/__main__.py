"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``headlines``
    Re-measure the paper's quoted numbers and print paper-vs-measured.
``figure {5,6,7,8}``
    Regenerate one evaluation figure and print it as a text table.
``tables``
    Execute the Table 2 / Table 3 sequences with and without wrappers.
``deadlock``
    Run the Fig 4 scenario under all four lock strategies.
``faults``
    Run the fault-injection matrix: every registered fault class is
    armed against a contended workload and must be classified
    detected-by-watchdog, detected-by-checker, retry-ceiling, or
    benign.  ``--list`` prints the matrix without running; ``--dump``
    writes the JSON report (watchdog dumps included); exits non-zero
    on any classification mismatch.
``reduce P1 P2 [P3...]``
    Print the integrated protocol and wrapper policies for a protocol
    mix (use ``none`` for a processor without coherence hardware).
``bench SCENARIO SOLUTION``
    Run one microbenchmark configuration and print its statistics.
``bench hotpath``
    Run the simulator hot-path suite (kernel events/sec, cache array
    lookups/sec, disabled-trace emits/sec, Table-2 end-to-end wall
    time) and print a comparison against the committed
    ``BENCH_hotpath.json`` baseline.  ``--quick`` shrinks the workload
    for smoke runs; ``--check`` exits non-zero on a regression.
``bench scaleout``
    Run the N-master scaling sweep (2/4/8/16 masters x FCFS / static
    priority / round-robin arbitration over a mixed-protocol platform)
    and print the scaling figure against the committed
    ``BENCH_scaleout.json`` baseline.  All metrics are simulated, so
    ``--check`` compares exactly by default.
``bench fabrics``
    Run the coherence-fabric sweep (2/4/8/16 masters x atomic snoopy /
    split-transaction / directory fabrics over the same mixed-protocol
    platform) and print the fabric figure — including the
    snoopy-vs-directory headline — against the committed
    ``BENCH_fabrics.json`` baseline.  All metrics are simulated, so
    ``--check`` compares exactly by default.
``bench service``
    Run the campaign-service saturation study (dedup under concurrent
    clients, load shedding at a starved fleet, cache replay) and
    compare its deterministic admission counters against the committed
    ``BENCH_service.json`` baseline.  ``--quick`` shrinks the probe
    flood; ``--check`` exits non-zero on drift.
``serve``
    Boot the crash-safe campaign job service (:mod:`repro.service`):
    a stdlib asyncio HTTP API that accepts sweep / fuzz / shrink jobs
    as JSON, dedups identical submissions, answers repeats from the
    sharded result cache, sheds load beyond a bounded queue, and
    recovers from ``kill -9`` via its JSONL journal.  See
    ``docs/service.md``.
``submit PAYLOAD``
    Submit one job (inline JSON, ``@file.json`` or ``-``) to a running
    service; ``--wait`` long-polls to the terminal state, ``--follow``
    streams the SSE feed.
``verify``
    Exhaustively model-check every protocol pair, wrapped and
    unwrapped, and print the verdict matrix.
``fuzz {run,repro,shrink}``
    Coherence fuzzing (:mod:`repro.fuzz`).  ``run`` executes a seeded
    campaign of random platform/workload cases over crash-proof worker
    subprocesses, classifies every outcome against its oracle, and
    writes replayable reproducers for unexpected ones; ``repro``
    replays a reproducer file byte-identically; ``shrink`` minimises a
    failing case with delta debugging.  See ``docs/robustness.md``.
``lint``
    Run the static-analysis suite (:mod:`repro.lint`) over the package
    source: AST hazard rules plus the protocol-table validators.  See
    ``docs/static-analysis.md``.
``sweep [figures|headlines|ablations|all]``
    Regenerate evaluation sweeps through the parallel runner
    (:mod:`repro.exp`): ``--jobs N`` fans simulations over N worker
    processes, ``--cache-dir DIR`` answers repeats from the on-disk
    result cache, ``--manifest PATH`` writes the run manifest JSON.
    ``figure`` and ``headlines`` accept the same ``--jobs`` /
    ``--cache-dir`` flags.

Every simulation command accepts ``--iterations N`` to trade accuracy
for speed.

Exit codes are uniform across subcommands: 0 success, 1 failure of the
command's check (regression, mismatch, lint finding), 2 usage or
configuration errors (bad arguments, unknown protocol/entry, missing
baseline).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    ablation_arbitration,
    ablation_interrupt,
    ablation_locks,
    ablation_wrapper,
    compute_headlines,
    figure5_wcs,
    figure6_bcs,
    figure7_tcs,
    figure8_miss_penalty,
    render_headlines,
    render_rows,
)
from .core.deadlock import SOLUTIONS, run_deadlock_demo
from .core.platform import ENGINE_NAMES, KERNEL_ENGINES
from .core.reduction import reduce_protocols
from .errors import ConfigError, IntegrationError, ReproError
from .exp import SweepRunner
from .fuzz.cli import add_fuzz_arguments, run_fuzz
from .lint.cli import add_lint_arguments, run_lint
from .service.cli import (
    add_serve_arguments,
    add_submit_arguments,
    run_bench_service,
    run_serve,
    run_submit,
)
from .verify.model_check import check_matrix
from .workloads import MicrobenchSpec, run_microbench, table2_demo, table3_demo

_FIGURES = {
    "5": figure5_wcs,
    "6": figure6_bcs,
    "7": figure7_tcs,
    "8": figure8_miss_penalty,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous cache-coherence reproduction (DATE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_flags(p):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="simulation worker processes (default: 1, serial)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="on-disk result cache directory (default: off)")

    p = sub.add_parser("headlines", help="paper-vs-measured headline numbers")
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--lines", type=int, default=32)
    add_runner_flags(p)

    p = sub.add_parser("figure", help="regenerate one evaluation figure")
    p.add_argument("number", choices=sorted(_FIGURES))
    p.add_argument("--iterations", type=int, default=8)
    add_runner_flags(p)

    p = sub.add_parser(
        "sweep", help="regenerate evaluation sweeps via the parallel runner"
    )
    p.add_argument("target", nargs="?", default="all",
                   choices=("figures", "headlines", "ablations", "all"))
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--quick", action="store_true",
                   help="reduced sweep parameters (seconds instead of minutes)")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="write the run manifest JSON here")
    add_runner_flags(p)

    sub.add_parser("tables", help="run the Table 2/3 sequences")

    sub.add_parser("deadlock", help="run the Fig 4 scenario + remedies")

    p = sub.add_parser("faults", help="run the fault-injection matrix")
    p.add_argument("--list", action="store_true",
                   help="print the matrix entries without running them")
    p.add_argument("--only", default=None, metavar="NAME",
                   help="run a single matrix entry by name")
    p.add_argument("--dump", default=None, metavar="PATH",
                   help="write the JSON report (incl. watchdog dumps) here")
    p.add_argument("--max-events", type=int, default=None,
                   help="override the per-entry event backstop")

    p = sub.add_parser("reduce", help="integrate a protocol mix")
    p.add_argument("protocols", nargs="+",
                   help="protocol names (MEI/MSI/MESI/MOESI/DRAGON) or 'none'")

    sub.add_parser("verify", help="model-check every protocol pair")

    p = sub.add_parser("fuzz", help="coherence fuzzing: run/repro/shrink")
    add_fuzz_arguments(p)

    p = sub.add_parser("lint", help="run the static-analysis suite")
    add_lint_arguments(p)

    p = sub.add_parser(
        "serve", help="run the crash-safe campaign job service"
    )
    add_serve_arguments(p)

    p = sub.add_parser("submit", help="submit a job to a running service")
    add_submit_arguments(p)

    p = sub.add_parser("bench", help="run one microbenchmark configuration")
    p.add_argument("scenario",
                   choices=("wcs", "tcs", "bcs", "hotpath", "scaleout",
                            "fabrics", "service"))
    p.add_argument("solution", nargs="?", default=None,
                   choices=("disabled", "software", "proposed"))
    p.add_argument("--lines", type=int, default=8)
    p.add_argument("--exec-time", type=int, default=1)
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--check", action="store_true",
                   help="attach the coherence checker (hotpath/scaleout/fabrics: "
                        "fail on regression vs the baseline)")
    p.add_argument("--quick", action="store_true",
                   help="hotpath/scaleout/fabrics: reduced workload for smoke runs")
    p.add_argument("--repeats", type=int, default=3,
                   help="hotpath only: best-of-N timing repeats")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="hotpath/scaleout/fabrics: baseline JSON (default: the "
                        "committed BENCH_*.json)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed drift before --check fails (default: "
                        "0.25 for hotpath wall-clock, exact for the "
                        "simulated scaleout/fabrics metrics)")
    p.add_argument("--engine", default="exact", choices=ENGINE_NAMES,
                   help="simulation engine (default: exact; hotpath "
                        "tags its results with it, the microbench "
                        "scenarios run the event kernel so they accept "
                        "the kernel engines only)")
    return parser


def _make_runner(args) -> SweepRunner:
    return SweepRunner(jobs=args.jobs, cache_dir=args.cache_dir)


def _cmd_headlines(args) -> int:
    runner = _make_runner(args)
    print(render_headlines(compute_headlines(args.iterations, args.lines, runner=runner)))
    return 0


def _cmd_figure(args) -> int:
    figure = _FIGURES[args.number](iterations=args.iterations, runner=_make_runner(args))
    print(figure.render())
    return 0


def _cmd_sweep(args) -> int:
    runner = _make_runner(args)
    if args.quick:
        figure_kwargs = dict(line_counts=(2, 8), exec_times=(1,), iterations=3)
        fig8_kwargs = dict(penalties=(13, 96), line_counts=(8,), iterations=3)
        headline_kwargs = dict(iterations=3, lines=8)
        ablation_kwargs = dict(iterations=3)
    else:
        figure_kwargs = dict(iterations=args.iterations)
        fig8_kwargs = dict(iterations=args.iterations)
        headline_kwargs = dict(iterations=args.iterations)
        ablation_kwargs = dict(iterations=args.iterations)

    if args.target in ("figures", "all"):
        for make in (figure5_wcs, figure6_bcs, figure7_tcs):
            print(make(runner=runner, **figure_kwargs).render())
            print()
        print(figure8_miss_penalty(runner=runner, **fig8_kwargs).render())
        print()
    if args.target in ("headlines", "all"):
        print(render_headlines(compute_headlines(runner=runner, **headline_kwargs)))
        print()
    if args.target in ("ablations", "all"):
        print(render_rows("Wrapper on/off (stale reads)", ablation_wrapper(runner=runner)))
        print()
        print(render_rows("Lock implementation (TCS)", ablation_locks(runner=runner, **ablation_kwargs)))
        print()
        print(render_rows("ARM interrupt entry cost (WCS)", ablation_interrupt(runner=runner, **ablation_kwargs)))
        print()
        print(render_rows("Bus arbitration (WCS)", ablation_arbitration(runner=runner, **ablation_kwargs)))
        print()
    if args.manifest:
        runner.write_manifest(args.manifest)
        print(f"manifest written to {args.manifest}")
    print(runner.summary())
    return 0


def _cmd_tables(_args) -> int:
    for demo in (table2_demo, table3_demo):
        for wrapped in (False, True):
            print(demo(wrapped).render())
            print()
    return 0


def _cmd_deadlock(_args) -> int:
    wedged = 0
    for solution in SOLUTIONS:
        outcome = run_deadlock_demo(solution)
        wedged += outcome.deadlocked
        print(outcome.render())
    return 0 if wedged == 1 else 1


def _cmd_faults(args) -> int:
    from .faults.matrix import (
        MATRIX_MAX_EVENTS,
        default_matrix,
        render_results,
        results_to_json,
        run_matrix,
    )

    entries = default_matrix()
    if args.only is not None:
        entries = tuple(e for e in entries if e.name == args.only)
        if not entries:
            known = ", ".join(e.name for e in default_matrix())
            print(f"unknown matrix entry {args.only!r}; known: {known}",
                  file=sys.stderr)
            return 2
    if args.list:
        for entry in entries:
            print(f"{entry.name:<16} expect={entry.expected:<14} "
                  f"{entry.spec.describe()}")
            print(f"{'':<16} {entry.rationale}")
        return 0
    results = run_matrix(entries, max_events=args.max_events or MATRIX_MAX_EVENTS)
    print(render_results(results))
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(results_to_json(results))
        print(f"report written to {args.dump}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_reduce(args) -> int:
    protocols = [None if p.lower() == "none" else p for p in args.protocols]
    result = reduce_protocols(protocols)
    print(f"system protocol: {result.system_protocol}")
    for name, policy in zip(args.protocols, result.policies):
        print(f"  {name:>6}: {policy}")
    return 0


def _cmd_bench_hotpath(args) -> int:
    from pathlib import Path

    from .exp import hotpath

    baseline_path = args.baseline
    if baseline_path is None:
        for candidate in (
            Path.cwd() / hotpath.BENCH_FILE,
            Path(__file__).resolve().parents[2] / hotpath.BENCH_FILE,
        ):
            if candidate.is_file():
                baseline_path = str(candidate)
                break
    baseline = hotpath.load_results(baseline_path) if baseline_path else None
    if args.check and baseline is None:
        # A regression check without a baseline cannot pass vacuously:
        # CI relying on this exit code must notice the missing file.
        print("bench hotpath --check: no baseline found -- run "
              "benchmarks/bench_hotpath.py to commit one", file=sys.stderr)
        return 2
    current = hotpath.run_suite(
        quick=args.quick, repeats=args.repeats, engine=args.engine
    )
    print(hotpath.render_comparison(current, baseline))
    if baseline is None:
        print("(no baseline found -- run benchmarks/bench_hotpath.py to commit one)")
        return 0
    if args.check:
        mismatches = hotpath.baseline_mismatch(current, baseline)
        if mismatches:
            # Not a regression: the numbers are simply not comparable.
            for mismatch in mismatches:
                print(f"bench hotpath --check: {mismatch}", file=sys.stderr)
            print("bench hotpath --check: re-record the baseline under "
                  "this engine/implementation to compare", file=sys.stderr)
            return 2
        tolerance = 0.25 if args.tolerance is None else args.tolerance
        failures = hotpath.check_regression(current, baseline, tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no regression beyond {tolerance:.0%} tolerance")
    return 0


def _cmd_bench_scaleout(args) -> int:
    from pathlib import Path

    from .exp import scaleout

    baseline_path = args.baseline
    if baseline_path is None:
        for candidate in (
            Path.cwd() / scaleout.BENCH_FILE,
            Path(__file__).resolve().parents[2] / scaleout.BENCH_FILE,
        ):
            if candidate.is_file():
                baseline_path = str(candidate)
                break
    baseline = scaleout.load_results(baseline_path) if baseline_path else None
    if args.check and baseline is None:
        print("bench scaleout --check: no baseline found -- run "
              "benchmarks/bench_scaleout.py to commit one", file=sys.stderr)
        return 2
    current = scaleout.run_suite(quick=args.quick)
    print(scaleout.render_comparison(current, baseline))
    if baseline is None:
        print("(no baseline found -- run benchmarks/bench_scaleout.py "
              "to commit one)")
        return 0
    if args.check:
        # Simulated metrics: exact comparison unless loosened explicitly.
        tolerance = 0.0 if args.tolerance is None else args.tolerance
        failures = scaleout.check_regression(current, baseline, tolerance)
        if failures:
            for failure in failures:
                print(f"SCALING DRIFT {failure}", file=sys.stderr)
            return 1
        print("all shared points match the baseline")
    return 0


def _cmd_bench_fabrics(args) -> int:
    from pathlib import Path

    from .exp import fabrics

    baseline_path = args.baseline
    if baseline_path is None:
        for candidate in (
            Path.cwd() / fabrics.BENCH_FILE,
            Path(__file__).resolve().parents[2] / fabrics.BENCH_FILE,
        ):
            if candidate.is_file():
                baseline_path = str(candidate)
                break
    baseline = fabrics.load_results(baseline_path) if baseline_path else None
    if args.check and baseline is None:
        print("bench fabrics --check: no baseline found -- run "
              "benchmarks/bench_fabrics.py to commit one", file=sys.stderr)
        return 2
    current = fabrics.run_suite(quick=args.quick)
    print(fabrics.render_comparison(current, baseline))
    if baseline is None:
        print("(no baseline found -- run benchmarks/bench_fabrics.py "
              "to commit one)")
        return 0
    if args.check:
        # Simulated metrics: exact comparison unless loosened explicitly.
        tolerance = 0.0 if args.tolerance is None else args.tolerance
        failures = fabrics.check_regression(current, baseline, tolerance)
        if failures:
            for failure in failures:
                print(f"FABRIC DRIFT {failure}", file=sys.stderr)
            return 1
        print("all shared points match the baseline")
    return 0


def _cmd_bench(args) -> int:
    if args.scenario == "hotpath":
        return _cmd_bench_hotpath(args)
    if args.scenario == "scaleout":
        return _cmd_bench_scaleout(args)
    if args.scenario == "fabrics":
        return _cmd_bench_fabrics(args)
    if args.scenario == "service":
        return run_bench_service(args)
    if args.solution is None:
        print(f"bench {args.scenario}: a solution "
              "(disabled/software/proposed) is required", file=sys.stderr)
        return 2
    if args.engine not in KERNEL_ENGINES:
        print(f"bench {args.scenario}: engine {args.engine!r} is "
              "statistics-only and cannot run program-driven "
              f"microbenchmarks (choose from {list(KERNEL_ENGINES)})",
              file=sys.stderr)
        return 2
    spec = MicrobenchSpec(
        scenario=args.scenario,
        solution=args.solution,
        lines=args.lines,
        exec_time=args.exec_time,
        iterations=args.iterations,
    )
    result = run_microbench(spec, check=args.check, engine=args.engine)
    print(f"{spec.scenario}/{spec.solution}: {result.elapsed_ns} ns "
          f"({result.elapsed_us:.1f} us), {result.isr_entries} ISR entries")
    for key in sorted(result.stats):
        if key.startswith("bus."):
            print(f"  {key:<24} {result.stats[key]}")
    return 0


def _cmd_verify(_args) -> int:
    failures = 0
    for wrapped in (True, False):
        label = "wrapped (reduction policies)" if wrapped else "unwrapped (identity)"
        print(f"-- {label} --")
        for (p0, p1), result in check_matrix(wrapped=wrapped).items():
            status = "SAFE  " if result.ok else "UNSAFE"
            print(f"  {p0:>5} + {p1:<5} {status} ({result.reachable_states} states)")
            if wrapped and not result.ok:
                failures += 1
    return 1 if failures else 0


def _cmd_lint(args) -> int:
    return run_lint(args)


_COMMANDS = {
    "headlines": _cmd_headlines,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "tables": _cmd_tables,
    "deadlock": _cmd_deadlock,
    "faults": _cmd_faults,
    "reduce": _cmd_reduce,
    "bench": _cmd_bench,
    "verify": _cmd_verify,
    "fuzz": run_fuzz,
    "lint": _cmd_lint,
    "serve": run_serve,
    "submit": run_submit,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Domain errors become the uniform exit codes the module docstring
    documents instead of tracebacks: bad inputs (unknown protocols,
    malformed fault specs, unreadable files) exit 2, everything else in
    the :class:`ReproError` family exits 1.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ConfigError, IntegrationError) as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
