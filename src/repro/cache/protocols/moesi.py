"""The MOESI protocol (UltraSPARC / AMD64-style).

Adds the Owned state: a dirty line can be shared, with the owner
responsible for the eventual write-back and for sourcing the data
cache-to-cache.  The paper assumes cache-to-cache sharing is implemented
only by MOESI processors; the wrapper's read-to-write conversion is what
keeps the O state from ever being entered in mixed systems (2.1.3, 2.2,
2.3).
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["MOESIProtocol"]


class MOESIProtocol(CoherenceProtocol):
    """Modified / Owned / Exclusive / Shared / Invalid."""

    name = "MOESI"
    states = frozenset(
        {State.MODIFIED, State.OWNED, State.EXCLUSIVE, State.SHARED, State.INVALID}
    )
    uses_shared_signal = True
    supports_supply = True

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        if exclusive:
            return State.MODIFIED
        return State.SHARED if shared else State.EXCLUSIVE

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state is State.MODIFIED:
            return State.MODIFIED, WriteAction.NONE
        if state is State.EXCLUSIVE:
            return State.MODIFIED, WriteAction.NONE
        if state in (State.SHARED, State.OWNED):
            # Other copies must be killed before the write retires.
            return State.MODIFIED, WriteAction.UPGRADE
        raise ProtocolError(f"MOESI write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        if op is SnoopOp.READ:
            if state in (State.MODIFIED, State.OWNED):
                # Cache-to-cache intervention: no memory access, the
                # owner keeps responsibility for the dirty data.
                return SnoopOutcome(State.OWNED, supply=True, assert_shared=True)
            return SnoopOutcome(State.SHARED, assert_shared=True)
        if op is SnoopOp.READ_EXCL:
            if state in (State.MODIFIED, State.OWNED):
                # Supply to the new writer and drop ownership.
                return SnoopOutcome(State.INVALID, supply=True)
            return SnoopOutcome(State.INVALID)
        if op is SnoopOp.WRITE:
            # A non-caching writer: push dirty data so memory is current
            # before the foreign word lands.
            if state in (State.MODIFIED, State.OWNED):
                return SnoopOutcome(State.INVALID, drain=True)
            return SnoopOutcome(State.INVALID)
        # INVALIDATE (an S -> M upgrade elsewhere): the upgrader's copy is
        # current (it was supplied from the owner), so no push is needed.
        return SnoopOutcome(State.INVALID)
