"""The MSI protocol (Modified, Shared, Invalid).

The original 4D-MP style protocol: no Exclusive state, so every fill
lands in S and the first write always pays a bus upgrade.  There is no
shared-signal input — I -> S happens unconditionally on a read miss
(the property Section 2.1.1 leans on: under read-to-write conversion
the S state becomes de-facto exclusive).
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["MSIProtocol"]


class MSIProtocol(CoherenceProtocol):
    """Modified / Shared / Invalid."""

    name = "MSI"
    states = frozenset({State.MODIFIED, State.SHARED, State.INVALID})
    uses_shared_signal = False
    supports_supply = False

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        return State.MODIFIED if exclusive else State.SHARED

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state is State.MODIFIED:
            return State.MODIFIED, WriteAction.NONE
        if state is State.SHARED:
            return State.MODIFIED, WriteAction.UPGRADE
        raise ProtocolError(f"MSI write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        if op is SnoopOp.READ:
            if state is State.MODIFIED:
                # Flush, then retain a shared copy.
                return SnoopOutcome(State.SHARED, drain=True)
            # An MSI processor has no shared-signal *output*: it keeps
            # its S copy but cannot tell the reader about it — the very
            # hole Table 3 demonstrates when MSI meets MESI unwrapped.
            return SnoopOutcome(State.SHARED, assert_shared=False)
        # READ_EXCL / WRITE / INVALIDATE all kill the copy; a dirty
        # copy is pushed first so memory stays current.
        if state is State.MODIFIED:
            return SnoopOutcome(State.INVALID, drain=True)
        return SnoopOutcome(State.INVALID)
