"""Event-driven simulation kernel: scheduler, processes, clocks, tracing."""

from .clock import NS_PER_TICK, Clock, mhz_to_period_ns
from .kernel import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from .resources import Mutex
from .tracing import NullTracer, Stats, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Clock",
    "NS_PER_TICK",
    "mhz_to_period_ns",
    "Tracer",
    "NullTracer",
    "TraceRecord",
    "Stats",
    "Mutex",
]
