"""The fabric contract: what a coherence interconnect must provide.

The *model* — protocol tables, cache controllers, wrappers, snoop
logic — speaks to the interconnect through a small surface: transact a
bus operation, attach/detach snoopers, register masters, report
in-flight tenures.  A **fabric** is one interconnect organisation
behind that surface (see ``docs/fabrics.md``):

``atomic``
    The paper's atomic-tenure snoopy ASB: one bus, one tenure at a
    time, broadcast snooping.  The default, byte-identical to the
    committed golden trace.
``split``
    A split-transaction bus: address and data phases decoupled into
    pipelined tenures behind a bounded in-flight window.  Coherence
    actions still serialise in address-grant order.
``directory``
    A directory interconnect: a per-line-home directory tracks which
    caches hold each line and forwards snoops point-to-point instead
    of broadcasting, with per-home-bank concurrency.

This package never imports :mod:`repro.core.platform` (the fabric
*vocabulary* lives there, mirroring ``ENGINE_NAMES``), and the bus
model never imports this package — the ``fabric-contract`` lint rule
enforces both directions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict

__all__ = ["FabricCapabilities", "IFabric"]


@dataclass(frozen=True)
class FabricCapabilities:
    """What a fabric can and cannot promise.

    ``broadcast``
        Every snooper sees every coherent transaction's address phase
        (snoopy organisation).  Directory fabrics forward point-to-
        point instead.
    ``atomic_tenure``
        A transaction holds its arbitration domain from address phase
        through data phase; nothing else interleaves on that domain.
    ``pipelined``
        Data tenures overlap the next transaction's arbitration and
        address phase (split-transaction organisation).
    ``point_to_point``
        Snoops are forwarded only to caches the directory records as
        holding the line.
    """

    broadcast: bool
    atomic_tenure: bool
    pipelined: bool
    point_to_point: bool


class IFabric(ABC):
    """One interconnect organisation for the coherence model.

    Concrete fabrics additionally provide the bus surface the model
    already speaks (``attach_snooper`` / ``detach_snooper`` /
    ``register_master`` / ``inflight_tenures`` / ``arbiter`` /
    ``completions``) — in practice by deriving from
    :class:`~repro.bus.asb.AsbBus`, whose semantics are the reference.
    The ``fabric-contract`` lint rule validates the full surface of
    every registered fabric.
    """

    #: registry key; must match the entry in ``platform.FABRIC_NAMES``
    name: str = "?"
    #: bumped whenever the fabric's observable behaviour changes
    version: int = 0

    @classmethod
    @abstractmethod
    def capabilities(cls) -> FabricCapabilities:
        """The promises this fabric makes."""

    @classmethod
    @abstractmethod
    def build(
        cls,
        sim,
        clock,
        controller,
        *,
        arbiter_factory,
        tracer=None,
        stats=None,
        max_retries=1000,
        line_bytes=32,
    ) -> "IFabric":
        """Construct a fabric instance for one platform.

        ``arbiter_factory`` builds one arbiter of the configured
        service discipline per call — fabrics with internal concurrency
        (the directory's home banks) call it more than once.
        """

    @abstractmethod
    def transact(self, txn, priority=None, commit=None, validate=None):
        """Run one transaction to completion (a process generator).

        Semantics contract (``AsbBus.transact`` is the reference): the
        snoop window and all coherence state changes happen while the
        transaction's arbitration domain is held, serialised per
        address; ``validate`` is consulted at grant time and a False
        answer cancels the tenure (``None`` returned, no snooper
        consulted); ARTRY backs the master off until the retrying
        snoopers' drains complete.
        """

    @abstractmethod
    def snapshot(self) -> dict:
        """Diagnostic view of the fabric (JSON-serialisable)."""

    @classmethod
    @abstractmethod
    def fingerprint(cls) -> Dict[str, object]:
        """Identity embedded in bench baselines."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} v{self.version}>"
