"""Figure 4: the hardware deadlock, plus both of the paper's remedies.

Cached lock variables on the PF2 platform wedge the system exactly as
Fig 4 describes; uncached locks (software lock / Bakery) and the
hardware lock register complete.
"""

from conftest import report, run_once

from repro.core.deadlock import SOLUTIONS, run_deadlock_demo


def _run_all():
    return [run_deadlock_demo(solution) for solution in SOLUTIONS]


def test_fig4_deadlock_and_remedies(benchmark):
    outcomes = run_once(benchmark, _run_all)
    text = "\n".join(outcome.render() for outcome in outcomes)
    report(benchmark, "Figure 4 - hardware deadlock", text)
    by_solution = {outcome.solution: outcome for outcome in outcomes}
    assert by_solution["none"].deadlocked
    for remedy in ("uncached-locks", "lock-register", "bakery"):
        assert not by_solution[remedy].deadlocked
