"""Coherence fuzzing: random platforms + workloads, classified outcomes.

The fuzzer samples random platform configurations (protocol pairs,
wrapper policies on or off, cache geometries, lock solutions, optional
fault injections) and random multi-master workloads, runs each case in
a sandboxed worker with a timeout, and classifies what happened:
``clean``, ``violation`` (coherence checker), ``deadlock``,
``livelock``, ``hang`` (event backstop), ``error`` or ``crash``.

The point is the *oracle*: every case knows which outcomes are
expected of it.  An unwrapped MESI+MEI pair is *supposed* to read
stale data (Table 2); the ``solution="none"`` Fig 4 configuration is
*supposed* to deadlock.  Anything outside a case's allowed set is an
unexpected failure, written out as a replayable JSON reproducer and
handed to the delta-debugging shrinker, which minimises the case to
the fewest accesses (and simplest config) that still reproduce the
same failure class.

See ``docs/robustness.md`` ("Fuzzing & shrinking") for the workflow
and ``python -m repro fuzz --help`` for the CLI.
"""

from .case import (
    FUZZ_PROTOCOLS,
    MODEL_PROTOCOLS,
    OUTCOMES,
    CaseResult,
    FuzzCase,
    allowed_outcomes,
    build_workload,
    run_case,
)
from .gen import CaseGenerator
from .campaign import CampaignConfig, CampaignResult, run_campaign
from .shrink import ShrinkResult, shrink_case
from .differential import DifferentialReport, differential_check, replay_events

__all__ = [
    "FUZZ_PROTOCOLS",
    "MODEL_PROTOCOLS",
    "OUTCOMES",
    "FuzzCase",
    "CaseResult",
    "allowed_outcomes",
    "build_workload",
    "run_case",
    "CaseGenerator",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "ShrinkResult",
    "shrink_case",
    "DifferentialReport",
    "differential_check",
    "replay_events",
]
