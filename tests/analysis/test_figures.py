"""Tests for the figure sweeps and headline computation (small params)."""

import pytest

from repro.analysis import (
    FigureData,
    Series,
    ablation_arbitration,
    ablation_interrupt,
    ablation_locks,
    ablation_wrapper,
    compute_headlines,
    figure8_miss_penalty,
    render_headlines,
    render_rows,
    scenario_figure,
)


@pytest.fixture(scope="module")
def small_bcs_figure():
    return scenario_figure(
        "bcs", line_counts=(2, 8), exec_times=(1,), iterations=3
    )


class TestFigureData:
    def test_render_aligns_series(self, small_bcs_figure):
        text = small_bcs_figure.render()
        assert "software et=1" in text
        assert "proposed et=1" in text

    def test_xs_union(self):
        data = FigureData(
            "t", "x", "y",
            [Series("a", {1: 0.5}), Series("b", {2: 0.7})],
        )
        assert data.xs() == [1, 2]

    def test_get_series_point(self, small_bcs_figure):
        value = small_bcs_figure.get("proposed et=1", 8)
        assert 0 < value < 1

    def test_get_unknown_series(self, small_bcs_figure):
        with pytest.raises(KeyError):
            small_bcs_figure.get("nonsense", 8)

    def test_missing_point_renders_dash(self):
        data = FigureData("t", "x", "y", [Series("a", {1: 0.5}), Series("b", {2: 1.0})])
        assert "-" in data.render()


class TestFigureShapes:
    def test_bcs_caching_beats_disabled(self, small_bcs_figure):
        for series in small_bcs_figure.series:
            for ratio in series.points.values():
                assert ratio < 1.0  # both cached solutions beat uncached

    def test_bcs_proposed_beats_software(self, small_bcs_figure):
        for lines in (2, 8):
            proposed = small_bcs_figure.get("proposed et=1", lines)
            software = small_bcs_figure.get("software et=1", lines)
            assert proposed < software

    def test_bcs_gap_grows_with_lines(self, small_bcs_figure):
        gap_small = (
            small_bcs_figure.get("software et=1", 2)
            - small_bcs_figure.get("proposed et=1", 2)
        )
        gap_large = (
            small_bcs_figure.get("software et=1", 8)
            - small_bcs_figure.get("proposed et=1", 8)
        )
        assert gap_large > gap_small

    def test_figure8_bcs_improves_with_penalty(self):
        fig8 = figure8_miss_penalty(
            penalties=(13, 96), line_counts=(8,), scenarios=("bcs",), iterations=3
        )
        series = fig8.series[0]
        assert series.points[96] < series.points[13] < 1.0


class TestHeadlines:
    def test_all_five_computed(self):
        headlines = compute_headlines(iterations=2, lines=4)
        assert len(headlines) == 5
        for headline in headlines:
            assert headline.paper_value != 0

    def test_render(self):
        headlines = compute_headlines(iterations=2, lines=4)
        text = render_headlines(headlines)
        assert "paper=" in text and "measured=" in text
        assert len(text.splitlines()) == 5


class TestAblations:
    def test_wrapper_ablation_finds_staleness(self):
        rows = ablation_wrapper(pairs=(("MESI", "MEI"),))
        by_label = {row.label: row.value for row in rows}
        assert by_label["MESI+MEI unwrapped: stale reads"] >= 1
        assert by_label["MESI+MEI wrapped: stale reads"] == 0

    def test_lock_ablation_rows(self):
        rows = ablation_locks(kinds=("swap", "hw"), lines=2, iterations=2)
        assert len(rows) == 2
        assert all(row.value > 0 for row in rows)

    def test_interrupt_ablation_monotone(self):
        rows = ablation_interrupt(entry_cycles=(1, 32), lines=4, iterations=3)
        assert rows[0].value < rows[1].value  # slower entry -> slower run

    def test_arbitration_ablation(self):
        rows = ablation_arbitration(lines=2, iterations=2)
        assert len(rows) == 2

    def test_render_rows(self):
        rows = ablation_locks(kinds=("swap",), lines=1, iterations=1)
        text = render_rows("locks", rows)
        assert text.startswith("locks")
