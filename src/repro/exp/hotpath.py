"""Hot-path microbenchmarks for the simulation substrate.

Measures the three layers every paper-evaluation number flows through —
the event kernel, the cache tag array, and the tracing fabric — plus
the end-to-end wall time of a fixed Table-2 workload (the MESI + MEI
protocol pair of the paper's Table 2 running the WCS critical-section
kernel).  Results are written to ``BENCH_hotpath.json`` at the repo
root so successive PRs accumulate a performance trajectory, and the CI
``perf-smoke`` job fails on regressions against the committed baseline.

The functions here are import-safe for both the ``benchmarks/`` script
and the ``repro bench hotpath`` CLI subcommand; they depend only on the
standard library and the package itself.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, Optional

from ..cache.array import CacheArray, CacheGeometry
from ..cache.line import State
from ..cache.protocols import make_protocol
from ..sim import Simulator, Tracer

__all__ = [
    "BENCH_FILE",
    "run_suite",
    "render_comparison",
    "check_regression",
]

#: canonical result file name (at the repository root)
BENCH_FILE = "BENCH_hotpath.json"

#: metrics where larger is better (rates); wall times are inverted
RATE_METRICS = (
    "kernel_events_per_sec",
    "kernel_timeout_events_per_sec",
    "array_lookups_per_sec",
    "tracer_disabled_emits_per_sec",
)
TIME_METRICS = ("table2_e2e_seconds",)


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Smallest elapsed wall time over ``repeats`` runs of ``fn``."""
    return min(fn() for _ in range(repeats))


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------
def _kernel_zero_delay(n: int) -> float:
    """n rounds of event-create / succeed / resume, all on one tick.

    This is the kernel's same-tick hot path: every ``succeed`` schedules
    a zero-delay firing and every firing resumes a waiting process.
    """
    sim = Simulator()

    def driver():
        event = sim.event
        for _ in range(n):
            ev = event()
            ev.succeed(None)
            yield ev

    sim.process(driver())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def _kernel_timeouts(n: int) -> float:
    """n one-tick timeouts through the time heap (process resume path)."""
    sim = Simulator()

    def driver():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1)

    sim.process(driver())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# cache array
# ---------------------------------------------------------------------------
def _array_lookups(n: int) -> float:
    """n lookups (3/4 hits, 1/4 misses) against a full 16 KiB 4-way array."""
    geom = CacheGeometry(16 * 1024, 32, 4)
    array = CacheArray(geom)
    protocol = make_protocol("MESI")
    data = [0] * geom.line_words
    for set_index in range(geom.n_sets):
        for way in range(geom.ways):
            addr = geom.rebuild_addr(way, set_index)
            array.install(addr, way, data, State.EXCLUSIVE, protocol)
    hits = [geom.rebuild_addr(way, s) for way in range(3) for s in (0, 7, 31, 63)]
    misses = [geom.rebuild_addr(geom.ways + 9, s) for s in (0, 7, 31, 63)]
    addrs = (hits + misses) * (n // (len(hits) + len(misses)) + 1)
    addrs = addrs[:n]
    lookup = array.lookup
    start = time.perf_counter()
    for addr in addrs:
        lookup(addr)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
def _tracer_disabled_emits(n: int) -> float:
    """n disabled-channel emissions as a component call site performs them.

    Uses the cached channel-guard API when the tracer provides it (the
    optimised call-site idiom); otherwise falls back to the legacy
    unconditional ``emit`` call, which is what seed call sites paid.
    """
    tracer = Tracer(channels=())
    if hasattr(tracer, "channel"):
        ch = tracer.channel("bus")
        start = time.perf_counter()
        for i in range(n):
            if ch.enabled:
                ch.emit(i, "m0", "grant", op="rd", addr=i, retry_no=0)
        return time.perf_counter() - start
    emit = tracer.emit
    start = time.perf_counter()
    for i in range(n):
        emit(i, "bus", "m0", "grant", op="rd", addr=i, retry_no=0)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# end-to-end: the Table-2 protocol pair under the WCS kernel
# ---------------------------------------------------------------------------
def _table2_e2e(iterations: int) -> float:
    """Wall time of the fixed Table-2 workload (MESI + MEI, WCS loop)."""
    from ..cpu.presets import preset_generic
    from ..workloads.microbench import MicrobenchSpec, run_microbench

    spec = MicrobenchSpec(
        scenario="wcs",
        solution="proposed",
        lines=16,
        exec_time=2,
        iterations=iterations,
    )
    cores = (preset_generic("p1", "MESI"), preset_generic("p2", "MEI"))
    start = time.perf_counter()
    result = run_microbench(spec, cores=cores)
    elapsed = time.perf_counter() - start
    if result.elapsed_ns <= 0:  # pragma: no cover - sanity guard
        raise RuntimeError("table2 e2e workload simulated zero time")
    return elapsed


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------
def run_suite(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """Run every hot-path benchmark; returns the result document."""
    scale = 1 if quick else 5
    n_kernel = 40_000 * scale
    n_array = 80_000 * scale
    n_tracer = 120_000 * scale
    # The e2e workload is FIXED across quick/full: it is a wall time, so
    # a quick run must stay comparable to a committed full-mode baseline
    # (the rate metrics are size-independent; a shrunk wall time is not).
    e2e_iters = 20

    metrics = {
        "kernel_events_per_sec": n_kernel / _best_of(repeats, lambda: _kernel_zero_delay(n_kernel)),
        "kernel_timeout_events_per_sec": n_kernel / _best_of(repeats, lambda: _kernel_timeouts(n_kernel)),
        "array_lookups_per_sec": n_array / _best_of(repeats, lambda: _array_lookups(n_array)),
        "tracer_disabled_emits_per_sec": n_tracer / _best_of(repeats, lambda: _tracer_disabled_emits(n_tracer)),
        "table2_e2e_seconds": _best_of(repeats, lambda: _table2_e2e(e2e_iters)),
    }
    return {
        "schema": 1,
        "suite": "hotpath",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "params": {
            "kernel_events": n_kernel,
            "array_lookups": n_array,
            "tracer_emits": n_tracer,
            "table2_iterations": e2e_iters,
            "repeats": repeats,
        },
        "metrics": {k: round(v, 6) if k in TIME_METRICS else round(v, 1)
                    for k, v in metrics.items()},
    }


def speedups(current: Dict[str, Any], baseline: Dict[str, Any]) -> Dict[str, float]:
    """Per-metric speedup of ``current`` over ``baseline`` (>1 is faster)."""
    out: Dict[str, float] = {}
    cur, base = current.get("metrics", {}), baseline.get("metrics", {})
    for key in RATE_METRICS:
        if key in cur and key in base and base[key]:
            out[key] = cur[key] / base[key]
    for key in TIME_METRICS:
        if key in cur and key in base and cur[key]:
            out[key] = base[key] / cur[key]
    return out


def render_comparison(current: Dict[str, Any], baseline: Optional[Dict[str, Any]]) -> str:
    """Human-readable table of the run, against a baseline when given."""
    lines = [f"hotpath suite (quick={current.get('quick')}, py {current.get('python')})"]
    ratios = speedups(current, baseline) if baseline else {}
    for key, value in current.get("metrics", {}).items():
        if key in TIME_METRICS:
            rendered = f"{value:.4f} s"
        else:
            rendered = f"{value:>14,.0f} /s"
        suffix = f"   {ratios[key]:.2f}x vs baseline" if key in ratios else ""
        lines.append(f"  {key:<32} {rendered}{suffix}")
    return "\n".join(lines)


def check_regression(
    current: Dict[str, Any], baseline: Dict[str, Any], tolerance: float = 0.25
) -> list[str]:
    """Metrics of ``current`` more than ``tolerance`` worse than baseline."""
    failures = []
    for key, ratio in speedups(current, baseline).items():
        if ratio < 1.0 - tolerance:
            failures.append(f"{key}: {ratio:.2f}x of baseline (floor {1.0 - tolerance:.2f}x)")
    return failures


def load_results(path: str) -> Optional[Dict[str, Any]]:
    """Parse a previously written result file (None when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
