"""Directory fabric: presence tracking, forwarding, home banks."""

import pytest

from repro.core.platform import Platform, PlatformConfig
from repro.cpu.presets import preset_generic
from repro.fabric import BankedArbiter, DirectoryFabric
from repro.verify.checker import CoherenceChecker
from repro.workloads.tracegen import (
    false_sharing_traces,
    racy_traces,
    replay_parallel,
)


def _platform(n=4, **overrides):
    cycle = ("MESI", "MOESI", "MSI", "MEI")
    cores = tuple(
        preset_generic(f"p{i}", cycle[i % len(cycle)]) for i in range(n)
    )
    config = dict(
        cores=cores,
        hardware_coherence=True,
        drain_policy="window",
        fabric="directory",
    )
    config.update(overrides)
    return Platform(PlatformConfig(**config))


def _valid_lines(platform):
    """master name -> set of valid line base addresses, from the caches."""
    return {
        cfg.name: set(controller.cached_addresses())
        for cfg, controller in zip(platform.config.cores, platform.controllers)
    }


class TestPresence:
    def test_presence_mirrors_cache_occupancy_exactly(self):
        platform = _platform()
        traces = false_sharing_traces(40, procs=4, lines=2, seed=11)
        replay_parallel(platform, traces)
        presence = platform.bus._presence
        expected = {}
        for master, bases in _valid_lines(platform).items():
            for base in bases:
                expected.setdefault(base, set()).add(master)
        assert presence == expected

    def test_empty_sharer_sets_are_deleted(self):
        platform = _platform()
        traces = racy_traces(60, procs=4, footprint_words=8, seed=3)
        replay_parallel(platform, traces)
        assert all(platform.bus._presence.values())

    def test_forwards_are_bounded_by_lookups_times_sharers(self):
        platform = _platform()
        traces = false_sharing_traces(40, procs=4, lines=2, seed=11)
        replay_parallel(platform, traces)
        lookups = platform.stats.get("fabric.dir.lookups")
        forwards = platform.stats.get("fabric.dir.forwards")
        assert lookups > 0
        # At most n-1 point-to-point forwards per consult; a broadcast
        # fabric would always snoop n-1.
        assert 0 < forwards < lookups * 3

    def test_coherent_under_contention(self):
        platform = _platform()
        checker = CoherenceChecker(platform)
        traces = false_sharing_traces(60, procs=4, lines=2, seed=11)
        replay_parallel(platform, traces)
        checker.check_all_lines()
        assert checker.clean, checker.violations[:3]


class TestBanks:
    def test_watchdog_surface_aggregates_the_banks(self):
        platform = _platform()
        traces = false_sharing_traces(20, procs=4, lines=2, seed=11)
        replay_parallel(platform, traces)
        arbiter = platform.bus.arbiter
        assert isinstance(arbiter, BankedArbiter)
        assert arbiter.grants == sum(b.grants for b in arbiter.banks)
        merged = arbiter.grants_by_master
        assert sum(merged.values()) == arbiter.grants
        assert arbiter.pending() == 0
        snapshot = arbiter.snapshot()
        assert snapshot["grants"] == arbiter.grants
        assert len(snapshot["banks"]) == DirectoryFabric.DEFAULT_BANKS

    def test_same_line_hashes_to_the_same_bank(self):
        platform = _platform(n=2)
        bus = platform.bus
        base = 0x2000
        for offset in (0, 4, 8, 28):
            assert bus._bank_for(base + offset) is bus._bank_for(base)

    def test_different_homes_use_different_banks(self):
        platform = _platform(n=2)
        bus = platform.bus
        banks = {id(bus._bank_for(0x20000 + i * 32)) for i in range(8)}
        assert len(banks) == DirectoryFabric.DEFAULT_BANKS

    @pytest.mark.parametrize("discipline", ("fcfs", "priority", "round-robin"))
    def test_every_discipline_builds_the_banks(self, discipline):
        platform = _platform(arbitration=discipline)
        assert len(platform.bus.arbiter.banks) == DirectoryFabric.DEFAULT_BANKS
