"""Differential testing: the concrete simulator vs the abstract model.

:mod:`repro.verify.model_check` enumerates every interleaving of six
abstract events over one line and two caches; the simulator executes
concrete traces.  Both claim to implement the same protocol tables and
wrapper policies, so their verdicts must agree:

* **model SAFE** ⇒ no serialised concrete event path may produce a
  checker violation (sampled, seeded random paths);
* **model UNSAFE** ⇒ each witness path the model reports must
  *reproduce* concretely — replaying the exact event sequence on the
  simulator, followed by probe reads, must trip the coherence checker.

The witness direction is the sharp one: the model is built from the
same FSMs the controllers run, so a witness that fails to reproduce
means one of the two diverged (this is how the fuzzer's lost-upgrade
bus fix was confirmed against the model's expectations).

Event mapping (``read0`` … ``evict1``): reads and writes go through
the controllers; ``evict`` is a flush (write-back if dirty, then
invalidate) — the same bus behaviour as a natural eviction, but
addressable to one line.  Writes use strictly increasing values so any
stale copy is distinguishable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.platform import SHARED_BASE, Platform, PlatformConfig
from ..core.reduction import WrapperPolicy
from ..cpu.presets import preset_generic
from ..verify.checker import CoherenceChecker
from ..verify.model_check import check_pair
from .case import MODEL_PROTOCOLS

__all__ = ["DifferentialReport", "differential_check", "replay_events"]

_EVENTS = ("read0", "read1", "write0", "write1", "evict0", "evict1")


def replay_events(
    p0: str,
    p1: str,
    wrapped: bool,
    events: Sequence[str],
    probe_reads: bool = True,
) -> Tuple[bool, List[str]]:
    """Serially replay an abstract event path on the concrete simulator.

    Returns ``(clean, violations)`` from the coherence checker.  With
    ``probe_reads`` each processor issues a final read, surfacing
    lost-data / stale-copy states that the path itself never loads.
    """
    platform = Platform(
        PlatformConfig(
            cores=(preset_generic("p0", p0), preset_generic("p1", p1)),
            hardware_coherence=True,
        )
    )
    if not wrapped:
        for wrapper in platform.wrappers:
            if wrapper is not None:
                wrapper.policy = WrapperPolicy()
    checker = CoherenceChecker(platform)
    controllers = platform.controllers
    addr = SHARED_BASE

    def driver():
        value = 1
        for event in events:
            actor = int(event[-1])
            kind = event[:-1]
            if kind == "read":
                yield from controllers[actor].read(addr)
            elif kind == "write":
                yield from controllers[actor].write(addr, value)
                value += 1
            else:  # evict
                yield from controllers[actor].flush_line(addr)
        if probe_reads:
            for actor in (0, 1):
                yield from controllers[actor].read(addr)

    done = platform.sim.process(driver(), name="differential")
    platform.sim.run(stop_event=done, max_events=100_000)
    checker.check_all_lines()
    return checker.clean, [str(v) for v in checker.violations]


@dataclass
class DifferentialReport:
    """Agreement record for every checked configuration."""

    checked: int = 0
    paths: int = 0
    #: human-readable description of each disagreement (empty = agree)
    disagreements: List[str] = field(default_factory=list)
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when model and simulator agreed everywhere."""
        return not self.disagreements

    def summary(self) -> str:
        """One-line human rendering."""
        status = "AGREE" if self.ok else f"{len(self.disagreements)} DISAGREE"
        return (
            f"differential: {self.checked} configurations, "
            f"{self.paths} concrete paths -> {status}"
        )


def _random_paths(
    rng: random.Random, n_paths: int, length: int
) -> List[Tuple[str, ...]]:
    return [
        tuple(rng.choice(_EVENTS) for _ in range(length))
        for _ in range(n_paths)
    ]


def differential_check(
    protocols: Sequence[str] = MODEL_PROTOCOLS,
    wrapped_modes: Sequence[bool] = (True, False),
    n_random: int = 6,
    path_length: int = 10,
    max_witnesses: int = 3,
    seed: int = 0,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> DifferentialReport:
    """Cross-validate every ordered pair in both wrapper modes.

    For model-safe configurations, ``n_random`` seeded event paths of
    ``path_length`` must replay clean; for model-unsafe ones, up to
    ``max_witnesses`` of the model's witness paths must reproduce a
    concrete checker violation.
    """
    report = DifferentialReport()
    if pairs is None:
        pairs = [(a, b) for a in protocols for b in protocols]
    for p0, p1 in pairs:
        for wrapped in wrapped_modes:
            verdict = check_pair(p0, p1, wrapped=wrapped)
            record: Dict[str, Any] = {
                "pair": (p0, p1),
                "wrapped": wrapped,
                "model_ok": verdict.ok,
                "paths": [],
            }
            report.checked += 1
            rng = random.Random(f"differential:{seed}:{p0}:{p1}:{wrapped}")
            if verdict.ok:
                for path in _random_paths(rng, n_random, path_length):
                    clean, violations = replay_events(p0, p1, wrapped, path)
                    report.paths += 1
                    record["paths"].append(
                        {"events": list(path), "clean": clean}
                    )
                    if not clean:
                        report.disagreements.append(
                            f"{p0}+{p1} wrapped={wrapped}: model SAFE but "
                            f"simulator violated on {'->'.join(path)}: "
                            f"{violations[0]}"
                        )
            else:
                for witness in verdict.violations[:max_witnesses]:
                    clean, violations = replay_events(
                        p0, p1, wrapped, witness.path
                    )
                    report.paths += 1
                    record["paths"].append(
                        {
                            "events": list(witness.path),
                            "kind": witness.kind,
                            "clean": clean,
                        }
                    )
                    if clean:
                        report.disagreements.append(
                            f"{p0}+{p1} wrapped={wrapped}: model witness "
                            f"({witness.kind}) did not reproduce: "
                            f"{'->'.join(witness.path) or '<init>'}"
                        )
            report.records.append(record)
    return report
