"""Unit tests for tracing and stats."""

from repro.sim import NullTracer, Stats, TraceRecord, Tracer


class TestTracer:
    def test_records_enabled_channel(self):
        tracer = Tracer(channels=("bus",))
        tracer.emit(10, "bus", "m0", "grant", addr=0x100)
        assert len(tracer.records) == 1
        assert tracer.records[0].kind == "grant"

    def test_skips_disabled_channel(self):
        tracer = Tracer(channels=("bus",))
        tracer.emit(10, "cache", "m0", "fill")
        assert len(tracer.records) == 0

    def test_none_channels_records_everything(self):
        tracer = Tracer()
        tracer.emit(1, "a", "s", "k")
        tracer.emit(2, "b", "s", "k")
        assert len(tracer.records) == 2

    def test_enable_adds_channel(self):
        tracer = Tracer(channels=())
        tracer.enable("irq")
        tracer.emit(1, "irq", "s", "k")
        assert len(tracer.records) == 1

    def test_listener_sees_disabled_channels(self):
        tracer = Tracer(channels=())
        seen = []
        tracer.add_listener(seen.append)
        tracer.emit(5, "mem", "c0", "load", addr=4, value=9)
        assert len(tracer.records) == 0
        assert len(seen) == 1
        assert seen[0].fields["value"] == 9

    def test_capacity_bounds_storage(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(i, "x", "s", "k")
        assert len(tracer.records) == 3
        assert tracer.records[0].time == 7

    def test_find_filters(self):
        tracer = Tracer()
        tracer.emit(1, "bus", "a", "grant")
        tracer.emit(2, "bus", "a", "complete")
        tracer.emit(3, "irq", "b", "grant")
        assert len(tracer.find(channel="bus")) == 2
        assert len(tracer.find(kind="grant")) == 2
        assert len(tracer.find(channel="bus", kind="grant")) == 1

    def test_format_is_one_line_per_record(self):
        tracer = Tracer()
        tracer.emit(1, "bus", "a", "grant", addr=0x2000_0000)
        tracer.emit(2, "bus", "a", "done")
        text = tracer.format()
        assert len(text.splitlines()) == 2
        assert "0x20000000" in text

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.emit(1, "bus", "a", "grant")
        assert len(tracer.records) == 0

    def test_null_tracer_still_feeds_listeners(self):
        tracer = NullTracer()
        seen = []
        tracer.add_listener(seen.append)
        tracer.emit(1, "bus", "a", "grant")
        assert len(seen) == 1


class TestStats:
    def test_bump_and_get(self):
        stats = Stats()
        stats.bump("x")
        stats.bump("x", 4)
        assert stats.get("x") == 5

    def test_missing_key_is_zero(self):
        assert Stats().get("nope") == 0

    def test_as_dict_snapshot(self):
        stats = Stats()
        stats.bump("a", 2)
        snapshot = stats.as_dict()
        stats.bump("a")
        assert snapshot == {"a": 2}

    def test_merge(self):
        a, b = Stats(), Stats()
        a.bump("k", 1)
        b.bump("k", 2)
        b.bump("other", 3)
        a.merge(b)
        assert a.get("k") == 3
        assert a.get("other") == 3


class TestTraceChannel:
    """The cached per-channel guards used by hot emit call sites."""

    def test_channel_is_cached(self):
        tracer = Tracer(channels=("bus",))
        assert tracer.channel("bus") is tracer.channel("bus")

    def test_guard_reflects_enabled_set(self):
        tracer = Tracer(channels=("bus",))
        assert tracer.channel("bus").enabled
        assert not tracer.channel("cache").enabled

    def test_enable_refreshes_existing_guards(self):
        tracer = Tracer(channels=())
        guard = tracer.channel("irq")
        assert not guard.enabled
        tracer.enable("irq")
        assert guard.enabled and guard.store

    def test_listener_enables_guard_without_storage(self):
        tracer = Tracer(channels=())
        guard = tracer.channel("mem")
        seen = []
        tracer.add_listener(seen.append)
        assert guard.enabled and not guard.store
        guard.emit(5, "c0", "load", addr=4)
        assert len(seen) == 1
        assert len(tracer.records) == 0

    def test_channel_emit_stores_on_enabled_channel(self):
        tracer = Tracer(channels=("bus",))
        tracer.channel("bus").emit(10, "m0", "grant", addr=0x100)
        assert len(tracer.records) == 1
        assert tracer.records[0].channel == "bus"
        assert tracer.records[0].fields["addr"] == 0x100

    def test_channel_emit_respects_capacity(self):
        tracer = Tracer(capacity=3)
        guard = tracer.channel("x")
        for i in range(10):
            guard.emit(i, "s", "k")
        assert len(tracer.records) == 3
        assert tracer.records[0].time == 7

    def test_null_tracer_guards_stay_dead(self):
        tracer = NullTracer()
        guard = tracer.channel("bus")
        assert not guard.enabled
        tracer.enable("bus")  # must NOT start recording on a NullTracer
        assert not guard.enabled and not guard.store

    def test_null_tracer_listener_enables_guard(self):
        tracer = NullTracer()
        guard = tracer.channel("bus")
        seen = []
        tracer.add_listener(seen.append)
        assert guard.enabled and not guard.store
        guard.emit(1, "a", "grant")
        assert len(seen) == 1
        assert len(tracer.records) == 0


class TestEmitAllocation:
    """Disabled channels must not even construct a TraceRecord."""

    @staticmethod
    def _count_records(monkeypatch):
        from repro.sim import tracing

        calls = []
        real = tracing.TraceRecord

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(tracing, "TraceRecord", counting)
        return calls

    def test_emit_builds_no_record_on_disabled_channel(self, monkeypatch):
        calls = self._count_records(monkeypatch)
        tracer = Tracer(channels=("bus",))
        tracer.emit(1, "cache", "m0", "fill", addr=0x40)
        assert calls == []
        tracer.emit(2, "bus", "m0", "grant")
        assert len(calls) == 1

    def test_null_tracer_emit_builds_no_record(self, monkeypatch):
        calls = self._count_records(monkeypatch)
        NullTracer().emit(1, "bus", "m0", "grant", addr=0x40)
        assert calls == []

    def test_capped_buffer_still_constructs_and_evicts(self, monkeypatch):
        calls = self._count_records(monkeypatch)
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(i, "x", "s", "k")
        assert len(calls) == 5  # every record built...
        assert len(tracer.records) == 2  # ...but only the newest kept
        assert [r.time for r in tracer.records] == [3, 4]

    def test_trace_record_has_no_dict(self):
        record = TraceRecord(1, "bus", "a", "grant", {"addr": 4})
        assert not hasattr(record, "__dict__")
