"""The paper's quoted numbers, recomputed side by side.

One benchmark that re-measures every headline claim of Section 4 and
the abstract; EXPERIMENTS.md reproduces this output.
"""

from conftest import report, run_once

from repro.analysis import compute_headlines, render_headlines


def test_headlines(benchmark):
    headlines = run_once(benchmark, compute_headlines, iterations=8, lines=32)
    report(benchmark, "Headline comparison (paper vs measured)", render_headlines(headlines))
    by_claim = {h.claim: h for h in headlines}
    # BCS 32-line speedup lands within a few points of 38.22 %.
    bcs = by_claim["BCS 32 lines, exec_time=1: proposed speedup vs software"]
    assert abs(bcs.measured - bcs.paper_value) < 10
    # High-penalty BCS speedup lands near the quoted ~76 %.
    bcs96 = by_claim["BCS 32 lines, 96-cycle miss penalty: speedup vs software"]
    assert abs(bcs96.measured - bcs96.paper_value) < 10
    # WCS improvement over cache-disabled is large and positive.
    wcs = by_claim["WCS exec_time=4: proposed improvement vs cache-disabled"]
    assert wcs.measured > 50
