"""The sweep runner itself: cold vs warm regeneration of Figure 5.

Regenerates a reduced Figure 5 sweep through the :mod:`repro.exp`
runner twice against one cache directory.  The cold pass executes every
simulation; the warm pass must execute none and answer everything from
the content-addressed cache — the speedup between the two passes is the
cache's whole value proposition.
"""

import shutil
import tempfile

from conftest import report, run_once

from repro.analysis import figure5_wcs, figure_to_csv
from repro.exp import SweepRunner

SWEEP = dict(line_counts=(1, 2, 4, 8), exec_times=(1, 2), iterations=4)


def test_sweep_cold_then_warm(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="sweep-cache-")
    try:
        cold_runner = SweepRunner(cache_dir=cache_dir)
        cold = figure5_wcs(runner=cold_runner, **SWEEP)
        assert cold_runner.executed == cold_runner.manifest()["n_jobs"]

        warm_runner = SweepRunner(cache_dir=cache_dir)
        warm = run_once(benchmark, figure5_wcs, runner=warm_runner, **SWEEP)

        assert warm_runner.executed == 0
        assert warm_runner.cache_hits == cold_runner.manifest()["n_jobs"]
        assert figure_to_csv(warm) == figure_to_csv(cold)
        report(
            benchmark,
            "Sweep runner - warm cache regeneration",
            cold_runner.summary() + "\n" + warm_runner.summary(),
        )
        benchmark.extra_info["cold_wall_s"] = cold_runner.manifest()["wall_s"]
        benchmark.extra_info["warm_wall_s"] = warm_runner.manifest()["wall_s"]
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
