"""Analysis: figure sweeps, headline comparisons, ablations."""

from .ablations import (
    AblationRow,
    ablation_arbitration,
    ablation_interrupt,
    ablation_locks,
    ablation_wrapper,
    render_rows,
)
from .export import (
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    headlines_to_markdown,
    write_figure_csv,
)
from .figures import (
    DEFAULT_EXEC_TIMES,
    DEFAULT_LINE_COUNTS,
    DEFAULT_PENALTIES,
    FigureData,
    Series,
    figure5_wcs,
    figure6_bcs,
    figure7_tcs,
    figure8_miss_penalty,
    scenario_figure,
)
from .headlines import Headline, compute_headlines, render_headlines
from .utilization import BusUtilization, bus_utilization

__all__ = [
    "FigureData",
    "Series",
    "figure5_wcs",
    "figure6_bcs",
    "figure7_tcs",
    "figure8_miss_penalty",
    "scenario_figure",
    "DEFAULT_LINE_COUNTS",
    "DEFAULT_EXEC_TIMES",
    "DEFAULT_PENALTIES",
    "Headline",
    "compute_headlines",
    "render_headlines",
    "AblationRow",
    "ablation_wrapper",
    "ablation_locks",
    "ablation_interrupt",
    "ablation_arbitration",
    "render_rows",
    "figure_to_csv",
    "figure_to_json",
    "figure_to_markdown",
    "headlines_to_markdown",
    "write_figure_csv",
    "BusUtilization",
    "bus_utilization",
]
