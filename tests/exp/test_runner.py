"""Unit tests for the sweep runner: ordering, caching, manifests."""

import os

import pytest

from repro.errors import SimulationError
from repro.exp import MicrobenchJob, SequenceJob, SweepRunner
from repro.exp.jobs import SimJob
from repro.workloads import MicrobenchSpec


def small_jobs():
    spec = MicrobenchSpec("wcs", "disabled", lines=2, exec_time=1, iterations=2)
    return [
        MicrobenchJob(spec),
        MicrobenchJob(spec.with_(solution="proposed")),
        SequenceJob(("MESI", "MEI"), wrapped=False),
    ]


class _ScriptedJob(SimJob):
    """A job that returns a constant — or dies — for runner tests."""

    kind = "scripted"

    def __init__(self, tag, action="ok"):
        self.tag = tag
        self.action = action

    def payload(self):
        return {"kind": self.kind, "tag": self.tag}

    @property
    def label(self):
        return f"scripted:{self.tag}"

    def run(self):
        if self.action == "interrupt":
            raise KeyboardInterrupt
        if self.action == "crash":
            os._exit(23)
        return {"tag": self.tag}


class TestSweepRunner:
    def test_results_in_submission_order(self):
        jobs = small_jobs()
        results = SweepRunner().run(jobs)
        assert len(results) == len(jobs)
        assert results[0]["elapsed_ns"] > results[1]["elapsed_ns"]  # disabled slower
        assert results[2]["stale_reads"] == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_duplicate_jobs_simulate_once(self):
        jobs = small_jobs()
        runner = SweepRunner()
        results = runner.run([jobs[0], jobs[1], jobs[0]])
        assert results[0] == results[2]
        assert runner.executed == 2
        assert runner.manifest()["deduplicated"] == 1

    def test_warm_cache_executes_nothing(self, tmp_path):
        jobs = small_jobs()
        cold = SweepRunner(cache_dir=str(tmp_path))
        cold_results = cold.run(jobs)
        assert cold.executed == len(jobs)

        warm = SweepRunner(cache_dir=str(tmp_path))
        warm_results = warm.run(jobs)
        assert warm.executed == 0
        assert warm.cache_hits == len(jobs)
        assert warm_results == cold_results

    def test_manifest_accumulates_across_sweeps(self, tmp_path):
        jobs = small_jobs()
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(jobs[:2])
        runner.run(jobs)  # first two hit, third misses
        manifest = runner.manifest()
        assert manifest["sweeps"] == 2
        assert manifest["n_jobs"] == 5
        assert manifest["cache_hits"] == 2
        assert manifest["executed"] == 3
        assert [entry["index"] for entry in manifest["jobs"]] == list(range(5))
        assert all(entry["label"] for entry in manifest["jobs"])

    def test_manifest_written_to_disk(self, tmp_path):
        import json

        runner = SweepRunner(cache_dir=str(tmp_path / "cache"))
        runner.run(small_jobs()[:1])
        path = str(tmp_path / "out" / "manifest.json")
        runner.write_manifest(path)
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["n_jobs"] == 1
        assert manifest["jobs"][0]["cache_hit"] is False
        assert manifest["jobs"][0]["wall_s"] > 0

    def test_parallel_pool_matches_serial(self, tmp_path):
        jobs = small_jobs()
        serial = SweepRunner().run(jobs)
        parallel = SweepRunner(jobs=3).run(jobs)
        assert parallel == serial

    def test_summary_mentions_totals(self):
        runner = SweepRunner()
        runner.run(small_jobs()[:1])
        summary = runner.summary()
        assert "1 jobs" in summary and "1 simulated" in summary


class TestInterruptSafety:
    def test_sigint_mid_sweep_keeps_completed_results(self, tmp_path):
        jobs = [
            _ScriptedJob("a"),
            _ScriptedJob("b", action="interrupt"),  # Ctrl-C mid-sweep
            _ScriptedJob("c"),
        ]
        runner = SweepRunner(cache_dir=str(tmp_path))
        with pytest.raises(KeyboardInterrupt):
            runner.run(jobs)
        # The completed job's record and cache entry both survive.
        assert [r.label for r in runner.records] == ["scripted:a"]
        manifest = runner.manifest()
        assert manifest["n_jobs"] == 1
        assert manifest["executed"] == 1

    def test_resumed_sweep_reexecutes_only_unfinished_jobs(self, tmp_path):
        jobs = [
            _ScriptedJob("a"),
            _ScriptedJob("b", action="interrupt"),
            _ScriptedJob("c"),
        ]
        interrupted = SweepRunner(cache_dir=str(tmp_path))
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(jobs)

        fixed = [_ScriptedJob("a"), _ScriptedJob("b"), _ScriptedJob("c")]
        resumed = SweepRunner(cache_dir=str(tmp_path))
        results = resumed.run(fixed)
        assert [r["tag"] for r in results] == ["a", "b", "c"]
        assert resumed.cache_hits == 1      # job "a" answered from disk
        assert resumed.executed == 2        # only b and c re-simulated


class TestWorkerFailures:
    def test_crashed_worker_job_becomes_an_error(self):
        jobs = [_ScriptedJob("a"), _ScriptedJob("boom", action="crash")]
        runner = SweepRunner(jobs=2, max_attempts=1)
        with pytest.raises(SimulationError, match="scripted:boom"):
            runner.run(jobs)

    def test_crash_does_not_lose_sibling_results(self, tmp_path):
        jobs = [_ScriptedJob("a"), _ScriptedJob("boom", action="crash")]
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path), max_attempts=1)
        # Serial path would raise before caching, so use the pool: a
        # single pending miss falls back to serial — add a second good
        # job to keep two misses pending.
        jobs.insert(0, _ScriptedJob("z"))
        runner = SweepRunner(jobs=2, cache_dir=str(tmp_path), max_attempts=1)
        with pytest.raises(SimulationError):
            runner.run(jobs)
        # The good jobs that finished before the failure are on disk.
        resumed = SweepRunner(jobs=2, cache_dir=str(tmp_path), max_attempts=1)
        results = resumed.run([_ScriptedJob("z"), _ScriptedJob("a")])
        assert resumed.executed <= 2  # at least the crash-adjacent reruns
        assert [r["tag"] for r in results] == ["z", "a"]


class TestManifestAtomicity:
    """Crash mid-write must never tear an existing manifest."""

    def test_interrupted_write_preserves_previous_manifest(
        self, tmp_path, monkeypatch
    ):
        import json as json_module

        runner = SweepRunner(jobs=1)
        runner.run([_ScriptedJob("a")])
        manifest_path = str(tmp_path / "manifest.json")
        runner.write_manifest(manifest_path)
        with open(manifest_path) as handle:
            before = json_module.load(handle)

        # Second sweep crashes mid-dump (the classic torn-write window).
        runner.run([_ScriptedJob("b")])

        def exploding_dump(*args, **kwargs):
            handle = args[1]
            handle.write('{"torn": ')  # bytes hit the disk...
            raise KeyboardInterrupt  # ...then the process dies

        import repro.exp.runner as runner_module

        monkeypatch.setattr(runner_module.json, "dump", exploding_dump)
        with pytest.raises(KeyboardInterrupt):
            runner.write_manifest(manifest_path)
        monkeypatch.undo()

        # The published manifest is still the complete previous one.
        with open(manifest_path) as handle:
            assert json_module.load(handle) == before
        # And no staging debris is left next to it.
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_write_into_missing_directory(self, tmp_path):
        runner = SweepRunner(jobs=1)
        runner.run([_ScriptedJob("a")])
        target = tmp_path / "deep" / "nested" / "manifest.json"
        runner.write_manifest(str(target))
        assert target.is_file()
