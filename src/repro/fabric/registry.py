"""Fabric registry: name -> fabric class.

The *vocabulary* of fabric names belongs to the model side
(``repro.core.platform.FABRIC_NAMES``) so configurations validate
without importing this package; the registry here must cover exactly
that vocabulary, which the ``fabric-contract`` lint rule checks in CI.

Unlike engines (stateless singletons), fabrics are per-platform
objects: the registry maps names to *classes* and
:func:`make_fabric` builds one instance per platform.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ConfigError
from .interfaces import IFabric

__all__ = [
    "register_fabric",
    "get_fabric",
    "fabric_names",
    "make_fabric",
    "fabric_fingerprint",
]

_REGISTRY: Dict[str, Type[IFabric]] = {}


def register_fabric(cls: Type[IFabric]) -> Type[IFabric]:
    """Class decorator: register one fabric class under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "?":
        raise ConfigError(f"fabric class {cls.__name__} lacks a usable name")
    if name in _REGISTRY:
        raise ConfigError(f"duplicate fabric registration {name!r}")
    _REGISTRY[name] = cls
    return cls


def get_fabric(name: str) -> Type[IFabric]:
    """The fabric class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown fabric {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def fabric_names() -> List[str]:
    """Every registered fabric name, in registration order."""
    return list(_REGISTRY)


def make_fabric(
    name: str,
    sim,
    clock,
    controller,
    *,
    arbiter_factory,
    tracer=None,
    stats=None,
    max_retries=1000,
    line_bytes=32,
) -> IFabric:
    """Build one fabric instance for one platform."""
    return get_fabric(name).build(
        sim,
        clock,
        controller,
        arbiter_factory=arbiter_factory,
        tracer=tracer,
        stats=stats,
        max_retries=max_retries,
        line_bytes=line_bytes,
    )


def fabric_fingerprint(name: str) -> Dict[str, object]:
    """Bench-baseline identity of the fabric registered under ``name``."""
    return get_fabric(name).fingerprint()
