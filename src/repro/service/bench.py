"""Service saturation study and smoke harness.

Three levels, each a fresh in-process service hammered by blocking
clients on worker threads (the same stdlib :class:`~repro.service.
client.ServiceClient` external scripts use — the HTTP layer is
exercised for real, over real sockets):

* ``overlap`` — N clients concurrently submit the *same* small
  campaign of sweep + fuzz jobs.  Measures the dedup layer: the
  unique jobs simulate exactly once, every other submission attaches.
* ``saturation`` — a deliberately starved service (one worker, tiny
  queue) is flooded with unique sleep probes.  Measures load
  shedding: the queue stays bounded and the excess is refused with
  ``429`` + ``Retry-After`` instead of being buffered to death.
* ``cache`` — the ``overlap`` campaign is replayed against a *new*
  service sharing the first one's cache directory.  Measures the
  cross-restart cache path: everything answers from disk, nothing
  re-simulates.

Wall-clock numbers (throughput, drain time) are recorded for humans
but **excluded** from the regression check: only structural counters —
jobs accepted, deduped, answered from cache, completed, whether
shedding engaged — are compared, and those are deterministic, so the
committed ``BENCH_service.json`` is checked exactly.

:func:`run_smoke` is the CI gate: the ``overlap`` level plus hard
assertions (dedup exact, one simulation per unique job, clean drain).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from ..errors import IntegrationError
from .client import ServiceClient, ServiceHTTPError
from .config import ServiceConfig

__all__ = [
    "BENCH_FILE",
    "ServiceHarness",
    "run_suite",
    "run_smoke",
    "render_comparison",
    "check_regression",
    "load_results",
]

#: canonical result file name (at the repository root)
BENCH_FILE = "BENCH_service.json"

#: the overlapping campaign: sweeps + fuzz cases, all deterministic
def overlap_campaign() -> List[Dict[str, Any]]:
    jobs: List[Dict[str, Any]] = [
        {"kind": "sequence", "protocols": ["mei", "mesi"], "wrapped": True},
        {"kind": "sequence", "protocols": ["mei", "mesi"], "wrapped": False},
        {"kind": "sequence", "protocols": ["msi", "mesi"], "wrapped": True},
        {"kind": "sequence", "protocols": ["moesi", "msi"], "wrapped": True},
    ]
    for index in range(2):
        jobs.append(
            {
                "kind": "fuzz_case",
                "seed": 2004,
                "index": index,
                "n_masters": 2,
                "p_deadlock": 0.0,
                "p_unwrapped": 0.0,
                "p_fault": 0.0,
                "fabric": "atomic",
            }
        )
    return jobs


class ServiceHarness:
    """A live service on a background thread, for benches and tests.

    The event loop runs on the thread; the ``with`` body talks to the
    service over real sockets from the calling thread.  Exit drains
    gracefully (asserting the service shuts itself down) unless the
    body already stopped it.
    """

    def __init__(self, config: ServiceConfig, stop_timeout_s: float = 60.0):
        self.config = config
        self.stop_timeout_s = stop_timeout_s
        self.port: Optional[int] = None
        self.service = None
        self._loop = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        import asyncio

        async def main():
            from .server import CampaignService

            self.service = CampaignService(self.config)
            await self.service.start()
            self.port = self.service.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.wait_stopped()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced by __enter__/__exit__
            self._error = exc
            self._ready.set()

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise IntegrationError(f"service failed to start: {self._error}")
        if self.port is None:
            raise IntegrationError("service did not come up within 30s")
        return self

    def client(self, timeout_s: float = 60.0) -> ServiceClient:
        return ServiceClient(self.config.host, self.port, timeout_s=timeout_s)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread.is_alive() and self.port is not None:
            try:
                self.client().drain()
            except IntegrationError:
                pass  # already stopping
        self._thread.join(timeout=self.stop_timeout_s)
        if self._thread.is_alive():
            raise IntegrationError(
                f"service did not drain within {self.stop_timeout_s}s"
            )
        if self._error is not None and exc_type is None:
            raise IntegrationError(f"service died: {self._error}")


def _fanout(n_clients: int, body) -> List[Any]:
    """Run ``body(client_index)`` on N threads; re-raise the first error."""
    results: List[Any] = [None] * n_clients
    errors: List[BaseException] = []

    def runner(i: int) -> None:
        try:
            results[i] = body(i)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


def _level_overlap(
    data_dir: str, n_clients: int, workers: int
) -> Dict[str, Any]:
    campaign = overlap_campaign()
    config = ServiceConfig(data_dir=data_dir, workers=workers)
    started = time.monotonic()
    with ServiceHarness(config) as harness:
        def body(i: int) -> List[str]:
            client = harness.client()
            ids = [client.submit(payload)["job_id"] for payload in campaign]
            for job_id in ids:
                client.wait(job_id, timeout_s=300.0)
            return ids

        all_ids = _fanout(n_clients, body)
        stats = harness.client().stats()
    wall_s = time.monotonic() - started
    counters = stats["counters"]
    unique = len(set(all_ids[0]))
    return {
        "level": "overlap",
        "clients": n_clients,
        "jobs_per_client": len(campaign),
        "unique_jobs": unique,
        "accepted": counters["accepted"],
        "deduped": counters["deduped"],
        "cache_hits": counters["cache_hits"],
        "shed": counters["shed"],
        "completed": counters["terminal_done"],
        "failed": sum(
            counters[f"terminal_{s}"] for s in ("error", "timeout", "crash")
        ),
        "wall_s": round(wall_s, 3),
    }


def _level_saturation(data_dir: str, n_probes: int) -> Dict[str, Any]:
    config = ServiceConfig(
        data_dir=data_dir, workers=1, max_queue=4, allow_probe=True
    )
    started = time.monotonic()
    with ServiceHarness(config) as harness:
        def body(i: int) -> List[str]:
            client = harness.client()
            accepted: List[str] = []
            for j in range(n_probes // 4):
                nonce = i * 1000 + j
                try:
                    verdict = client.submit(
                        {"kind": "probe", "behavior": "sleep",
                         "sleep_s": 0.2, "nonce": nonce}
                    )
                    accepted.append(verdict["job_id"])
                except ServiceHTTPError as exc:
                    if exc.status != 429:
                        raise
                    assert exc.retry_after_s is not None
            return accepted

        per_client = _fanout(4, body)
        # everything admitted must reach a terminal state before drain
        client = harness.client()
        for job_id in (j for ids in per_client for j in ids):
            client.wait(job_id, timeout_s=120.0)
        stats = harness.client().stats()
    wall_s = time.monotonic() - started
    counters = stats["counters"]
    return {
        "level": "saturation",
        "workers": 1,
        "max_queue": 4,
        "offered": 4 * (n_probes // 4),
        "accepted": counters["accepted"],
        "shed": counters["shed"],
        "shed_observed": counters["shed"] > 0,
        "completed": counters["terminal_done"],
        "balance_ok": (
            counters["accepted"] + counters["shed"]
            == counters["submissions"]
        ),
        "all_accepted_completed": (
            counters["terminal_done"] == counters["accepted"]
        ),
        "wall_s": round(wall_s, 3),
    }


def _level_cache(data_dir: str, cache_dir: str) -> Dict[str, Any]:
    campaign = overlap_campaign()
    config = ServiceConfig(data_dir=data_dir, cache_dir=cache_dir, workers=2)
    started = time.monotonic()
    with ServiceHarness(config) as harness:
        client = harness.client()
        verdicts = [client.submit(payload) for payload in campaign]
        stats = client.stats()
    wall_s = time.monotonic() - started
    counters = stats["counters"]
    return {
        "level": "cache",
        "jobs": len(campaign),
        "answered_from_cache": sum(
            1 for v in verdicts if v.get("cached")
        ),
        "cache_hits": counters["cache_hits"],
        # terminal_done counts pool completions only; cache hits never
        # touch a worker, so this is the re-simulation count (want: 0)
        "simulated": counters["terminal_done"],
        "wall_s": round(wall_s, 3),
    }


def run_suite(quick: bool = False) -> Dict[str, Any]:
    """The full study; returns the result document."""
    n_clients = 3
    n_probes = 12 if quick else 40
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        overlap_dir = os.path.join(tmp, "overlap")
        levels = [
            _level_overlap(overlap_dir, n_clients=n_clients, workers=2),
            _level_saturation(os.path.join(tmp, "saturation"), n_probes),
            _level_cache(
                os.path.join(tmp, "cache-replay"),
                cache_dir=os.path.join(overlap_dir, "cache"),
            ),
        ]
    return {
        "schema": 1,
        "suite": "service",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "params": {
            "clients": n_clients,
            "campaign_jobs": len(overlap_campaign()),
            "saturation_probes": 4 * (n_probes // 4),
        },
        "levels": levels,
    }


#: per-level fields that must match the baseline exactly (all counters
#: of deterministic admission decisions; never wall-clock)
CHECKED_FIELDS = {
    "overlap": ("clients", "jobs_per_client", "unique_jobs", "accepted",
                "deduped", "cache_hits", "shed", "completed", "failed"),
    "saturation": ("shed_observed", "balance_ok", "all_accepted_completed"),
    "cache": ("jobs", "answered_from_cache", "cache_hits", "simulated"),
}


def _index(document: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {lvl["level"]: lvl for lvl in document.get("levels", [])}


def render_comparison(
    current: Dict[str, Any], baseline: Optional[Dict[str, Any]] = None
) -> str:
    lines = [
        f"service suite (quick={current.get('quick')}, "
        f"py {current.get('python')})"
    ]
    base = _index(baseline) if baseline else {}
    for level in current.get("levels", []):
        name = level["level"]
        fields = ", ".join(
            f"{key}={level[key]}"
            for key in CHECKED_FIELDS.get(name, ())
        )
        verdict = ""
        if name in base:
            drift = [
                key
                for key in CHECKED_FIELDS.get(name, ())
                if level.get(key) != base[name].get(key)
            ]
            verdict = (
                "  [matches baseline]" if not drift
                else f"  [DRIFT: {', '.join(drift)}]"
            )
        lines.append(f"  {name:<11} {fields}")
        lines.append(f"  {'':<11} wall={level['wall_s']}s{verdict}")
    return "\n".join(lines)


def check_regression(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Checked-field mismatches vs the baseline (exact; see module doc)."""
    failures: List[str] = []
    base = _index(baseline)
    for level in current.get("levels", []):
        name = level["level"]
        if name not in base:
            continue
        for key in CHECKED_FIELDS.get(name, ()):
            got, want = level.get(key), base[name].get(key)
            if got != want:
                failures.append(f"{name}.{key}: {got!r} != baseline {want!r}")
    return failures


def load_results(path: str) -> Optional[Dict[str, Any]]:
    """Parse a previously written result file (None when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def run_smoke(n_clients: int = 3) -> List[str]:
    """The CI gate: overlap level + hard assertions.

    Returns a list of failures (empty = pass): N concurrent clients
    submitting the same sweep+fuzz campaign must simulate each unique
    job exactly once, dedup every other submission, and the service
    must drain cleanly afterwards.
    """
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        level = _level_overlap(tmp, n_clients=n_clients, workers=2)
    failures: List[str] = []
    unique = level["unique_jobs"]
    offered = n_clients * level["jobs_per_client"]
    if level["completed"] != unique:
        failures.append(
            f"expected exactly {unique} simulations, saw {level['completed']}"
        )
    if level["failed"]:
        failures.append(f"{level['failed']} jobs failed")
    if level["accepted"] + level["deduped"] != offered:
        failures.append(
            f"admission counters do not add up: accepted={level['accepted']} "
            f"deduped={level['deduped']} offered={offered}"
        )
    if level["deduped"] != offered - unique:
        failures.append(
            f"dedup leak: {offered - unique} duplicate submissions but only "
            f"{level['deduped']} were deduped"
        )
    if level["cache_hits"]:
        failures.append(
            f"fresh data dir answered {level['cache_hits']} cache hits"
        )
    if level["shed"]:
        failures.append(f"unexpected shedding: {level['shed']}")
    return failures
