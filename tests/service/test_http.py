"""The hand-rolled HTTP layer: parsing, limits, serialisation."""

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY,
    MAX_HEADERS,
    HttpError,
    HttpRequest,
    json_response,
    read_request,
    response_bytes,
    sse_event,
    sse_preamble,
)


def parse(raw: bytes):
    """Feed raw bytes through a StreamReader into read_request."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /jobs/abc?wait=5&x=y HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/jobs/abc"
        assert request.query == {"wait": "5", "x": "y"}
        assert request.headers["host"] == "h"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"kind": "probe"}'
        raw = (
            b"POST /jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body
        assert request.json() == {"kind": "probe"}

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-ThInG: V\r\n\r\n")
        assert request.headers["x-thing"] == "V"

    def test_bare_lf_line_endings_accepted(self):
        request = parse(b"GET /healthz HTTP/1.1\nHost: h\n\n")
        assert request.path == "/healthz"

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_percent_encoded_path_decoded(self):
        request = parse(b"GET /jobs/a%62c HTTP/1.1\r\n\r\n")
        assert request.path == "/jobs/abc"


class TestRejections:
    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_wrong_protocol(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert exc.value.status == 400

    def test_truncated_headers(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nHost: h\r\n")  # no blank line
        assert exc.value.status == 400

    def test_too_many_headers(self):
        headers = "".join(f"H{i}: v\r\n" for i in range(MAX_HEADERS + 1))
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\n" + headers.encode() + b"\r\n")
        assert exc.value.status == 413

    def test_oversized_body_rejected(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode()
        )
        with pytest.raises(HttpError) as exc:
            parse(raw)
        assert exc.value.status == 413

    def test_negative_content_length(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert exc.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert exc.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 400

    def test_non_json_body(self):
        request = HttpRequest(method="POST", path="/", body=b"not json")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400

    def test_empty_body_json(self):
        request = HttpRequest(method="POST", path="/")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400


class TestResponses:
    def test_response_shape(self):
        raw = response_bytes(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert body == b"hi"

    def test_extra_headers(self):
        raw = response_bytes(429, b"{}", extra_headers={"Retry-After": "7"})
        assert b"Retry-After: 7" in raw
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests")

    def test_json_response_round_trips(self):
        raw = json_response(200, {"b": 2, "a": 1})
        _, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"a": 1, "b": 2}

    def test_sse_preamble_and_event(self):
        assert b"text/event-stream" in sse_preamble()
        frame = sse_event({"status": "done"}, event="result")
        assert frame == b'event: result\ndata: {"status": "done"}\n\n'
