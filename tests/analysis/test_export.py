"""Tests for figure-data export."""

import csv
import io
import json

import pytest

from repro.analysis import FigureData, Series
from repro.analysis.export import (
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    headlines_to_markdown,
    write_figure_csv,
)
from repro.analysis.headlines import Headline


@pytest.fixture
def figure():
    return FigureData(
        title="Test figure",
        xlabel="lines",
        ylabel="ratio",
        series=[
            Series("software", {1: 0.5, 2: 0.45}),
            Series("proposed", {1: 0.4, 2: 0.35}),
        ],
    )


class TestCsv:
    def test_header_and_rows(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["x", "software", "proposed"]
        assert rows[1] == ["1", "0.500000", "0.400000"]
        assert len(rows) == 3

    def test_missing_points_blank(self):
        figure = FigureData(
            "t", "x", "y",
            [Series("a", {1: 0.5}), Series("b", {2: 0.7})],
        )
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[1] == ["1", "0.500000", ""]
        assert rows[2] == ["2", "", "0.700000"]

    def test_write_to_file(self, figure, tmp_path):
        path = tmp_path / "figure.csv"
        write_figure_csv(figure, str(path))
        assert path.read_text().startswith("x,software,proposed")


class TestJson:
    def test_roundtrip(self, figure):
        payload = json.loads(figure_to_json(figure))
        assert payload["title"] == "Test figure"
        assert payload["series"][0]["name"] == "software"
        assert payload["series"][0]["points"]["2"] == pytest.approx(0.45)

    def test_keys_sorted_by_x(self, figure):
        payload = json.loads(figure_to_json(figure))
        keys = list(payload["series"][0]["points"])
        assert keys == sorted(keys, key=int)


class TestMarkdown:
    def test_figure_table(self, figure):
        text = figure_to_markdown(figure)
        assert "| series | 1 | 2 |" in text
        assert "| software | 0.500 | 0.450 |" in text

    def test_missing_cell_dash(self):
        figure = FigureData("t", "x", "y", [Series("a", {1: 0.5}), Series("b", {2: 1.0})])
        assert "| a | 0.500 | - |" in figure_to_markdown(figure)

    def test_headlines_table(self):
        headlines = [Headline("claim A", 38.22, 41.2)]
        text = headlines_to_markdown(headlines)
        assert "| claim A | 38.22% | 41.20% |" in text
