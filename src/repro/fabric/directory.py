"""A directory-based coherence interconnect.

Instead of broadcasting every address phase to every cache, a
**directory** records, per line, exactly which caches hold a copy, and
forwards snoops point-to-point to those caches only (cf. the
phase-priority directory-coherence line of work, arXiv:1305.3038).
Two structural differences from the snoopy fabrics:

* **Presence tracking.** :meth:`register_master` installs listeners on
  each cache controller's install/remove hooks (the same hooks the
  snoop logic's TAG CAM mirrors), so the directory's sharer/owner set
  per line is an exact mirror of which caches hold the line valid.
  Consulting only those caches is equivalent to broadcast: a cache
  without the line answers every snoop MISS/OK, contributing nothing.
  ``observe`` taps remain broadcast — the snoop-logic TAG CAM needs to
  see its own master's transactions regardless of presence.
* **Home banks.** The line address hashes to one of ``banks``
  per-home arbiters (each an instance of the configured service
  discipline), so transactions to different homes proceed
  concurrently — the scaling win over a single snoopy bus.  Same-line
  transactions always hash to the same bank, preserving the
  per-address serialisation the coherence checker relies on.  Each
  bank tenure is atomic (address + directory lookup + data), and the
  lookup adds ``DIRECTORY_LOOKUP_CYCLES`` to every address phase.

The protocol tables, wrapper conversions, ARTRY/drain handover and
validate-cancel semantics are all reused unchanged from the ASB model;
only *who is consulted* and *how tenures are arbitrated* differ.
Fabric-specific counters use the ``fabric.dir.`` prefix.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from ..bus.types import BusResult, Priority, SnoopAction, SnoopReply, Transaction
from ..bus.asb import TenureState
from .atomic import AtomicFabric
from .interfaces import FabricCapabilities
from .registry import register_fabric

__all__ = ["BankedArbiter", "DirectoryFabric"]


class BankedArbiter:
    """Aggregate diagnostic view over the per-home-bank arbiters.

    Presents the same read surface a single arbiter does (``grants``,
    ``grants_by_master``, ``pending``, ``snapshot``) so the watchdog
    and the experiment runners work unchanged; fault injectors that
    patch selection (``arbiter.starve``) iterate ``banks`` directly.
    """

    def __init__(self, banks: Tuple):
        self.banks = banks

    @property
    def grants(self) -> int:
        return sum(bank.grants for bank in self.banks)

    @property
    def grants_by_master(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for bank in self.banks:
            for master, count in bank.grants_by_master.items():
                merged[master] = merged.get(master, 0) + count
        return merged

    def pending(self) -> int:
        return sum(bank.pending() for bank in self.banks)

    def snapshot(self) -> dict:
        return {
            "grants": self.grants,
            "banks": [bank.snapshot() for bank in self.banks],
        }


@register_fabric
class DirectoryFabric(AtomicFabric):
    """Per-line-home directory with point-to-point snoop forwarding."""

    name = "directory"
    version = 1

    #: default number of home banks (concurrent arbitration domains)
    DEFAULT_BANKS = 8
    #: directory lookup latency added to every address phase
    DIRECTORY_LOOKUP_CYCLES = 1

    def __init__(
        self,
        sim,
        clock,
        controller,
        *,
        arbiter_factory,
        banks: int = DEFAULT_BANKS,
        line_bytes: int = 32,
        tracer=None,
        stats=None,
        max_retries=1000,
    ):
        super().__init__(
            sim,
            clock,
            controller,
            arbiter=None,
            tracer=tracer,
            stats=stats,
            max_retries=max_retries,
        )
        self.line_bytes = line_bytes
        self._banks: Tuple = tuple(arbiter_factory() for _ in range(max(1, banks)))
        #: the watchdog-facing aggregate over the home banks
        self.arbiter = BankedArbiter(self._banks)
        #: line base -> set of master names holding the line valid
        self._presence: Dict[int, Set[str]] = {}

    @classmethod
    def capabilities(cls) -> FabricCapabilities:
        return FabricCapabilities(
            broadcast=False,
            atomic_tenure=True,
            pipelined=False,
            point_to_point=True,
        )

    @classmethod
    def build(
        cls,
        sim,
        clock,
        controller,
        *,
        arbiter_factory,
        tracer=None,
        stats=None,
        max_retries=1000,
        line_bytes=32,
    ) -> "DirectoryFabric":
        return cls(
            sim,
            clock,
            controller,
            arbiter_factory=arbiter_factory,
            line_bytes=line_bytes,
            tracer=tracer,
            stats=stats,
            max_retries=max_retries,
        )

    @classmethod
    def fingerprint(cls) -> Dict[str, object]:
        return {
            "name": cls.name,
            "version": cls.version,
            "banks": cls.DEFAULT_BANKS,
            "lookup_cycles": cls.DIRECTORY_LOOKUP_CYCLES,
        }

    def snapshot(self) -> dict:
        return {
            "fabric": self.name,
            "completions": self.completions,
            "tracked_lines": len(self._presence),
            "arbiter": self.arbiter.snapshot(),
            "inflight": [t.describe() for t in self.inflight_tenures()],
        }

    # -- presence directory -------------------------------------------------
    def register_master(self, master: str, controller) -> None:
        """Mirror ``controller``'s line occupancy into the directory.

        Installs fire inside the bus-held commit; removals fire inside
        snoop windows, evictions and flushes — all serialised per line
        by the home bank, so the directory is never stale when
        consulted.
        """
        controller.install_listeners.append(
            lambda base, m=master: self._presence.setdefault(base, set()).add(m)
        )
        controller.remove_listeners.append(
            lambda base, m=master: self._discard(base, m)
        )

    def _discard(self, base: int, master: str) -> None:
        holders = self._presence.get(base)
        if holders is not None:
            holders.discard(master)
            if not holders:
                del self._presence[base]

    def _line_base(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _bank_for(self, addr: int):
        return self._banks[(addr // self.line_bytes) % len(self._banks)]

    # -- the tenure ---------------------------------------------------------
    def transact(
        self,
        txn: Transaction,
        priority: Priority = Priority.NORMAL,
        commit=None,
        validate=None,
    ) -> Generator:
        """One tenure on the line's home bank.

        Identical phase structure to the atomic bus, except the
        arbitration domain is the per-home bank, the address phase pays
        the directory lookup, and only recorded sharers are snooped.
        """
        sim = self.sim
        start = sim.now
        self.stats.bump("bus.txns")
        self.stats.bump(f"bus.op.{txn.op.value}")
        self.stats.bump(f"bus.master.{txn.master}")
        state = TenureState(txn.master, txn.op.value, txn.addr, start)
        self._inflight[id(txn)] = state
        bank = self._bank_for(txn.addr)
        held = False
        try:
            while True:
                yield bank.request(txn.master, priority)
                held = True
                if validate is not None and not validate():
                    bank.release(txn.master)
                    held = False
                    self._record_cancellation(txn)
                    return None
                tenure_start = sim.now
                state.phase = "address"
                state.since = tenure_start
                arb_cycles = 0 if priority is Priority.DRAIN else self.arbitration_cycles
                yield sim.timeout(
                    self.clock.edge_then_cycles(
                        sim.now,
                        arb_cycles + self.address_cycles + self.DIRECTORY_LOOKUP_CYCLES,
                    )
                )
                trace = self._trace_bus
                if trace.enabled:
                    trace.emit(
                        sim.now, txn.master, "address-phase",
                        op=txn.op.value, addr=txn.addr, retry_no=txn.retries,
                    )
                replies = self._directory_window(txn)
                retriers = [
                    (name, r) for name, r in replies if r.action is SnoopAction.RETRY
                ]
                if retriers:
                    self.stats.bump("bus.retries")
                    if trace.enabled:
                        trace.emit(sim.now, txn.master, "artry", addr=txn.addr)
                    if self.retry_penalty_cycles:
                        yield sim.timeout(self.clock.cycles(self.retry_penalty_cycles))
                    aborted = sim.now - tenure_start
                    self.stats.bump("bus.busy_ticks", aborted)
                    self.stats.bump(f"bus.busy.{txn.master}", aborted)
                    bank.release(txn.master)
                    held = False
                    txn.retries += 1
                    state.retries = txn.retries
                    self._check_retry_ceiling(txn)
                    state.phase = "backed-off"
                    state.since = sim.now
                    state.waiting_on = tuple(name for name, _ in retriers)
                    yield sim.all_of([r.completion for _, r in retriers])
                    state.waiting_on = ()
                    state.phase = "arbitrating"
                    state.since = sim.now
                    priority = Priority.RETRY
                    continue
                shared = any(
                    r.action in (SnoopAction.SHARED, SnoopAction.SUPPLY)
                    for _, r in replies
                )
                supplier = next(
                    (r for _, r in replies if r.action is SnoopAction.SUPPLY), None
                )
                state.phase = "data"
                state.since = sim.now
                data, cycles = self._data_phase(txn, supplier)
                yield sim.timeout(self.clock.cycles(cycles))
                result = BusResult(
                    data=data,
                    shared=shared,
                    retries=txn.retries,
                    start_time=start,
                    end_time=sim.now,
                    supplied=supplier is not None,
                )
                if commit is not None:
                    commit(result)
                if trace.enabled:
                    trace.emit(
                        sim.now, txn.master, "complete",
                        op=txn.op.value, addr=txn.addr, shared=shared,
                        supplied=result.supplied, retries=txn.retries,
                    )
                tenure = sim.now - tenure_start
                self.stats.bump("bus.busy_ticks", tenure)
                self.stats.bump(f"bus.busy.{txn.master}", tenure)
                bank.release(txn.master)
                held = False
                self._note_completion(txn)
                return result
        finally:
            del self._inflight[id(txn)]
            if held:
                bank.release(txn.master)

    # -- internals ----------------------------------------------------------
    def _directory_window(self, txn: Transaction) -> List[Tuple[str, SnoopReply]]:
        """Consult the directory and forward the snoop point-to-point.

        Equivalent to the broadcast window: caches absent from the
        presence set hold the line INVALID and would answer MISS/OK.
        Both the snooper list and the sharer set are snapshotted before
        the walk — a forwarded invalidation mutates the presence set
        (the remove listener fires), and fault-proxy teardown can
        detach a snooper mid-window.
        """
        base = self._line_base(txn.addr)
        sharers = frozenset(self._presence.get(base, ()))
        self.stats.bump("fabric.dir.lookups")
        replies: List[Tuple[str, SnoopReply]] = []
        trace = self._trace_bus
        snoopers = tuple(self.snoopers)
        for snooper in snoopers:
            # Passive taps stay broadcast: the snoop-logic TAG CAM must
            # see its own master's transactions to track allocations.
            snooper.observe(txn)
        for snooper in snoopers:
            name = snooper.master_name
            if name == txn.master or name not in sharers:
                continue
            self.stats.bump("fabric.dir.forwards")
            reply = snooper.snoop(txn)
            if reply.action is not SnoopAction.OK and trace.enabled:
                trace.emit(
                    self.sim.now, name, "snoop",
                    op=txn.op.value, addr=txn.addr, action=reply.action.value,
                )
            replies.append((name, reply))
        return replies
