"""The campaign driver: many cases, worker subprocesses, nothing lost.

:func:`run_campaign` executes cases ``0 .. n_cases-1`` of a seeded
:class:`~repro.fuzz.gen.CaseGenerator`, classifies each outcome
against its oracle, and persists everything incrementally:

* with ``workers > 1`` each case runs in a subprocess from the same
  crash-proof pool the sweep runner uses
  (:class:`~repro.exp.procpool.ResilientPool`): a case that wedges its
  worker past ``timeout_s`` is killed and classified ``timeout``, a
  worker that dies mid-case yields ``crash`` — either way the campaign
  keeps going and every other result survives;
* every completed case is appended to ``<out_dir>/results.jsonl``
  *as it finishes* (one JSON object per line, flushed), so killing the
  campaign — SIGINT, OOM, power — loses at most the in-flight cases;
* a rerun with the same ``out_dir`` resumes: cases already present in
  the manifest are not re-executed (case identity is ``(seed, index)``,
  and generation is index-stable, so resuming never shifts cases);
* each *unexpected* result is written to
  ``<out_dir>/reproducers/case-<index>.json`` — a self-contained file
  that ``python -m repro fuzz repro`` replays byte-identically.

Timing note: this module never reads the wall clock itself (the fuzz
package stays deterministic); per-case wall times come from the pool.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..exp.procpool import ResilientPool
from .case import CaseResult, FuzzCase, allowed_outcomes, run_case
from .gen import CaseGenerator

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run needs (JSON-round-trippable)."""

    seed: int = 0
    n_cases: int = 200
    workers: int = 1
    #: per-case deadline when running over the pool (None = no deadline)
    timeout_s: Optional[float] = 60.0
    #: manifest + reproducer directory (None = in-memory only)
    out_dir: Optional[str] = None
    #: skip cases already recorded in the manifest
    resume: bool = True
    # generator shape + mix (passed straight to CaseGenerator)
    n_masters: int = 2
    p_deadlock: float = 0.1
    p_unwrapped: float = 0.3
    p_fault: float = 0.15
    #: coherence fabric every trace case runs on
    fabric: str = "atomic"

    def __post_init__(self):
        if self.n_cases < 1:
            raise ConfigError(f"n_cases must be >= 1, got {self.n_cases}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    seed: int
    n_cases: int
    counts: Dict[str, int] = field(default_factory=dict)
    #: entries {"index", "case", "result", "reproducer"} per unexpected case
    unexpected: List[Dict[str, Any]] = field(default_factory=list)
    executed: int = 0
    resumed: int = 0

    @property
    def ok(self) -> bool:
        """True when every case classified as expected."""
        return not self.unexpected

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "seed": self.seed,
            "n_cases": self.n_cases,
            "counts": dict(sorted(self.counts.items())),
            "unexpected": self.unexpected,
            "executed": self.executed,
            "resumed": self.resumed,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """One-line human rendering."""
        mix = ", ".join(
            f"{outcome}={count}" for outcome, count in sorted(self.counts.items())
        )
        status = "OK" if self.ok else f"{len(self.unexpected)} UNEXPECTED"
        resumed = f", {self.resumed} resumed" if self.resumed else ""
        return (
            f"campaign seed={self.seed}: {self.n_cases} cases "
            f"({mix}{resumed}) -> {status}"
        )


def _case_worker(item: Tuple[int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
    """Pool body (top-level for pickling): run one case from its dict."""
    index, case_dict = item
    result = run_case(FuzzCase.from_dict(case_dict))
    return index, result.to_dict()


def _load_manifest(path: str) -> Dict[int, Dict[str, Any]]:
    """Completed entries from a (possibly truncated) results.jsonl."""
    done: Dict[int, Dict[str, Any]] = {}
    if not os.path.exists(path):
        return done
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write from a killed run; re-execute it
            if "index" in entry and "result" in entry:
                done[int(entry["index"])] = entry
    return done


class _Manifest:
    """Append-one-line-per-result JSONL writer (no-op when dir is None)."""

    def __init__(self, out_dir: Optional[str]):
        self.path = None
        self._handle = None
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            self.path = os.path.join(out_dir, "results.jsonl")
            self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _write_reproducer(
    out_dir: Optional[str], seed: int, index: int, case: FuzzCase,
    result: Dict[str, Any],
) -> Optional[str]:
    """Persist one unexpected case as a standalone replayable file."""
    if out_dir is None:
        return None
    directory = os.path.join(out_dir, "reproducers")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"case-{index}.json")
    payload = {
        "campaign_seed": seed,
        "index": index,
        "case": case.to_dict(),
        "result": result,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_campaign(config: CampaignConfig, progress=None) -> CampaignResult:
    """Run one campaign to completion (see module docstring).

    ``progress``, when given, is called as ``progress(done, total,
    entry)`` after every case (completed or resumed).
    """
    generator = CaseGenerator(
        config.seed,
        n_masters=config.n_masters,
        p_deadlock=config.p_deadlock,
        p_unwrapped=config.p_unwrapped,
        p_fault=config.p_fault,
        fabric=config.fabric,
    )
    result = CampaignResult(seed=config.seed, n_cases=config.n_cases)
    counts: Counter = Counter()

    done: Dict[int, Dict[str, Any]] = {}
    manifest_path = (
        os.path.join(config.out_dir, "results.jsonl")
        if config.out_dir is not None else None
    )
    if config.resume and manifest_path is not None:
        done = {
            index: entry
            for index, entry in _load_manifest(manifest_path).items()
            if 0 <= index < config.n_cases
        }

    cases = {index: generator.case(index) for index in range(config.n_cases)}
    pending = [index for index in range(config.n_cases) if index not in done]
    manifest = _Manifest(config.out_dir)
    completed = 0

    def record(index: int, result_dict: Dict[str, Any], resumed: bool) -> None:
        nonlocal completed
        completed += 1
        case = cases[index]
        entry = {
            "index": index,
            "case": case.to_dict(),
            "result": result_dict,
            "resumed": resumed,
        }
        counts[result_dict["outcome"]] += 1
        if resumed:
            result.resumed += 1
        else:
            result.executed += 1
            manifest.append(
                {"index": index, "case": case.to_dict(), "result": result_dict}
            )
        if not result_dict.get("expected", False):
            reproducer = _write_reproducer(
                config.out_dir, config.seed, index, case, result_dict
            )
            result.unexpected.append(
                {
                    "index": index,
                    "case": case.to_dict(),
                    "result": result_dict,
                    "reproducer": reproducer,
                }
            )
        if progress is not None:
            progress(completed, config.n_cases, entry)

    try:
        for index in sorted(done):
            record(index, done[index]["result"], resumed=True)
        if config.workers == 1 or len(pending) <= 1:
            for index in pending:
                case_result = run_case(cases[index])
                record(index, case_result.to_dict(), resumed=False)
        else:
            _run_pooled(config, cases, pending, record)
    finally:
        manifest.close()
        result.counts = dict(counts)
    return result


def _run_pooled(config: CampaignConfig, cases, pending, record) -> None:
    """Fan pending cases out over a ResilientPool."""
    items = [(index, cases[index].to_dict()) for index in pending]
    pool = ResilientPool(
        _case_worker,
        workers=min(config.workers, len(items)),
        timeout_s=config.timeout_s,
        max_attempts=1,  # cases are deterministic: a hang would hang again
    )
    for outcome in pool.map_unordered(items):
        index = items[outcome.index][0]
        if outcome.ok:
            _, result_dict = outcome.value
            record(index, result_dict, resumed=False)
            continue
        # The worker itself failed: timeout / crash / raised.  None of
        # these is ever in an oracle's allowed set.
        status = {"error": "crash"}.get(outcome.status, outcome.status)
        record(
            index,
            CaseResult(
                outcome=status,
                detail=str(outcome.value),
                allowed=allowed_outcomes(cases[index]),
            ).to_dict(),
            resumed=False,
        )
