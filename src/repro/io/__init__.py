"""I/O processors on the coherent bus (the paper's future-work section).

:func:`attach_dma` and :func:`attach_nic` wire a
:class:`~repro.io.dma.DmaEngine` / :class:`~repro.io.nic.NetworkInterface`
into an existing :class:`~repro.core.platform.Platform`: the engine's
register file becomes a memory-mapped device region and its transfers
run as an ordinary bus master, snooped by every wrapper and snoop-logic
block — which is precisely why the paper's methodology extends to
integrated I/O processors unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..core.platform import Platform
from ..cpu.interrupts import InterruptLine
from ..mem.map import Region
from .dma import (
    DMA_CTRL,
    DMA_DST,
    DMA_LEN,
    DMA_SRC,
    DMA_STATUS,
    STATUS_BUSY,
    STATUS_DONE,
    STATUS_IDLE,
    DmaEngine,
)
from .nic import NetworkInterface

#: default base address for the first DMA engine's register file
DMA_BASE = 0x7000_0000
#: default NIC staging SRAM (off the coherence domain)
NIC_STAGING_BASE = 0x7100_0000

__all__ = [
    "DmaEngine",
    "NetworkInterface",
    "attach_dma",
    "attach_nic",
    "DMA_BASE",
    "NIC_STAGING_BASE",
    "DMA_SRC",
    "DMA_DST",
    "DMA_LEN",
    "DMA_CTRL",
    "DMA_STATUS",
    "STATUS_IDLE",
    "STATUS_BUSY",
    "STATUS_DONE",
]


def attach_dma(
    platform: Platform,
    name: str = "dma0",
    base: int = DMA_BASE,
    irq: Optional[InterruptLine] = None,
) -> DmaEngine:
    """Add a DMA engine to ``platform`` at ``base`` (register region)."""
    engine = DmaEngine(
        name=name,
        sim=platform.sim,
        bus=platform.bus,
        base=base,
        line_bytes=platform.config.line_bytes,
        irq=irq,
    )
    platform.map.add(
        Region(name=f"dma:{name}", base=base, size=0x1000, cacheable=False, device=engine)
    )
    return engine


def attach_nic(
    platform: Platform,
    ring_base: int,
    payload_base: int,
    name: str = "nic0",
    n_slots: int = 4,
    slot_bytes: int = 64,
    dma_base: int = DMA_BASE,
    staging_base: int = NIC_STAGING_BASE,
    irq: Optional[InterruptLine] = None,
) -> NetworkInterface:
    """Add a receive-side NIC (its own DMA engine) to ``platform``.

    ``ring_base`` must lie in an uncacheable region (descriptors are a
    flag exchange); ``payload_base`` in ordinary shared memory.  The
    staging area models NIC-local SRAM and gets its own uncacheable
    region.
    """
    dma = attach_dma(platform, name=f"{name}.dma", base=dma_base, irq=None)
    platform.map.add(
        Region(
            name=f"nic-staging:{name}", base=staging_base, size=0x1000,
            cacheable=False,
        )
    )
    return NetworkInterface(
        name=name,
        sim=platform.sim,
        dma=dma,
        memory=platform.memory,
        ring_base=ring_base,
        payload_base=payload_base,
        n_slots=n_slots,
        slot_bytes=slot_bytes,
        staging_base=staging_base,
        irq=irq,
    )
