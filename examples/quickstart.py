#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in ~20 lines.

Builds the paper's PF2 evaluation platform (PowerPC755 + ARM920T on a
50 MHz ASB-like bus), runs the best-case microbenchmark under all three
coherence configurations, and prints the ratios of Figure 6's rightmost
points — including the quoted 38 % speedup of the proposed hardware
approach over the pure software solution.

Run:  python examples/quickstart.py
"""

from repro import MicrobenchSpec, run_microbench

LINES = 32  # cache lines touched per critical section


def main():
    results = {}
    for solution in ("disabled", "software", "proposed"):
        spec = MicrobenchSpec(
            scenario="bcs", solution=solution, lines=LINES,
            exec_time=1, iterations=8,
        )
        # check=True attaches the coherence checker: every load is
        # verified against a golden memory model while the run executes.
        results[solution] = run_microbench(spec, check=True)

    baseline = results["disabled"].elapsed_ns
    print(f"BCS microbenchmark, {LINES} lines per critical section")
    print(f"{'configuration':<12} {'time':>12} {'vs disabled':>12}")
    for solution, result in results.items():
        ratio = result.elapsed_ns / baseline
        print(f"{solution:<12} {result.elapsed_ns:>10} ns {ratio:>11.3f}")

    software = results["software"].elapsed_ns
    proposed = results["proposed"].elapsed_ns
    speedup = 100 * (software - proposed) / software
    print(f"\nproposed vs software speedup: {speedup:.1f}%  (paper: 38.22%)")


if __name__ == "__main__":
    main()
