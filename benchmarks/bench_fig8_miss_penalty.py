"""Figure 8: sensitivity to the miss penalty (13 -> 96 bus cycles).

Regenerates the paper's final figure: execution time of the proposed
solution relative to the software solution as memory slows down.  The
paper's observations, asserted below:

* the advantage of the proposed approach grows with the miss penalty
  for BCS and TCS ("as the miss penalty increases, the performance
  difference also increases in favor of our approach"),
* WCS shows "a few exceptions ... from cache line replacements and/or
  interrupt processing overheads" — it hovers near parity rather than
  improving monotonically,
* BCS with 32 lines approaches the ~76 % speedup quoted at 96 cycles.
"""

from conftest import report, run_once

from repro.analysis import figure8_miss_penalty

PENALTIES = (13, 26, 48, 72, 96)
LINE_COUNTS = (1, 32)
ITERATIONS = 8


def test_figure8_miss_penalty(benchmark):
    figure = run_once(
        benchmark,
        figure8_miss_penalty,
        penalties=PENALTIES,
        line_counts=LINE_COUNTS,
        scenarios=("wcs", "tcs", "bcs"),
        iterations=ITERATIONS,
    )
    report(benchmark, "Figure 8 - Results according to miss penalty", figure.render())

    def ratio(scenario, lines, penalty):
        return figure.get(f"{scenario} lines={lines}", penalty)

    # BCS and TCS improve monotonically-ish: last point beats first.
    for scenario in ("bcs", "tcs"):
        for lines in LINE_COUNTS:
            assert ratio(scenario, lines, 96) < ratio(scenario, lines, 13)
    # BCS at 32 lines: ~76 % speedup at 96 cycles in the paper.
    bcs_speedup = 1 - ratio("bcs", 32, 96)
    assert 0.6 <= bcs_speedup <= 0.85
    # WCS stays near parity at every penalty (the paper's exceptions).
    for penalty in PENALTIES:
        assert 0.9 <= ratio("wcs", 32, penalty) <= 1.05
