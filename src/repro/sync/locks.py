"""Lock implementations as code generators.

Each lock emits acquire/release sequences into an
:class:`~repro.cpu.assembler.Assembler`.  All of them follow the
paper's rule for PF1/PF2 platforms — lock state lives at *uncached*
addresses (or in the hardware lock register), because caching lock
variables invites the Fig 4 hardware deadlock:

* :class:`TurnLock` — strict alternation on an uncached turn word; the
  microbenchmarks use it for the WCS "tasks acquire the lock
  alternately" behaviour.
* :class:`SwapLock` — test-and-set spinlock built on the SWP atomic
  exchange (one bus-locked read-modify-write tenure).
* :class:`HwLock` — the 1-bit hardware lock register: a read atomically
  tests-and-sets, a zero write releases (Section 3, solution 2).
* :class:`BakeryLock` — Lamport's bakery algorithm (Section 3, solution
  1): mutual exclusion from plain uncached loads/stores, no atomic
  primitive needed.

Acquire/release sequences clobber r8-r12; task code should keep its
state in r1-r7.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.assembler import Assembler
from ..errors import ConfigError

__all__ = ["Lock", "TurnLock", "SwapLock", "HwLock", "BakeryLock"]


class Lock:
    """Base class: a lock that can emit acquire/release code."""

    #: words of uncached lock-region storage the lock needs
    footprint_words = 1

    def __init__(self, base_addr: int):
        self.base_addr = base_addr
        self._seq = 0

    def _unique(self, stem: str) -> str:
        self._seq += 1
        return f"_{stem}_{self.base_addr:x}_{self._seq}"

    def emit_acquire(self, asm: Assembler, task_id: int) -> None:
        """Emit code that returns only once ``task_id`` holds the lock."""
        raise NotImplementedError

    def emit_release(self, asm: Assembler, task_id: int) -> None:
        """Emit code that releases the lock held by ``task_id``."""
        raise NotImplementedError


class TurnLock(Lock):
    """Strict alternation: spin until the turn word equals my id.

    Only correct when every task acquires in round-robin order — which
    is precisely the paper's worst-case lock-handoff assumption for the
    microbenchmarks ("each task acquiring the lock alternatively").

    ``probe_gap_cycles`` inserts a backoff delay between probes, the
    standard idiom for keeping a spinning processor from saturating the
    shared bus with useless lock reads.
    """

    def __init__(self, base_addr: int, n_tasks: int = 2, probe_gap_cycles: int = 18):
        super().__init__(base_addr)
        if n_tasks < 2:
            raise ConfigError("TurnLock needs at least two tasks")
        self.n_tasks = n_tasks
        self.probe_gap_cycles = probe_gap_cycles

    def emit_acquire(self, asm: Assembler, task_id: int) -> None:
        spin = self._unique("turn_spin")
        asm.li(8, self.base_addr)
        asm.li(9, task_id)
        asm.label(spin)
        if self.probe_gap_cycles:
            asm.delay(self.probe_gap_cycles)
        asm.ld(10, 8)
        asm.bne(10, 9, spin)

    def emit_release(self, asm: Assembler, task_id: int) -> None:
        asm.li(8, self.base_addr)
        asm.li(9, (task_id + 1) % self.n_tasks)
        asm.st(9, 8)


class SwapLock(Lock):
    """Test-and-set spinlock over the SWP atomic exchange.

    Probes back off ``probe_gap_cycles`` between attempts to keep the
    bus-locked RMW traffic from starving useful transactions.
    """

    def __init__(self, base_addr: int, probe_gap_cycles: int = 8):
        super().__init__(base_addr)
        self.probe_gap_cycles = probe_gap_cycles

    def emit_acquire(self, asm: Assembler, task_id: int) -> None:
        spin = self._unique("swp_spin")
        asm.li(8, self.base_addr)
        asm.label(spin)
        asm.li(9, 1)
        asm.swp(9, 8)           # r9 <- old value; lock word <- 1
        if self.probe_gap_cycles:
            skip = self._unique("swp_got")
            asm.beq(9, 0, skip)
            asm.delay(self.probe_gap_cycles)
            asm.jmp(spin)
            asm.label(skip)
        else:
            asm.bne(9, 0, spin)

    def emit_release(self, asm: Assembler, task_id: int) -> None:
        asm.li(8, self.base_addr)
        asm.st(0, 8)            # store zero releases


class HwLock(Lock):
    """The hardware lock register: read acquires, zero-write releases."""

    def emit_acquire(self, asm: Assembler, task_id: int) -> None:
        spin = self._unique("hw_spin")
        asm.li(8, self.base_addr)
        asm.label(spin)
        asm.ld(9, 8)            # read is an atomic test-and-set
        asm.bne(9, 0, spin)

    def emit_release(self, asm: Assembler, task_id: int) -> None:
        asm.li(8, self.base_addr)
        asm.st(0, 8)


class BakeryLock(Lock):
    """Lamport's bakery algorithm on uncached words (no atomics).

    Layout at ``base_addr``: ``choosing[n]`` then ``number[n]``, one
    word each.  The emitted code is the textbook algorithm with the
    inner waits spinning on uncached loads.
    """

    def __init__(self, base_addr: int, n_tasks: int = 2):
        super().__init__(base_addr)
        if n_tasks < 2:
            raise ConfigError("BakeryLock needs at least two tasks")
        self.n_tasks = n_tasks
        self.footprint_words = 2 * n_tasks

    def _choosing(self, i: int) -> int:
        return self.base_addr + 4 * i

    def _number(self, i: int) -> int:
        return self.base_addr + 4 * (self.n_tasks + i)

    def emit_acquire(self, asm: Assembler, task_id: int) -> None:
        # choosing[i] = 1
        asm.li(8, self._choosing(task_id))
        asm.li(9, 1)
        asm.st(9, 8)
        # number[i] = 1 + max(number[0..n-1])   (r10 accumulates the max)
        asm.li(10, 0)
        for j in range(self.n_tasks):
            skip = self._unique(f"bak_max{j}")
            asm.li(8, self._number(j))
            asm.ld(9, 8)
            asm.bge(10, 9, skip)   # keep current max when >= number[j]
            asm.mov(10, 9)
            asm.label(skip)
        asm.addi(10, 10, 1)
        asm.li(8, self._number(task_id))
        asm.st(10, 8)              # r10 = my ticket, kept live below
        # choosing[i] = 0
        asm.li(8, self._choosing(task_id))
        asm.st(0, 8)
        # for each other task j: wait out its choice, then defer to
        # lexicographically smaller (number, id) pairs.
        for j in range(self.n_tasks):
            if j == task_id:
                continue
            wait_choosing = self._unique(f"bak_ch{j}")
            wait_number = self._unique(f"bak_num{j}")
            done = self._unique(f"bak_done{j}")
            asm.label(wait_choosing)
            asm.li(8, self._choosing(j))
            asm.ld(9, 8)
            asm.bne(9, 0, wait_choosing)
            asm.label(wait_number)
            asm.li(8, self._number(j))
            asm.ld(9, 8)
            asm.beq(9, 0, done)        # j is not competing
            asm.blt(9, 10, wait_number)  # number[j] < mine: defer
            asm.bne(9, 10, done)       # number[j] > mine: my turn vs j
            # numbers equal: the smaller task id wins
            if j < task_id:
                asm.jmp(wait_number)
            asm.label(done)

    def emit_release(self, asm: Assembler, task_id: int) -> None:
        asm.li(8, self._number(task_id))
        asm.st(0, 8)
