"""Event-driven simulation kernel.

A deliberately small discrete-event engine in the style of SimPy, tuned
for the needs of a shared-bus SoC model:

* integer time (1 tick == 1 ns by convention, see :mod:`repro.sim.clock`),
* generator-based processes (:class:`Process`) that ``yield`` events,
* deterministic ordering — events scheduled for the same tick fire in
  scheduling order (a monotone sequence number breaks ties).

The kernel knows nothing about buses or caches; those are modelled as
processes and shared objects in higher layers.

Fast path
---------
Triggering an event always means "fire at the current tick, after
everything already queued".  Those zero-delay firings dominate real
runs (every ``succeed``, mutex hand-off, process resume...), so they
bypass the time heap entirely: a plain FIFO run queue holds them, and
the scheduler drains heap entries due at the current time before the
FIFO.  Ordering is unchanged — see ``docs/timing-model.md`` ("kernel
fast path & determinism guarantees") for the argument.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import DeadlockError, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, resuming every waiting process at the current
    simulation time.  Triggering twice is an error: events are one-shot.
    """

    __slots__ = ("sim", "value", "_ok", "_triggered", "_scheduled", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.value: Any = None
        self._ok = True
        self._triggered = False
        self._scheduled = False
        self._callbacks: list[Callable[[Event], None]] = []

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (waiters resumed or queued)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded rather than failed."""
        return self._ok

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"Event.fail() needs an exception, got {exc!r}")
        self._trigger(exc, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self._triggered or self._scheduled:
            raise SimulationError("event triggered twice")
        self.value = value
        self._ok = ok
        self._scheduled = True
        # Zero-delay: straight onto the same-tick run queue, no heap.
        self.sim._fifo.append(self)

    def _fire(self) -> None:
        """Invoked by the simulator when this event's turn arrives."""
        self._triggered = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- waiting ----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event already fired, the callback runs immediately; late
        waiters never block forever.
        """
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        delay = int(delay)
        # Inlined Event.__init__ + scheduling: a Timeout is created per
        # modelled cycle boundary, making this the hottest constructor
        # in the simulator.
        self.sim = sim
        self.value = value
        self._ok = True
        self._triggered = False
        self._scheduled = True
        self._callbacks = []
        self.delay = delay
        if delay == 0:
            sim._fifo.append(self)
        else:
            heappush(sim._queue, (sim.now + delay, sim._sequence, self))
            sim._sequence += 1


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries whatever object the interrupter supplied; processes
    that never expect interruption simply let it propagate, which fails
    the process event.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A generator driven by the events it yields.

    The generator may yield:

    * an :class:`Event` — the process resumes when it triggers, receiving
      ``event.value`` as the result of the ``yield`` expression, and
    * nothing else; yielding a non-event is a :class:`SimulationError`.

    A process is itself an event and triggers with the generator's return
    value, so processes can wait on each other (fork/join).
    """

    __slots__ = ("generator", "name", "daemon", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "", daemon: bool = False):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.daemon = daemon
        # Kick-start on the current tick, after already-queued events.
        # The bootstrap is tracked as _waiting_on so an interrupt that
        # lands before it fires can detach it: otherwise the stale
        # bootstrap callback would still start the generator after the
        # Interrupt was delivered, and the first yielded event would
        # resume it a second time.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()
        self._waiting_on: Optional[Event] = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered and not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a process whose bootstrap has not fired yet cancels
        the start: the generator body never runs and the process fails
        with the :class:`Interrupt` (a fresh generator cannot catch an
        exception thrown into it).
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and not target._triggered:
            # Detach from whatever we were waiting on.
            try:
                target._callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wake = Event(self.sim)
        wake.add_callback(lambda _e: self._throw(Interrupt(cause)))
        wake.succeed()

    # -- driving ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._triggered or self._scheduled:  # pragma: no cover - defensive
            return
        self._waiting_on = None
        # Advance the generator directly — no per-step closure.  This
        # runs once per event a process waits on, so the lambda that
        # used to wrap send/throw was pure allocation overhead.
        try:
            if event._ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self._trigger(stop.value, ok=True)
            return
        except BaseException as exc:
            if self._callbacks:
                self._trigger(exc, ok=False)
                return
            raise
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._trigger(stop.value, ok=True)
            return
        except BaseException as raised:
            if self._callbacks:
                self._trigger(raised, ok=False)
                return
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (use sim.timeout / sim.event)"
            )
        if target._triggered:
            self._resume(target)
        else:
            self._waiting_on = target
            target._callbacks.append(self._resume)


class AllOf(Event):
    """Triggers once every child event has triggered (join barrier)."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._remaining = len(events)
        self.value = [None] * len(events)
        if not events:
            self.succeed(self.value)
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_collector(index))

    def _make_collector(self, index: int) -> Callable[[Event], None]:
        def collect(event: Event) -> None:
            if self._triggered or self._scheduled:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self.value[index] = event.value
            self._remaining -= 1
            if self._remaining == 0:
                self._trigger(self.value, ok=True)

        return collect

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        return super().succeed(value)


class AnyOf(Event):
    """Triggers as soon as one child event triggers.

    ``value`` is ``(index, child_value)`` of the first event to fire.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        for index, event in enumerate(events):
            event.add_callback(self._make_collector(index))

    def _make_collector(self, index: int) -> Callable[[Event], None]:
        def collect(event: Event) -> None:
            if self._triggered or self._scheduled:
                return
            if event.ok:
                self._trigger((index, event.value), ok=True)
            else:
                self.fail(event.value)

        return collect


# One scheduler per platform: a __dict__ here is off the per-event path.
class Simulator:  # repro: lint-ok[slots]
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()

        def worker():
            yield sim.timeout(10)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self):
        self.now: int = 0
        #: the time heap: (time, sequence, event), future events only
        self._queue: list[tuple[int, int, Event]] = []
        #: the same-tick run queue: zero-delay events in schedule order
        self._fifo: deque[Event] = deque()
        self._sequence = 0
        self._processes: list[Process] = []
        #: cumulative events fired over the simulator's lifetime — the
        #: denominator engine benchmarks use to express work done per
        #: wall-clock second in kernel terms
        self.events_fired: int = 0

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event (trigger it with ``.succeed()``)."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "", daemon: bool = False) -> Process:
        """Register ``generator`` as a process starting this tick.

        Daemon processes (service loops that never finish) are excluded
        from deadlock detection in :meth:`run`.
        """
        proc = Process(self, generator, name=name, daemon=daemon)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: int) -> None:
        if delay == 0:
            self._fifo.append(event)
        else:
            heappush(self._queue, (self.now + delay, self._sequence, event))
            self._sequence += 1

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        if self._fifo:
            return self.now
        return self._queue[0][0] if self._queue else None

    @property
    def queue_depth(self) -> int:
        """Scheduled-but-unfired events (heap + same-tick FIFO)."""
        return len(self._queue) + len(self._fifo)

    def step(self) -> None:
        """Fire the single next event (advancing ``now`` to its time).

        Heap entries due at the current tick predate anything on the
        same-tick FIFO (they were scheduled strictly earlier), so they
        fire first — the merged order is identical to the old single
        heap's (time, sequence) order.
        """
        queue = self._queue
        if queue and (not self._fifo or queue[0][0] == self.now):
            when, _seq, event = heappop(queue)
            if when < self.now:  # pragma: no cover - queue is monotone
                raise SimulationError("event queue went backwards")
            self.now = when
            event._fire()
        elif self._fifo:
            self._fifo.popleft()._fire()
        else:
            raise SimulationError("step() on an empty event queue")
        self.events_fired += 1

    def run(
        self,
        until: Optional[int] = None,
        stop_event: Optional[Event] = None,
        max_events: Optional[int] = None,
        detect_deadlock: bool = True,
    ) -> int:
        """Run until the queue drains, ``until`` ticks, or ``stop_event``.

        Returns the simulation time at which the run stopped.  Raises
        :class:`DeadlockError` when the event queue drains while live
        processes are still waiting — the classic symptom of the paper's
        hardware-deadlock scenario (pass ``detect_deadlock=False`` for
        step-wise use where external code triggers events between runs).
        """
        fired = 0
        queue = self._queue
        fifo = self._fifo
        fifo_pop = fifo.popleft
        try:
            while queue or fifo:
                if stop_event is not None and stop_event._triggered:
                    return self.now
                if until is not None:
                    next_time = self.now if fifo else queue[0][0]
                    if next_time > until:
                        self.now = until
                        return self.now
                if queue and (not fifo or queue[0][0] == self.now):
                    # Due heap entries predate every FIFO entry at this
                    # tick (their delay was >0, so they were scheduled on
                    # an earlier tick): they fire before the same-tick
                    # FIFO.
                    when, _seq, event = heappop(queue)
                    self.now = when
                    event._fire()
                else:
                    # Batch-drain the same-tick run queue before the
                    # clock may advance.
                    fifo_pop()._fire()
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            # One add per run() call, off the per-event path.
            self.events_fired += fired
        stuck = [p for p in self._processes if p.is_alive and not p.daemon]
        if detect_deadlock and stuck:
            waiting = [p.name for p in stuck]
            raise DeadlockError(
                "simulation stalled with live processes waiting: "
                + ", ".join(waiting)
            )
        if until is not None and self.now < until:
            self.now = until
        return self.now
