"""On-disk result cache, content-addressed by job payload + version.

Every cache entry is one JSON file ``<root>/<sha256>.json`` whose key
is the SHA-256 of the canonical JSON encoding of::

    {"version": <repro.__version__>, "job": <job payload>}

Including the package version means any release invalidates every
cached result wholesale — the simulator's timing model may have
changed, and a stale hit would silently corrupt regenerated figures.
Changing any field of the job spec changes the payload and therefore
the key, so distinct configurations can never collide.

Writes go through a temp file + :func:`os.replace` so a crashed or
concurrent run never leaves a torn entry; unreadable or corrupt entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "canonical_payload", "content_key"]


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the analysis layer, which
    # imports this module, before __version__ is bound.
    from .. import __version__

    return __version__


def canonical_payload(payload: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload: Dict[str, Any], version: Optional[str] = None) -> str:
    """SHA-256 cache key of a job payload under ``version``."""
    if version is None:
        version = _package_version()
    blob = canonical_payload({"version": version, "job": payload})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON result files."""

    def __init__(self, root: str, version: Optional[str] = None):
        self.root = root
        self.version = version if version is not None else _package_version()
        os.makedirs(self.root, exist_ok=True)

    def key_for(self, payload: Dict[str, Any]) -> str:
        """The cache key of ``payload`` under this cache's version."""
        return content_key(payload, self.version)

    def path_for(self, key: str) -> str:
        """Filesystem path of the entry for ``key``."""
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result for ``key``, or None on miss/corruption."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            return None
        return entry["result"]

    def put(self, key: str, payload: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Store ``result`` for ``key`` atomically.

        The payload is stored alongside the result so entries stay
        inspectable/debuggable with plain ``cat``.
        """
        entry = {"version": self.version, "job": payload, "result": result}
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
