"""Unit tests for the content-addressed result cache."""

import json
import os

import pytest

from repro.exp import MicrobenchJob, ResultCache, SequenceJob, content_key, job_from_payload
from repro.workloads import MicrobenchSpec


@pytest.fixture
def spec():
    return MicrobenchSpec("wcs", "proposed", lines=2, exec_time=1, iterations=2)


class TestContentKey:
    def test_stable_across_calls(self, spec):
        payload = MicrobenchJob(spec).payload()
        assert content_key(payload) == content_key(payload)

    def test_spec_change_changes_key(self, spec):
        a = MicrobenchJob(spec).payload()
        b = MicrobenchJob(spec.with_(lines=4)).payload()
        assert content_key(a) != content_key(b)

    def test_override_change_changes_key(self, spec):
        a = MicrobenchJob(spec).payload()
        b = MicrobenchJob(spec, miss_penalty=96).payload()
        c = MicrobenchJob(spec, arbitration="round-robin").payload()
        assert len({content_key(p) for p in (a, b, c)}) == 3

    def test_version_bump_changes_key(self, spec):
        payload = MicrobenchJob(spec).payload()
        assert content_key(payload, "1.0.0") != content_key(payload, "1.0.1")

    def test_dict_order_is_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert content_key(a, "v") == content_key(b, "v")


class TestEngineScoping:
    """Engine-tagged keys: the cache-poisoning regression suite.

    A result simulated under one engine must never be served to a
    sweep running under another — the batch engine matches the exact
    engine's counters but carries no timing, so a cross-engine hit
    would silently corrupt latency figures.
    """

    def test_engine_changes_key(self, spec):
        payload = MicrobenchJob(spec).payload()
        assert content_key(payload, "v", engine="exact") != content_key(
            payload, "v", engine="batch"
        )

    def test_default_engine_is_exact(self, spec):
        payload = MicrobenchJob(spec).payload()
        assert content_key(payload, "v") == content_key(
            payload, "v", engine="exact"
        )

    def test_engine_version_is_in_the_key(self, spec):
        # The key must move when an engine's version is bumped, not
        # just when its name changes.
        from repro.exp.cache import engine_tag
        from repro.engines import BatchEngine

        payload = MicrobenchJob(spec).payload()
        before = content_key(payload, "v", engine="batch")
        original = BatchEngine.version
        try:
            BatchEngine.version = original + 1
            assert engine_tag("batch")["version"] == original + 1
            assert content_key(payload, "v", engine="batch") != before
        finally:
            BatchEngine.version = original

    def test_cross_engine_hit_is_impossible(self, tmp_path, spec):
        # Poisoning attempt: store a (stats-only) batch result, then
        # look the same job up from an exact-engine cache on the same
        # directory.  The engine-scoped key must miss.
        payload = MicrobenchJob(spec).payload()
        batch_cache = ResultCache(str(tmp_path), version="v", engine="batch")
        batch_cache.put(
            batch_cache.key_for(payload), payload, {"hits": 10}
        )
        exact_cache = ResultCache(str(tmp_path), version="v", engine="exact")
        assert exact_cache.get(exact_cache.key_for(payload)) is None
        # ...and the batch cache still sees its own entry.
        assert batch_cache.get(batch_cache.key_for(payload)) == {"hits": 10}

    def test_entry_records_its_engine(self, tmp_path, spec):
        payload = MicrobenchJob(spec).payload()
        cache = ResultCache(str(tmp_path), version="v", engine="batch")
        key = cache.key_for(payload)
        cache.put(key, payload, {"hits": 1})
        with open(cache.path_for(key)) as handle:
            entry = json.load(handle)
        assert entry["engine"]["name"] == "batch"
        assert isinstance(entry["engine"]["version"], int)

    def test_legacy_unscoped_entry_is_quarantined(self, tmp_path, spec):
        # A pre-engine-tag entry (no "engine" field) planted at the
        # current key is treated as corrupt, not served.
        payload = MicrobenchJob(spec).payload()
        cache = ResultCache(str(tmp_path), version="v")
        key = cache.key_for(payload)
        with open(cache.path_for(key), "w") as handle:
            json.dump(
                {"version": "v", "job": payload, "result": {"x": 1}}, handle
            )
        assert cache.get(key) is None
        assert cache.quarantined == 1


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        assert cache.get(key) is None
        cache.put(key, payload, {"elapsed_ns": 123})
        assert cache.get(key) == {"elapsed_ns": 123}
        assert len(cache) == 1

    def test_version_bump_invalidates(self, tmp_path, spec):
        payload = MicrobenchJob(spec).payload()
        old = ResultCache(str(tmp_path), version="1.0.0")
        old.put(old.key_for(payload), payload, {"elapsed_ns": 1})
        new = ResultCache(str(tmp_path), version="1.0.1")
        assert new.get(new.key_for(payload)) is None

    def test_spec_change_misses(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        cache.put(cache.key_for(payload), payload, {"elapsed_ns": 1})
        changed = MicrobenchJob(spec.with_(iterations=3)).payload()
        assert cache.get(cache.key_for(changed)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        with open(cache.path_for(key), "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_corrupt_entry_is_quarantined(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        with open(cache.path_for(key), "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not os.path.exists(cache.path_for(key))
        quarantined = os.path.join(
            str(tmp_path), "corrupt", key[:2], f"{key}.json"
        )
        assert os.path.exists(quarantined)
        # Quarantined, the entry is a plain miss and can be overwritten.
        cache.put(key, payload, {"elapsed_ns": 5})
        assert cache.get(key) == {"elapsed_ns": 5}

    def test_truncated_entry_is_quarantined(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        cache.put(key, payload, {"elapsed_ns": 7})
        with open(cache.path_for(key)) as handle:
            text = handle.read()
        with open(cache.path_for(key), "w") as handle:
            handle.write(text[: len(text) // 2])  # torn write
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_wrong_schema_entry_is_quarantined(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        with open(cache.path_for(key), "w") as handle:
            json.dump({"something": "else"}, handle)  # valid JSON, wrong shape
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_missing_entry_is_not_quarantined(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(MicrobenchJob(spec).payload())
        assert cache.get(key) is None
        assert cache.quarantined == 0

    def test_entries_are_inspectable_json(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        key = cache.key_for(payload)
        cache.put(key, payload, {"elapsed_ns": 42})
        with open(cache.path_for(key)) as handle:
            entry = json.load(handle)
        assert entry["result"] == {"elapsed_ns": 42}
        assert entry["job"] == payload

    def test_no_temp_files_left_behind(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        payload = MicrobenchJob(spec).payload()
        cache.put(cache.key_for(payload), payload, {"elapsed_ns": 1})
        assert not [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]


class TestJobPayloadRoundTrip:
    def test_microbench_round_trips(self, spec):
        job = MicrobenchJob(spec, miss_penalty=48, arbitration="round-robin")
        assert job_from_payload(job.payload()) == job

    def test_sequence_round_trips(self):
        job = SequenceJob(("MESI", "MEI"), wrapped=False)
        assert job_from_payload(job.payload()) == job

    def test_payload_survives_json(self, spec):
        job = MicrobenchJob(spec, arm_interrupt_entry_cycles=8)
        payload = json.loads(json.dumps(job.payload()))
        assert job_from_payload(payload) == job


def _payload(spec, **overrides):
    """A microbench payload, optionally varied (distinct keys)."""
    return MicrobenchJob(spec.with_(**overrides) if overrides else spec).payload()


class TestSharding:
    """Entries live in <root>/<kk>/ shards; legacy flat caches migrate."""

    def test_entry_path_is_sharded(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(_payload(spec))
        path = cache.path_for(key)
        assert path == os.path.join(str(tmp_path), key[:2], f"{key}.json")

    def test_put_writes_into_the_shard(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(_payload(spec))
        cache.put(key, _payload(spec), {"x": 1})
        assert os.path.exists(
            os.path.join(str(tmp_path), key[:2], f"{key}.json")
        )
        assert not os.path.exists(os.path.join(str(tmp_path), f"{key}.json"))

    def test_legacy_flat_entry_migrates_on_read(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(_payload(spec))
        # Write the entry the pre-shard way: flat at the root.
        flat = os.path.join(str(tmp_path), f"{key}.json")
        entry = {
            "version": cache.version,
            "engine": cache.engine,
            "job": _payload(spec),
            "result": {"migrated": True},
        }
        with open(flat, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) == {"migrated": True}
        assert cache.migrated == 1
        assert not os.path.exists(flat)
        assert os.path.exists(
            os.path.join(str(tmp_path), key[:2], f"{key}.json")
        )
        # And the migrated entry keeps answering.
        assert cache.get(key) == {"migrated": True}
        assert cache.migrated == 1

    def test_migrate_sweeps_every_flat_entry(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        keys = []
        for i in range(5):
            payload = _payload(spec, iterations=i + 1)
            key = cache.key_for(payload)
            keys.append(key)
            entry = {
                "version": cache.version,
                "engine": cache.engine,
                "job": payload,
                "result": {"i": i},
            }
            with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as f:
                json.dump(entry, f)
        assert cache.migrate() == 5
        assert cache.migrated == 5
        for i, key in enumerate(keys):
            assert cache.get(key) == {"i": i}
        # Nothing flat remains; len counts the sharded entries.
        assert not [
            n for n in os.listdir(str(tmp_path)) if n.endswith(".json")
        ]
        assert len(cache) == 5

    def test_len_counts_flat_and_sharded(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        sharded_key = cache.key_for(_payload(spec))
        cache.put(sharded_key, _payload(spec), {"a": 1})
        flat_key = cache.key_for(_payload(spec, iterations=99))
        with open(os.path.join(str(tmp_path), f"{flat_key}.json"), "w") as f:
            json.dump({"version": cache.version, "engine": cache.engine,
                       "job": {}, "result": {}}, f)
        assert len(cache) == 2

    def test_corrupt_shard_entry_quarantines_into_shard(self, tmp_path, spec):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(_payload(spec))
        with open(cache.path_for(key), "w") as handle:
            handle.write("{ torn")
        assert cache.get(key) is None
        assert os.path.exists(
            os.path.join(str(tmp_path), "corrupt", key[:2], f"{key}.json")
        )

    def test_shard_prefix_distributes(self, tmp_path, spec):
        # Distinct payloads land in (typically) distinct shards; the
        # mapping is pure prefix, so it never depends on insert order.
        cache = ResultCache(str(tmp_path))
        shards = set()
        for i in range(16):
            key = cache.key_for(_payload(spec, iterations=i + 1))
            shards.add(ResultCache.shard_of(key))
            assert ResultCache.shard_of(key) == key[:2]
        assert len(shards) > 1
