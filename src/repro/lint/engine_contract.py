"""``engine-contract`` — the model/engine split, statically enforced.

Two obligations come with the swappable-engine architecture
(:mod:`repro.engines`, ``docs/engines.md``):

* **surface completeness** — every name in
  :data:`repro.core.platform.ENGINE_NAMES` is registered, and every
  registered engine implements the full :class:`ISimEngine` surface
  (``name``, ``version``, ``capabilities``, ``available``, ``run``,
  ``fingerprint``).  A partial engine would fail at first use; this
  rule fails it at lint time, with the finding anchored to the class
  definition.
* **import direction** — model code never imports the engines package.
  The dependency is strictly one-way (engines import the model); a
  model module reaching into ``repro.engines`` would make the "exact
  engine reproduces the kernel byte-for-byte" claim circular and would
  reintroduce the coupling the split removed.  The experiment layer
  (``exp/``), the CLI (``__main__``) and this lint suite are the
  sanctioned consumers.
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterable, List, Tuple

from .core import AstRule, Finding, ModuleSource, Project, register

__all__ = ["EngineContractRule", "validate_engine_surface"]

#: methods/attributes every engine must provide
REQUIRED_SURFACE = ("name", "version", "capabilities", "available", "run",
                    "fingerprint")

#: path fragments allowed to import repro.engines (POSIX, relative to
#: src/repro); everything else in the package is model code
_ENGINE_CONSUMERS = ("engines/", "exp/", "lint/", "__main__")


def validate_engine_surface() -> List[Tuple[str, int, str]]:
    """Problems with the engine registry ([] = sound).

    Returns ``(path, line, message)`` tuples anchored to the offending
    class definitions, importing the live registry so a stub that
    merely parses cannot pass.
    """
    from ..core.platform import ENGINE_NAMES
    from ..engines.interfaces import EngineCapabilities, ISimEngine
    from ..engines.registry import _REGISTRY, engine_names

    problems: List[Tuple[str, int, str]] = []

    def anchor(obj) -> Tuple[str, int]:
        try:
            path = inspect.getsourcefile(type(obj)) or "engines/registry.py"
            line = inspect.getsourcelines(type(obj))[1]
        except (OSError, TypeError):  # pragma: no cover - C extension
            return "engines/registry.py", 1
        marker = "repro/"
        cut = path.rfind(marker)
        return (path[cut + len(marker):] if cut >= 0 else path), line

    registered = tuple(engine_names())
    if registered != tuple(ENGINE_NAMES):
        problems.append((
            "engines/registry.py", 1,
            f"engine registry {registered} does not match "
            f"platform.ENGINE_NAMES {tuple(ENGINE_NAMES)}",
        ))
    for name, engine in _REGISTRY.items():
        path, line = anchor(engine)
        if not isinstance(engine, ISimEngine):
            problems.append((path, line,
                             f"engine {name!r} is not an ISimEngine"))
            continue
        for attr in REQUIRED_SURFACE:
            member = getattr(engine, attr, None)
            if member is None:
                problems.append((
                    path, line,
                    f"engine {name!r} lacks required member {attr!r}",
                ))
            elif attr not in ("name", "version") and not callable(member):
                problems.append((
                    path, line,
                    f"engine {name!r}: {attr!r} must be callable",
                ))
        if getattr(engine, "name", None) != name:
            problems.append((
                path, line,
                f"engine registered as {name!r} reports name "
                f"{getattr(engine, 'name', None)!r}",
            ))
        version = getattr(engine, "version", None)
        if not isinstance(version, int) or version < 1:
            problems.append((
                path, line,
                f"engine {name!r}: version must be a positive int, "
                f"got {version!r}",
            ))
        try:
            caps = engine.capabilities()
        except Exception as exc:  # noqa: BLE001 - report, don't crash lint
            problems.append((path, line,
                             f"engine {name!r}: capabilities() raised {exc!r}"))
            continue
        if not isinstance(caps, EngineCapabilities):
            problems.append((
                path, line,
                f"engine {name!r}: capabilities() returned "
                f"{type(caps).__name__}, not EngineCapabilities",
            ))
        fp = engine.fingerprint()
        if not {"name", "version"} <= set(fp):
            problems.append((
                path, line,
                f"engine {name!r}: fingerprint() must carry name and "
                f"version (cache keys depend on them), got {sorted(fp)}",
            ))
    return problems


@register
class EngineContractRule(AstRule):
    """Engines implement the full surface; model code never imports them."""

    id = "engine-contract"
    description = (
        "every registered engine implements the full ISimEngine surface "
        "and model code never imports repro.engines"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        # Surface completeness: only meaningful when linting the real
        # package (a partial path selection may not include engines/).
        if project.module("engines/registry.py") is not None:
            for path, line, message in validate_engine_surface():
                yield self.finding(path, line, message)
        yield from super().check(project)

    def visit_module(self, module: ModuleSource) -> Iterable[Finding]:
        if any(fragment in module.path for fragment in _ENGINE_CONSUMERS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.engines" or alias.name.startswith(
                        "repro.engines."
                    ):
                        yield self._import_finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level == 0 and (
                    target == "repro.engines"
                    or target.startswith("repro.engines.")
                ):
                    yield self._import_finding(module, node, target)
                elif node.level > 0 and (
                    target == "engines" or target.startswith("engines.")
                ):
                    yield self._import_finding(module, node, "." * node.level + target)

    def _import_finding(self, module: ModuleSource, node: ast.AST, name: str) -> Finding:
        return self.finding(
            module.path, node.lineno,
            f"model code imports engine internals ({name}); the "
            "dependency is one-way — engines import the model, never "
            "the reverse",
        )
