"""Exit-code and round-trip tests for ``python -m repro fuzz``."""

import json

import pytest

from repro.__main__ import main
from repro.fuzz import cli as fuzz_cli
from repro.fuzz.campaign import CampaignResult
from repro.fuzz.case import FuzzCase, run_case

VIOLATING_DICT = FuzzCase(
    seed=0,
    protocols=("MESI", "MEI"),
    wrapped=False,
    workload={
        "kind": "racy", "n": 20, "seed": 1,
        "footprint_words": 4, "write_ratio": 0.5,
    },
).to_dict()


def write_reproducer(path, case_dict, result=None):
    payload = {"case": case_dict}
    if result is not None:
        payload["result"] = result
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return str(path)


class TestRun:
    def test_clean_campaign_exits_0(self, capsys, tmp_path):
        code = main([
            "fuzz", "run", "--seed", "13", "--cases", "5",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign seed=13" in out
        assert "OK" in out
        assert (tmp_path / "results.jsonl").exists()

    def test_resume_shows_in_summary(self, capsys, tmp_path):
        argv = ["fuzz", "run", "--seed", "13", "--cases", "5",
                "--out", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "5 resumed" in capsys.readouterr().out

    def test_unexpected_campaign_exits_1(self, capsys, monkeypatch):
        fake = CampaignResult(seed=0, n_cases=1)
        fake.counts = {"error": 1}
        fake.unexpected = [{
            "index": 0, "case": VIOLATING_DICT,
            "result": {"outcome": "error", "allowed": ["clean"]},
            "reproducer": None,
        }]
        monkeypatch.setattr(
            fuzz_cli, "run_campaign", lambda config, progress=None: fake
        )
        assert main(["fuzz", "run", "--cases", "1"]) == 1
        assert "UNEXPECTED" in capsys.readouterr().out

    def test_bad_cases_count_exits_2(self, capsys):
        assert main(["fuzz", "run", "--cases", "0"]) == 2
        assert "n_cases" in capsys.readouterr().err


class TestRepro:
    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["fuzz", "repro", str(tmp_path / "nope.json")]) == 2

    def test_invalid_json_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["fuzz", "repro", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, capsys, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"hello": 1}', encoding="utf-8")
        assert main(["fuzz", "repro", str(path)]) == 2

    def test_reproducer_replays_byte_identically(self, capsys, tmp_path):
        recorded = run_case(FuzzCase.from_dict(VIOLATING_DICT)).to_dict()
        path = write_reproducer(
            tmp_path / "case.json", VIOLATING_DICT, recorded
        )
        assert main(["fuzz", "repro", path]) == 0
        assert "reproduced byte-identically" in capsys.readouterr().out

    def test_stale_reproducer_exits_1(self, capsys, tmp_path):
        path = write_reproducer(
            tmp_path / "case.json", VIOLATING_DICT,
            {"outcome": "deadlock", "detail": "never happened"},
        )
        assert main(["fuzz", "repro", path]) == 1
        assert "DOES NOT REPRODUCE" in capsys.readouterr().err

    def test_bare_case_dict_is_accepted(self, capsys, tmp_path):
        path = write_reproducer(tmp_path / "bare.json", VIOLATING_DICT)
        # No recorded result: exit reflects expected/unexpected. An
        # unwrapped incompatible pair violating is expected -> 0.
        assert main(["fuzz", "repro", path]) == 0
        assert "violation" in capsys.readouterr().out


class TestShrink:
    def test_clean_case_exits_2(self, capsys, tmp_path):
        clean = FuzzCase(
            seed=0, workload={"kind": "producer-consumer", "n_items": 3}
        ).to_dict()
        path = write_reproducer(tmp_path / "clean.json", clean)
        assert main(["fuzz", "shrink", path]) == 2
        assert "nothing to shrink" in capsys.readouterr().err

    def test_shrinks_and_writes_round_trippable_output(
        self, capsys, tmp_path
    ):
        path = write_reproducer(tmp_path / "case.json", VIOLATING_DICT)
        out = tmp_path / "shrunk.json"
        assert main(["fuzz", "shrink", path, "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "shrunk" in stdout
        with open(out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["result"]["outcome"] == "violation"
        # The shrunk artefact is itself a valid reproducer: replaying
        # it through the CLI reproduces the recorded outcome.
        assert main(["fuzz", "repro", str(out)]) == 0


class TestParser:
    def test_missing_action_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz"])
        assert exc.value.code == 2
