"""Tests for the fabric study suite."""

from repro.exp.fabrics import (
    FABRICS,
    check_regression,
    render_comparison,
    run_point,
    run_suite,
)


class TestRunPoint:
    def test_deterministic(self):
        a = run_point(4, "directory")
        b = run_point(4, "directory")
        assert a == b

    def test_point_shape(self):
        point = run_point(2, "split")
        assert point["masters"] == 2
        assert point["fabric"] == "split"
        assert point["elapsed_ns"] > 0
        assert point["bus_txns"] > 0
        assert point["busy_ticks"] > 0
        assert point["grant_spread"] >= 1.0

    def test_split_traffic_matches_atomic(self):
        # The coherence-identity invariant the suite documents: the
        # split bus moves timing only, never traffic volume.
        atomic = run_point(4, "atomic", accesses_per_master=12)
        split = run_point(4, "split", accesses_per_master=12)
        assert split["bus_txns"] == atomic["bus_txns"]
        assert split["elapsed_ns"] < atomic["elapsed_ns"]


class TestSuite:
    def test_quick_suite_covers_all_fabrics(self):
        doc = run_suite(quick=True, master_counts=(2,), accesses_per_master=8)
        assert {p["fabric"] for p in doc["points"]} == set(FABRICS)
        assert doc["schema"] == 1
        assert doc["suite"] == "fabrics"

    def test_regression_check_exact_by_default(self):
        doc = run_suite(master_counts=(2,), accesses_per_master=8)
        assert check_regression(doc, doc) == []
        drifted = {
            **doc,
            "points": [
                {**p, "elapsed_ns": p["elapsed_ns"] + 1}
                for p in doc["points"]
            ],
        }
        failures = check_regression(drifted, doc)
        assert len(failures) == len(doc["points"])

    def test_render_mentions_every_fabric_and_the_headline(self):
        doc = run_suite(master_counts=(2,), accesses_per_master=8)
        text = render_comparison(doc, doc)
        for fabric in FABRICS:
            assert fabric in text
        assert "1.00x baseline" in text
        assert "headline" in text
