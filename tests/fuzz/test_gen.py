"""Tests for the seeded case generator."""

from repro.fuzz.case import FUZZ_PROTOCOLS, allowed_outcomes
from repro.fuzz.gen import CaseGenerator


class TestDeterminism:
    def test_same_seed_same_cases(self):
        a = CaseGenerator(seed=11)
        b = CaseGenerator(seed=11)
        for index in range(50):
            assert a.case(index) == b.case(index)

    def test_different_seeds_differ(self):
        a = CaseGenerator(seed=1)
        b = CaseGenerator(seed=2)
        assert any(a.case(i) != b.case(i) for i in range(20))

    def test_index_stable_regardless_of_order(self):
        """Case i never depends on which cases were generated before."""
        gen = CaseGenerator(seed=7)
        forward = [gen.case(i) for i in range(30)]
        backward = [gen.case(i) for i in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_cases_iterator_matches_case(self):
        gen = CaseGenerator(seed=3)
        assert list(gen.cases(10, start=5)) == [
            gen.case(i) for i in range(5, 15)
        ]


class TestSampledSpace:
    def test_only_integrable_protocols(self):
        gen = CaseGenerator(seed=0)
        for case in gen.cases(200):
            if case.scenario != "trace":
                continue
            for name in case.protocols:
                assert name in FUZZ_PROTOCOLS

    def test_dragon_only_pairs_with_itself(self):
        gen = CaseGenerator(seed=0)
        saw_dragon = False
        for case in gen.cases(400):
            if case.scenario != "trace":
                continue
            if "DRAGON" in case.protocols:
                saw_dragon = True
                assert case.protocols == ("DRAGON", "DRAGON")
        assert saw_dragon

    def test_mix_covers_all_dimensions(self):
        gen = CaseGenerator(seed=0)
        cases = list(gen.cases(300))
        assert any(c.scenario == "deadlock" for c in cases)
        traces = [c for c in cases if c.scenario == "trace"]
        assert any(not c.wrapped for c in traces)
        assert any(c.fault is not None for c in traces)
        kinds = {c.workload["kind"] for c in traces}
        assert kinds == {
            "racy", "false-sharing", "lock-contention", "hotspot",
            "producer-consumer",
        }

    def test_probabilities_are_honoured_at_extremes(self):
        all_deadlock = CaseGenerator(seed=0, p_deadlock=1.0)
        assert all(c.scenario == "deadlock" for c in all_deadlock.cases(20))
        no_extras = CaseGenerator(
            seed=0, p_deadlock=0.0, p_unwrapped=0.0, p_fault=0.0
        )
        for case in no_extras.cases(20):
            assert case.scenario == "trace"
            assert case.wrapped
            assert case.fault is None

    def test_every_case_has_an_oracle(self):
        """allowed_outcomes never raises on a generated case."""
        gen = CaseGenerator(seed=99)
        for case in gen.cases(200):
            allowed = allowed_outcomes(case)
            assert allowed
            assert "clean" in allowed or case.solution == "none"

    def test_generated_cases_round_trip(self):
        from repro.fuzz.case import FuzzCase

        gen = CaseGenerator(seed=5)
        for case in gen.cases(50):
            assert FuzzCase.from_dict(case.to_dict()) == case


class TestNMasters:
    """The generator scales to N masters without disturbing the n=2
    stream (committed reproducer files replay byte-identically)."""

    def test_two_master_stream_fingerprint(self):
        # A frozen fingerprint of seed=42: if this changes, every
        # committed reproducer generated before the change is invalid.
        gen = CaseGenerator(seed=42)
        digest = [
            (c.scenario, c.protocols, c.workload.get("kind"))
            for c in gen.cases(6)
        ]
        assert digest == [
            ("trace", ("MEI", "MSI"), "producer-consumer"),
            ("trace", ("MEI", "MSI"), "lock-contention"),
            ("trace", ("DRAGON", "DRAGON"), "producer-consumer"),
            ("trace", ("MOESI", "MESI"), "producer-consumer"),
            ("trace", ("DRAGON", "DRAGON"), "producer-consumer"),
            ("trace", ("DRAGON", "DRAGON"), "lock-contention"),
        ]

    def test_index_stability_at_n4_and_n8(self):
        for n in (4, 8):
            gen = CaseGenerator(seed=13, n_masters=n)
            forward = [gen.case(i) for i in range(30)]
            backward = [gen.case(i) for i in reversed(range(30))]
            assert forward == list(reversed(backward))

    def test_per_master_tuples_sized_to_n(self):
        gen = CaseGenerator(seed=4, n_masters=5)
        saw_trace = False
        for case in gen.cases(40):
            if case.scenario != "trace":
                continue
            saw_trace = True
            assert len(case.protocols) == 5
            assert len(case.cache_sizes) == 5
            assert len(case.cache_ways) == 5
        assert saw_trace

    def test_dragon_still_homogeneous_at_n4(self):
        gen = CaseGenerator(seed=0, n_masters=4)
        saw_dragon = False
        for case in gen.cases(600):
            if case.scenario == "trace" and "DRAGON" in case.protocols:
                saw_dragon = True
                assert case.protocols == ("DRAGON",) * 4
        assert saw_dragon

    def test_n_master_cases_round_trip(self):
        from repro.fuzz.case import FuzzCase

        gen = CaseGenerator(seed=5, n_masters=8)
        for case in gen.cases(40):
            assert FuzzCase.from_dict(case.to_dict()) == case

    def test_workload_procs_follow_master_count(self):
        gen = CaseGenerator(seed=9, n_masters=4, p_deadlock=0.0)
        for case in gen.cases(40):
            if case.workload["kind"] == "producer-consumer":
                continue  # inherently a two-party workload
            assert case.workload.get("procs") == 4

    def test_fewer_than_two_masters_rejected(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CaseGenerator(seed=0, n_masters=1)
