"""Unit tests for the hardware lock register."""

import pytest

from repro.core import LockRegister
from repro.errors import BusError

BASE = 0x5000_0000


class TestSemantics:
    def test_read_acquires(self):
        lock = LockRegister(BASE)
        assert lock.read_word(BASE) == 0  # old value: was free
        assert lock.is_held()

    def test_second_read_rejected(self):
        lock = LockRegister(BASE)
        lock.read_word(BASE)
        assert lock.read_word(BASE) == 1
        assert lock.rejections == 1

    def test_zero_write_releases(self):
        lock = LockRegister(BASE)
        lock.read_word(BASE)
        lock.write_word(BASE, 0)
        assert not lock.is_held()
        assert lock.releases == 1

    def test_acquire_release_acquire(self):
        lock = LockRegister(BASE)
        lock.read_word(BASE)
        lock.write_word(BASE, 0)
        assert lock.read_word(BASE) == 0
        assert lock.acquisitions == 2

    def test_nonzero_write_sets(self):
        lock = LockRegister(BASE)
        lock.write_word(BASE, 1)
        assert lock.is_held()


class TestAddressing:
    def test_multiple_locks(self):
        lock = LockRegister(BASE, n_locks=3)
        assert lock.lock_addr(2) == BASE + 8
        lock.read_word(BASE + 8)
        assert lock.is_held(2)
        assert not lock.is_held(0)

    def test_out_of_range_rejected(self):
        lock = LockRegister(BASE, n_locks=1)
        with pytest.raises(BusError):
            lock.read_word(BASE + 4)
        with pytest.raises(BusError):
            lock.lock_addr(1)

    def test_unaligned_rejected(self):
        lock = LockRegister(BASE, n_locks=2)
        with pytest.raises(BusError):
            lock.read_word(BASE + 2)

    def test_zero_locks_rejected(self):
        with pytest.raises(BusError):
            LockRegister(BASE, n_locks=0)
