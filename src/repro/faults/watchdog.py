"""Deadlock / livelock watchdog.

A :class:`Watchdog` rides a platform as a daemon process and samples
per-master progress heartbeats every ``check_interval_ns``.  The
heartbeat is :attr:`~repro.cpu.core.Core.mainline_retired` — retires
*outside* interrupt service — so a core spinning in its snoop-service
ISR (stale TAG-CAM entry, wedged drain) still counts as stuck.  When a
non-halted master's heartbeat is flat for ``stall_threshold_ns`` the
watchdog aborts the run with a structured :class:`WatchdogReport`
instead of letting the simulation hang or burn events forever.

Deadlock vs livelock is decided by what happened *during* the stall
window: if bus grants or instruction retires kept climbing while the
stalled master made no mainline progress, something is spinning
(livelock, :class:`~repro.errors.LivelockError`); if nothing moved at
all it is a true deadlock (:class:`~repro.errors.DeadlockError`, the
paper's Fig 4 scenario).  Both carry the report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ConfigError, DeadlockError, LivelockError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.platform import Platform

__all__ = ["WatchdogConfig", "WatchdogReport", "MasterState", "Watchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the progress watchdog."""

    #: how often heartbeats are sampled (simulated ns)
    check_interval_ns: int = 25_000
    #: a flat heartbeat for this long aborts the run (simulated ns)
    stall_threshold_ns: int = 200_000
    #: how many tail trace records the diagnostic dump keeps
    dump_records: int = 32

    def __post_init__(self):
        if self.check_interval_ns < 1:
            raise ConfigError("watchdog check_interval_ns must be >= 1")
        if self.stall_threshold_ns < self.check_interval_ns:
            raise ConfigError(
                "watchdog stall_threshold_ns must be >= check_interval_ns"
            )
        if self.dump_records < 0:
            raise ConfigError("watchdog dump_records must be >= 0")

    def with_(self, **changes) -> "WatchdogConfig":
        """A modified copy."""
        return replace(self, **changes)


@dataclass
class MasterState:
    """One master's progress snapshot inside a :class:`WatchdogReport`."""

    name: str
    halted: bool
    in_isr: bool
    retired: int
    mainline_retired: int
    stalled_ns: int
    #: what the master is (apparently) stuck on, human-readable
    waiting: str

    def describe(self) -> str:
        """One-line rendering for reports."""
        flags = []
        if self.halted:
            flags.append("halted")
        if self.in_isr:
            flags.append("in-isr")
        text = (
            f"{self.name}: retired={self.retired} "
            f"mainline={self.mainline_retired} stalled={self.stalled_ns}ns"
        )
        if flags:
            text += " [" + ",".join(flags) + "]"
        if self.waiting:
            text += f" — {self.waiting}"
        return text


@dataclass
class WatchdogReport:
    """Structured diagnostic dump produced when the watchdog fires."""

    time: int
    kind: str  # "deadlock" | "livelock"
    masters: List[MasterState]
    #: live bus tenures (TenureState.describe() lines)
    tenures: List[str]
    #: arbiter holder / grant count / queued masters per band
    arbiter: dict
    #: coherent masters' queued-but-incomplete snoop pushes
    pending_drains: Dict[str, int]
    #: snoop logics' queued + in-flight service requests (line addresses)
    snoop_pending: Dict[str, dict]
    #: ARTRY counts of the in-flight transactions, per master
    retry_counts: Dict[str, int]
    #: armed fault injectors with their fire counts
    faults: List[str]
    #: formatted tail of the trace buffer
    trace_tail: List[str]

    @property
    def stalled(self) -> List[MasterState]:
        """The masters whose heartbeat tripped the threshold."""
        return [m for m in self.masters if m.stalled_ns > 0 and not m.halted]

    def blockage_summary(self) -> str:
        """One sentence per blocked master: who, and waiting on what."""
        parts = [
            f"{m.name} blocked for {m.stalled_ns}ns "
            f"({m.waiting or 'no bus transaction in flight'})"
            for m in self.stalled
        ]
        return f"{self.kind} at t={self.time}: " + "; ".join(parts)

    def render(self) -> str:
        """The full multi-line diagnostic dump."""
        lines = [f"=== watchdog {self.kind} report @t={self.time} ==="]
        lines.append(self.blockage_summary())
        lines.append("masters:")
        lines.extend(f"  {m.describe()}" for m in self.masters)
        lines.append("in-flight bus tenures:")
        lines.extend(f"  {t}" for t in self.tenures or ["  (none)"])
        queued = ", ".join(
            f"{band}=[{','.join(masters)}]"
            for band, masters in self.arbiter.get("queued", {}).items()
            if masters
        )
        lines.append(
            f"arbiter: holder={self.arbiter.get('holder')} "
            f"grants={self.arbiter.get('grants')} queued: {queued or '(empty)'}"
        )
        if self.retry_counts:
            lines.append(
                "retry counts: "
                + ", ".join(f"{m}={n}" for m, n in sorted(self.retry_counts.items()))
            )
        for master, count in sorted(self.pending_drains.items()):
            if count:
                lines.append(f"pending drains: {master}={count}")
        for master, pending in sorted(self.snoop_pending.items()):
            if pending["queued"] or pending["inflight"]:
                lines.append(
                    f"snoop service {master}: queued="
                    + str([hex(a) for a in pending["queued"]])
                    + " inflight="
                    + str([hex(a) for a in pending["inflight"]])
                )
        if self.faults:
            lines.append("armed faults:")
            lines.extend(f"  {f}" for f in self.faults)
        if self.trace_tail:
            lines.append(f"last {len(self.trace_tail)} trace records:")
            lines.extend(f"  {r}" for r in self.trace_tail)
        return "\n".join(lines)


class _Beat:
    """Heartbeat tracking for one master."""

    __slots__ = ("count", "since", "grants", "retired_total")

    def __init__(self, count: int, since: int, grants: int, retired_total: int):
        self.count = count
        self.since = since
        self.grants = grants
        self.retired_total = retired_total


class Watchdog:
    """Per-master progress monitor; aborts wedged or spinning runs."""

    def __init__(self, platform: "Platform", config: Optional[WatchdogConfig] = None):
        self.platform = platform
        self.config = config or WatchdogConfig()
        self._beats: Dict[str, _Beat] = {}
        self._process = None
        #: set when the watchdog aborted the run
        self.report: Optional[WatchdogReport] = None

    def start(self) -> None:
        """Spawn the sampling daemon (idempotent)."""
        if self._process is None:
            self._process = self.platform.sim.process(
                self._watch(), name="watchdog", daemon=True
            )

    # -- sampling -----------------------------------------------------------
    def _watch(self):
        sim = self.platform.sim
        interval = self.config.check_interval_ns
        while True:
            yield sim.timeout(interval)
            self._check()

    def _totals(self) -> Tuple[int, int]:
        grants = self.platform.bus.arbiter.grants
        retired = sum(core.retired for core in self.platform.cores)
        return grants, retired + self.platform.bus.completions

    def _check(self) -> None:
        platform = self.platform
        now = platform.sim.now
        grants, retired_total = self._totals()
        stalled: List[Tuple[str, _Beat]] = []
        for core in platform.cores:
            if core.process is None:
                continue
            beat = self._beats.get(core.name)
            current = core.mainline_retired
            if beat is None or beat.count != current or core.halted:
                self._beats[core.name] = _Beat(current, now, grants, retired_total)
                continue
            if now - beat.since >= self.config.stall_threshold_ns:
                stalled.append((core.name, beat))
        if not stalled:
            return
        # Livelock iff the system kept doing *something* (grants, ISR
        # retires, tenure completions) after the last master froze; the
        # earliest stall start would see the later masters' final
        # retires and misread a true deadlock as a livelock.
        reference = max((beat for _, beat in stalled), key=lambda b: b.since)
        moved = (
            grants != reference.grants or retired_total != reference.retired_total
        )
        kind = "livelock" if moved else "deadlock"
        report = self.build_report(kind, {name: now - b.since for name, b in stalled})
        self.report = report
        detail = report.blockage_summary()
        if kind == "livelock":
            raise LivelockError(detail, report=report)
        raise DeadlockError(detail, report=report)

    # -- reporting ----------------------------------------------------------
    def _waiting_description(self, core) -> str:
        platform = self.platform
        tenures = [
            t for t in platform.bus.inflight_tenures() if t.master == core.name
        ]
        if tenures:
            return "; ".join(t.describe() for t in tenures)
        index = platform.index_of(core.name)
        logic = platform.snoop_logics[index]
        if logic is not None and (core.fiq.asserted or logic.pending):
            return (
                f"no bus transaction; nFIQ "
                f"{'asserted' if core.fiq.asserted else 'clear'}, "
                f"{logic.pending} pending snoop-service request(s)"
            )
        wrapper = platform.wrappers[index]
        if wrapper is not None and wrapper.pending_drains:
            return f"no bus transaction; {wrapper.pending_drains} queued drain(s)"
        return ""

    def build_report(
        self, kind: str, stalled_ns: Optional[Dict[str, int]] = None
    ) -> WatchdogReport:
        """Snapshot the platform into a :class:`WatchdogReport`.

        ``stalled_ns`` maps master names to how long their heartbeat has
        been flat; omitted masters report 0.
        """
        platform = self.platform
        stalled_ns = stalled_ns or {}
        masters = [
            MasterState(
                name=core.name,
                halted=core.halted,
                in_isr=core.in_isr,
                retired=core.retired,
                mainline_retired=core.mainline_retired,
                stalled_ns=stalled_ns.get(core.name, 0),
                waiting=self._waiting_description(core),
            )
            for core in platform.cores
        ]
        tenures = platform.bus.inflight_tenures()
        snoop_pending = {}
        pending_drains = {}
        for index, core in enumerate(platform.cores):
            logic = platform.snoop_logics[index]
            if logic is not None:
                snoop_pending[core.name] = {
                    "queued": list(logic._queue),
                    "inflight": sorted(logic._inflight),
                }
            wrapper = platform.wrappers[index]
            if wrapper is not None:
                pending_drains[core.name] = wrapper.pending_drains
        engine = getattr(platform, "fault_engine", None)
        tail = list(platform.tracer.records)[-self.config.dump_records :]
        return WatchdogReport(
            time=platform.sim.now,
            kind=kind,
            masters=masters,
            tenures=[t.describe() for t in tenures],
            arbiter=platform.bus.arbiter.snapshot(),
            pending_drains=pending_drains,
            snoop_pending=snoop_pending,
            retry_counts={t.master: t.retries for t in tenures if t.retries},
            faults=engine.summary() if engine is not None else [],
            trace_tail=[r.format() for r in tail],
        )
