"""Mutation-style fixtures: every rule fires on the violation and stays
silent on the fixed twin."""

import textwrap

from repro.lint.core import run_rules


def _run(make_project, files, rules):
    return run_rules(make_project(files), rules)


class TestDeterminism:
    def test_set_literal_iteration_fires(self, make_project):
        src = "for master in {'m0', 'm1'}:\n    print(master)\n"
        findings = _run(make_project, {"core/x.py": src}, ["determinism"])
        assert [f.rule for f in findings] == ["determinism"]
        assert "set" in findings[0].message

    def test_set_variable_iteration_fires(self, make_project):
        src = textwrap.dedent(
            """
            pending = set()
            for item in pending:
                print(item)
            """
        )
        findings = _run(make_project, {"core/x.py": src}, ["determinism"])
        assert len(findings) == 1

    def test_annotated_self_attr_iteration_fires(self, make_project):
        src = textwrap.dedent(
            """
            from typing import Set

            class Logic:
                def __init__(self):
                    self._cam: Set[int] = set()

                def report(self):
                    return [hex(a) for a in self._cam]
            """
        )
        findings = _run(make_project, {"core/x.py": src}, ["determinism"])
        assert len(findings) == 1

    def test_sorted_iteration_is_silent(self, make_project):
        src = textwrap.dedent(
            """
            pending = set()
            for item in sorted(pending):
                print(item)
            values = sorted(x.value for x in pending)
            """
        )
        assert _run(make_project, {"core/x.py": src}, ["determinism"]) == []

    def test_id_sort_key_fires_and_stable_key_is_silent(self, make_project):
        bad = "items.sort(key=id)\nordered = sorted(items, key=lambda t: id(t))\n"
        good = "items.sort(key=lambda t: t.name)\n"
        assert len(_run(make_project, {"core/x.py": bad}, ["determinism"])) == 2
        assert _run(make_project, {"core/x.py": good}, ["determinism"]) == []

    def test_id_as_dict_key_is_silent(self, make_project):
        src = "inflight = {}\ninflight[id(txn)] = txn\n"
        assert _run(make_project, {"core/x.py": src}, ["determinism"]) == []

    def test_global_random_fires_and_seeded_instance_is_silent(self, make_project):
        bad = "import random\njitter = random.random()\n"
        good = "import random\nrng = random.Random(42)\njitter = rng.random()\n"
        findings = _run(make_project, {"core/x.py": bad}, ["determinism"])
        assert len(findings) == 1 and "unseeded" in findings[0].message
        assert _run(make_project, {"core/x.py": good}, ["determinism"]) == []

    def test_wall_clock_fires_but_not_in_exp(self, make_project):
        src = "import time\nstart = time.perf_counter()\n"
        assert len(_run(make_project, {"core/x.py": src}, ["determinism"])) == 1
        assert _run(make_project, {"exp/runner.py": src}, ["determinism"]) == []


class TestSlots:
    def test_unslotted_class_in_hot_module_fires(self, make_project):
        src = "class Event:\n    def __init__(self):\n        self.x = 1\n"
        findings = _run(make_project, {"sim/kernel.py": src}, ["slots"])
        assert [f.rule for f in findings] == ["slots"]

    def test_slotted_class_is_silent(self, make_project):
        src = "class Event:\n    __slots__ = ('x',)\n"
        assert _run(make_project, {"sim/kernel.py": src}, ["slots"]) == []

    def test_slots_dataclass_is_silent(self, make_project):
        src = textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Record:
                x: int
            """
        )
        assert _run(make_project, {"sim/tracing.py": src}, ["slots"]) == []

    def test_dataclass_without_slots_fires(self, make_project):
        src = textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass
            class Record:
                x: int
            """
        )
        assert len(_run(make_project, {"sim/tracing.py": src}, ["slots"])) == 1

    def test_enum_and_exception_are_exempt(self, make_project):
        src = textwrap.dedent(
            """
            from enum import Enum

            class State(Enum):
                A = 1

            class KernelError(Exception):
                pass
            """
        )
        assert _run(make_project, {"sim/kernel.py": src}, ["slots"]) == []

    def test_cold_module_is_ignored(self, make_project):
        src = "class Anything:\n    pass\n"
        assert _run(make_project, {"analysis/report.py": src}, ["slots"]) == []


class TestTraceGuard:
    def test_unguarded_emit_on_cached_channel_fires(self, make_project):
        src = textwrap.dedent(
            """
            class Controller:
                def load(self, addr):
                    trace = self._trace_cpu
                    trace.emit(self.sim.now, self.name, "load", addr=addr)
            """
        )
        findings = _run(make_project, {"cache/controller.py": src}, ["trace-guard"])
        assert [f.rule for f in findings] == ["trace-guard"]

    def test_guarded_emit_is_silent(self, make_project):
        src = textwrap.dedent(
            """
            class Controller:
                def load(self, addr):
                    trace = self._trace_cpu
                    if trace.enabled:
                        trace.emit(self.sim.now, self.name, "load", addr=addr)
            """
        )
        assert _run(make_project, {"cache/controller.py": src}, ["trace-guard"]) == []

    def test_direct_channel_call_emit_fires(self, make_project):
        src = textwrap.dedent(
            """
            def go(tracer):
                tracer.channel("bus").emit(0, "m0", "grant")
            """
        )
        assert len(_run(make_project, {"bus/asb.py": src}, ["trace-guard"])) == 1

    def test_guard_on_the_wrong_channel_fires(self, make_project):
        src = textwrap.dedent(
            """
            class Controller:
                def load(self, addr):
                    trace = self._trace_cpu
                    other = self._trace_bus
                    if other.enabled:
                        trace.emit(self.sim.now, self.name, "load", addr=addr)
            """
        )
        assert len(_run(make_project, {"cache/controller.py": src}, ["trace-guard"])) == 1

    def test_non_trace_emit_is_ignored(self, make_project):
        src = textwrap.dedent(
            """
            class Assembler:
                def li(self, rd, imm):
                    return self.emit(("LI", rd, imm))
            """
        )
        assert _run(make_project, {"cpu/assembler.py": src}, ["trace-guard"]) == []


class TestProcessYield:
    def test_bad_yield_after_primitive_fires(self, make_project):
        src = textwrap.dedent(
            """
            def worker(sim):
                yield sim.timeout(5)
                yield 5
            """
        )
        findings = _run(make_project, {"core/x.py": src}, ["process-yield"])
        assert [f.rule for f in findings] == ["process-yield"]
        assert "Constant" in findings[0].message

    def test_bare_yield_fires(self, make_project):
        src = textwrap.dedent(
            """
            def worker(sim):
                yield sim.timeout(5)
                yield
            """
        )
        findings = _run(make_project, {"core/x.py": src}, ["process-yield"])
        assert len(findings) == 1 and "bare yield" in findings[0].message

    def test_generator_registered_via_process_call_fires(self, make_project):
        src = textwrap.dedent(
            """
            def plain():
                yield (1, 2)

            def setup(sim):
                sim.process(plain())
            """
        )
        assert len(_run(make_project, {"core/x.py": src}, ["process-yield"])) == 1

    def test_yield_from_delegation_is_followed(self, make_project):
        src = textwrap.dedent(
            """
            def helper(sim):
                yield "oops"

            def worker(sim):
                yield sim.timeout(5)
                yield from helper(sim)
            """
        )
        findings = _run(make_project, {"core/x.py": src}, ["process-yield"])
        assert len(findings) == 1
        assert "helper" in findings[0].message

    def test_event_yields_are_silent(self, make_project):
        src = textwrap.dedent(
            """
            def worker(sim, bus):
                yield sim.timeout(5)
                grant = bus.arbiter.request("m0")
                yield grant
                yield sim.all_of([grant, sim.timeout(1)])
            """
        )
        assert _run(make_project, {"core/x.py": src}, ["process-yield"]) == []

    def test_plain_data_generator_is_ignored(self, make_project):
        src = textwrap.dedent(
            """
            def words(text):
                for w in text.split():
                    yield w
            """
        )
        assert _run(make_project, {"core/x.py": src}, ["process-yield"]) == []


WRAPPED = textwrap.dedent(
    """
    class InterruptLine:
        def assert_line(self):
            pass

        def deassert(self):
            pass

        def wait(self):
            pass

        def _internal(self):
            pass
    """
)


class TestFaultProxy:
    def test_getattr_without_wraps_fires(self, make_project):
        src = textwrap.dedent(
            """
            class _Proxy:
                def __getattr__(self, name):
                    return getattr(self._inner, name)
            """
        )
        findings = _run(
            make_project, {"faults/injectors.py": src}, ["fault-proxy"]
        )
        assert len(findings) == 1 and "_wraps" in findings[0].message

    def test_missing_public_method_fires(self, make_project):
        src = textwrap.dedent(
            """
            class _Proxy:
                _wraps = "repro.cpu.interrupts.InterruptLine"

                def assert_line(self):
                    pass

                def __getattr__(self, name):
                    return getattr(self._inner, name)
            """
        )
        findings = _run(
            make_project,
            {"faults/injectors.py": src, "cpu/interrupts.py": WRAPPED},
            ["fault-proxy"],
        )
        missing = sorted(f.message.split(";")[0] for f in findings)
        assert len(findings) == 2
        assert "deassert" in missing[0] and "wait" in missing[1]

    def test_full_coverage_is_silent(self, make_project):
        src = textwrap.dedent(
            """
            class _Proxy:
                _wraps = "repro.cpu.interrupts.InterruptLine"

                def assert_line(self):
                    pass

                def deassert(self):
                    pass

                def wait(self):
                    pass

                def __getattr__(self, name):
                    return getattr(self._inner, name)
            """
        )
        assert (
            _run(
                make_project,
                {"faults/injectors.py": src, "cpu/interrupts.py": WRAPPED},
                ["fault-proxy"],
            )
            == []
        )

    def test_unresolvable_wraps_fires(self, make_project):
        src = 'class _Proxy:\n    _wraps = "repro.nowhere.Nothing"\n'
        findings = _run(
            make_project, {"faults/injectors.py": src}, ["fault-proxy"]
        )
        assert len(findings) == 1 and "does not resolve" in findings[0].message

    def test_other_modules_are_ignored(self, make_project):
        src = textwrap.dedent(
            """
            class _Proxy:
                def __getattr__(self, name):
                    return getattr(self._inner, name)
            """
        )
        assert _run(make_project, {"core/wrapper.py": src}, ["fault-proxy"]) == []


class TestEngineContract:
    def test_absolute_import_in_model_code_fires(self, make_project):
        src = "import repro.engines\n"
        findings = _run(make_project, {"core/x.py": src}, ["engine-contract"])
        assert [f.rule for f in findings] == ["engine-contract"]
        assert "one-way" in findings[0].message

    def test_from_import_fires(self, make_project):
        src = "from repro.engines.batch import BatchEngine\n"
        findings = _run(make_project, {"cache/x.py": src}, ["engine-contract"])
        assert len(findings) == 1
        assert "repro.engines.batch" in findings[0].message

    def test_relative_import_fires(self, make_project):
        src = "from ..engines import get_engine\n"
        findings = _run(make_project, {"bus/x.py": src}, ["engine-contract"])
        assert len(findings) == 1
        assert "..engines" in findings[0].message

    def test_sanctioned_consumers_are_silent(self, make_project):
        src = "from repro.engines import get_engine\n"
        files = {
            "engines/x.py": src,
            "exp/x.py": src,
            "__main__.py": src,
        }
        assert _run(make_project, files, ["engine-contract"]) == []

    def test_model_import_of_the_model_is_silent(self, make_project):
        src = "from repro.core.platform import ENGINE_NAMES\n"
        assert _run(make_project, {"core/x.py": src}, ["engine-contract"]) == []


class TestFabricContract:
    def test_absolute_import_in_model_code_fires(self, make_project):
        src = "import repro.fabric\n"
        findings = _run(make_project, {"bus/x.py": src}, ["fabric-contract"])
        assert [f.rule for f in findings] == ["fabric-contract"]
        assert "one-way" in findings[0].message

    def test_from_import_fires(self, make_project):
        src = "from repro.fabric.split import SplitBus\n"
        findings = _run(make_project, {"cache/x.py": src}, ["fabric-contract"])
        assert len(findings) == 1
        assert "repro.fabric.split" in findings[0].message

    def test_relative_import_fires(self, make_project):
        src = "from ..fabric import make_fabric\n"
        findings = _run(make_project, {"bus/x.py": src}, ["fabric-contract"])
        assert len(findings) == 1
        assert "..fabric" in findings[0].message

    def test_sanctioned_consumers_are_silent(self, make_project):
        src = "from repro.fabric import make_fabric\n"
        files = {
            "fabric/x.py": src,
            "core/platform.py": src,
            "exp/x.py": src,
            "__main__.py": src,
        }
        assert _run(make_project, files, ["fabric-contract"]) == []

    def test_vocabulary_cycle_fires(self, make_project):
        # The fabric package must not import the platform back.
        src = "from ..core.platform import FABRIC_NAMES\n"
        findings = _run(
            make_project, {"fabric/x.py": src}, ["fabric-contract"]
        )
        assert len(findings) == 1
        assert "vocabulary" in findings[0].message

    def test_fabric_importing_the_bus_is_silent(self, make_project):
        src = "from ..bus.asb import AsbBus\n"
        files = {"fabric/x.py": src}
        assert _run(make_project, files, ["fabric-contract"]) == []

    def test_live_registry_surface_is_sound(self):
        from repro.lint.fabric_contract import validate_fabric_surface

        assert validate_fabric_surface() == []
