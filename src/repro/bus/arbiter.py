"""Bus arbitration.

The arbiter hands out exclusive bus tenures.  Requests carry a
:class:`~repro.bus.types.Priority`:

* ``DRAIN`` — snoop pushes (write-backs forced by a snoop hit).  The
  paper's platforms hand the bus to the snooping processor immediately
  after ARTRY (BOFF on the Intel486 side, ARTRY/BG on the PowerPC side);
  drains therefore always win.
* ``RETRY`` — a master re-issuing a transaction that was ARTRY'd.
* ``NORMAL`` — fresh requests.

The DRAIN and RETRY bands are always served FIFO: they carry
correctness-critical orderings.  The *service discipline* for fresh
(NORMAL) requests is the scale-out study knob (cf. arXiv:1004.3560,
which compares service disciplines on a shared-bus multiprocessor):

* :class:`FixedPriorityArbiter` — first-come-first-served (FCFS): FIFO
  arrival order, every master eventually served.  The default.
* :class:`MasterPriorityArbiter` — static per-master priority: the
  master with the lowest priority rank always wins.  Low-rank masters
  see minimal arbitration latency; high-rank masters can starve under
  load — the discipline's defining trade-off.
* :class:`RoundRobinArbiter` — a rotation pointer over the masters
  (first-request order).  After each grant the pointer moves past the
  grantee, so over any window with all masters requesting, grants are
  evenly distributed and no master waits more than one full rotation.

:data:`ARBITERS` maps the discipline names used by
:class:`~repro.core.platform.PlatformConfig` (``"fcfs"``/``"fixed"``,
``"priority"``, ``"round-robin"``) to these classes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import BusError
from ..sim import Event, Simulator
from .types import Priority

__all__ = [
    "Arbiter",
    "FixedPriorityArbiter",
    "MasterPriorityArbiter",
    "RoundRobinArbiter",
    "ARBITERS",
]


class Arbiter:
    """Base arbiter: three priority bands, exclusive grant semantics.

    Masters call :meth:`request` (an event to wait on) and must call
    :meth:`release` when their tenure ends.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._queues: dict[Priority, Deque[Tuple[str, Event]]] = {
            level: deque() for level in Priority
        }
        self._holder: Optional[str] = None
        self.grants = 0
        #: per-master grant counts — the fairness study's raw data
        self.grants_by_master: Dict[str, int] = {}

    @property
    def holder(self) -> Optional[str]:
        """Name of the master currently holding the bus, if any."""
        return self._holder

    @property
    def busy(self) -> bool:
        """True while a tenure is in progress."""
        return self._holder is not None

    def request(self, master: str, priority: Priority = Priority.NORMAL) -> Event:
        """Queue a bus request; the returned event fires on grant."""
        grant = self.sim.event()
        self._queues[priority].append((master, grant))
        if not self.busy:
            self._grant_next()
        return grant

    def release(self, master: str) -> None:
        """End the current tenure (must be called by the holder)."""
        if self._holder != master:
            raise BusError(f"{master} released the bus but {self._holder} holds it")
        self._holder = None
        self._grant_next()

    def pending(self) -> int:
        """Number of queued requests across all levels."""
        return sum(len(q) for q in self._queues.values())

    def snapshot(self) -> dict:
        """Diagnostic view: holder, grant count, queued masters per band."""
        return {
            "holder": self._holder,
            "grants": self.grants,
            "queued": {
                level.name.lower(): [master for master, _ in queue]
                for level, queue in self._queues.items()
            },
        }

    # -- selection policy --------------------------------------------------
    def _grant_next(self) -> None:
        choice = self._select()
        if choice is None:
            return
        master, grant = choice
        self._holder = master
        self.grants += 1
        self.grants_by_master[master] = self.grants_by_master.get(master, 0) + 1
        grant.succeed(master)

    def _select(self) -> Optional[Tuple[str, Event]]:
        raise NotImplementedError


class FixedPriorityArbiter(Arbiter):
    """FCFS: FIFO within each band; bands strictly ordered (default).

    Historically named for its strictly ordered priority *bands*; the
    per-master discipline inside the NORMAL band is first-come-first-
    served arrival order.
    """

    def _select(self) -> Optional[Tuple[str, Event]]:
        for level in Priority:
            queue = self._queues[level]
            if queue:
                return queue.popleft()
        return None


class MasterPriorityArbiter(Arbiter):
    """Static per-master priority inside the NORMAL band.

    ``ranking`` fixes the priority order explicitly (first entry wins);
    masters absent from it — or all masters, when no ranking is given —
    rank below every ranked master, in first-request order.  Ties in
    rank cannot occur: each master has exactly one position.  DRAIN and
    RETRY stay FIFO (correctness-critical orderings).

    Under sustained load from a low-rank master, higher-rank masters
    can starve indefinitely; the retry band keeps ARTRY'd transactions
    ahead of fresh ones, so starvation shows up as unbounded NORMAL
    queueing delay, never as a wedged drain.
    """

    def __init__(self, sim: Simulator, ranking: Sequence[str] = ()):
        super().__init__(sim)
        self._rank: Dict[str, int] = {
            master: index for index, master in enumerate(ranking)
        }

    def _rank_of(self, master: str) -> int:
        rank = self._rank.get(master)
        if rank is None:
            # Unranked masters slot in behind every ranked one, in
            # first-request order, and keep that rank forever.
            rank = len(self._rank)
            self._rank[master] = rank
        return rank

    def request(self, master: str, priority: Priority = Priority.NORMAL) -> Event:
        self._rank_of(master)  # register before selection runs
        return super().request(master, priority)

    def _select(self) -> Optional[Tuple[str, Event]]:
        for level in (Priority.DRAIN, Priority.RETRY):
            queue = self._queues[level]
            if queue:
                return queue.popleft()
        queue = self._queues[Priority.NORMAL]
        if not queue:
            return None
        best_index = min(
            range(len(queue)), key=lambda i: self._rank_of(queue[i][0])
        )
        choice = queue[best_index]
        del queue[best_index]
        return choice


class RoundRobinArbiter(Arbiter):
    """Rotation over masters inside the NORMAL band.

    Masters join the rotation in first-request order.  Selection scans
    the rotation cyclically starting just past the last grantee and
    grants the first master with a queued NORMAL request, so no
    requesting master waits more than one full rotation regardless of
    how quickly others re-request.  A grant that is cancelled at
    validate time (the grant-time upgrade-cancel path) still counts as
    that master's turn: the pointer moves past it, the cancelled tenure
    consumed no bus cycles, and the master rejoins the rotation on its
    next request — fairness over a rotation is preserved either way.

    A master that stops requesting (workload complete, core detached,
    rerouted after a validate-cancel) is pruned from the rotation once
    it has been scanned over without a queued request for a full
    rotation's worth of selections: retired masters must not keep a
    permanent rotation slot, or the "no more than one full rotation"
    wait bound quietly degrades to "one full rotation of everyone who
    *ever* requested" on long runs.  Pruning never changes a selection
    outcome for masters that keep requesting — relative rotation order
    is preserved and a master with a queued request is never pruned —
    and a pruned master that returns simply rejoins at the tail, as a
    fresh master would.

    DRAIN and RETRY stay FIFO (they are correctness-critical
    orderings); fairness only matters for fresh requests.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim)
        self._rotation: List[str] = []
        self._known: set = set()
        self._last_master: Optional[str] = None
        #: consecutive selections each member sat idle (no queued
        #: NORMAL request); reset on every request or queued sighting
        self._idle_selections: Dict[str, int] = {}

    def request(self, master: str, priority: Priority = Priority.NORMAL) -> Event:
        if master not in self._known:
            self._known.add(master)
            self._rotation.append(master)
        self._idle_selections[master] = 0
        return super().request(master, priority)

    def _select(self) -> Optional[Tuple[str, Event]]:
        for level in (Priority.DRAIN, Priority.RETRY):
            queue = self._queues[level]
            if queue:
                return queue.popleft()
        queue = self._queues[Priority.NORMAL]
        if not queue:
            return None
        # Oldest queued request per master (a master can only have one
        # NORMAL request outstanding, but the map keeps this robust).
        queued: Dict[str, int] = {}
        for index, (master, _grant) in enumerate(queue):
            queued.setdefault(master, index)
        rotation = self._rotation
        start = 0
        if self._last_master in self._known:
            start = rotation.index(self._last_master) + 1
        for offset in range(len(rotation)):
            master = rotation[(start + offset) % len(rotation)]
            index = queued.get(master)
            if index is not None:
                choice = queue[index]
                del queue[index]
                self._last_master = master
                self._idle_selections[master] = 0
                self._prune_idle(queued)
                return choice
        return None

    def _prune_idle(self, queued: Dict[str, int]) -> None:
        # Runs after each grant: members with a queued request (or the
        # grantee itself) reset their idle count; everyone else accrues
        # one, and past a full rotation's worth of idle selections the
        # member is dropped.  The grantee can never be stale here, so
        # the pointer (_last_master) always survives a prune and the
        # scan origin stays continuous.
        horizon = len(self._rotation)
        stale: List[str] = []
        for master in self._rotation:
            if master in queued or master == self._last_master:
                self._idle_selections[master] = 0
                continue
            count = self._idle_selections.get(master, 0) + 1
            self._idle_selections[master] = count
            if count > horizon:
                stale.append(master)
        for master in stale:
            self._rotation.remove(master)
            self._known.discard(master)
            del self._idle_selections[master]


#: service-discipline registry: config name -> arbiter class.  "fixed"
#: is the historical name for the FCFS default and stays accepted.
ARBITERS: Dict[str, type] = {
    "fcfs": FixedPriorityArbiter,
    "fixed": FixedPriorityArbiter,
    "priority": MasterPriorityArbiter,
    "round-robin": RoundRobinArbiter,
}
