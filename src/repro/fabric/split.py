"""A split-transaction bus: pipelined address and data tenures.

On the atomic ASB a tenure holds the bus from arbitration through the
end of the data phase.  Here the two phases are decoupled:

* The **address bus** carries arbitration + address phase + snoop
  window, under the configured service discipline (the existing
  arbiter classes arbitrate the address phase only).
* The **data bus** is a separate channel on which data tenures retire
  strictly in address order, overlapping later masters' arbitration
  and address phases.
* A bounded **in-flight window** (``max_inflight`` outstanding data
  tenures) back-pressures the address bus: a master that wins
  arbitration when the window is full stalls, still holding the
  address bus, until a data tenure retires — the classic split-bus
  flow-control point.

Coherence semantics are *identical* to the atomic bus by construction:
the snoop window, the data movement and the master's ``commit``
callback all execute at the end of the address phase while the address
bus is held, and ``transact`` returns to the master *synchronously* at
that same instant — so the master's post-transact work (writing the
store value into the freshly installed line) also lands before any
other master can reach an address phase.  Every coherence state change
therefore remains serialised in address-grant order and the shipped
protocol tables, wrapper conversions, ARTRY back-off and
validate-cancel paths apply unchanged.  What pipelines is purely
*occupancy*: each data tenure runs as a background process chained in
address order.  The cross-fabric differential suite checks that every
non-timing counter and final line state matches the atomic fabric
exactly; fabric-specific counters use the ``fabric.`` prefix, which
that suite exempts alongside ``bus.busy*``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional

from ..bus.asb import TenureState
from ..bus.types import BusResult, Priority, SnoopAction, Transaction
from ..sim import Event
from .atomic import AtomicFabric
from .interfaces import FabricCapabilities
from .registry import register_fabric

__all__ = ["SplitBus"]


@register_fabric
class SplitBus(AtomicFabric):
    """Split-transaction bus: address arbitration decoupled from data."""

    name = "split"
    version = 1

    #: default bound on outstanding data tenures
    DEFAULT_MAX_INFLIGHT = 4

    def __init__(self, *args, max_inflight: int = DEFAULT_MAX_INFLIGHT, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_inflight = max_inflight
        #: data tenures past their address phase but not yet retired
        self._outstanding = 0
        self._window_waiters: Deque[Event] = deque()
        #: completion event of the newest queued data tenure (the tail
        #: of the in-order data pipeline), None when the pipe is empty
        self._data_tail: Optional[Event] = None

    @classmethod
    def capabilities(cls) -> FabricCapabilities:
        return FabricCapabilities(
            broadcast=True,
            atomic_tenure=False,
            pipelined=True,
            point_to_point=False,
        )

    @classmethod
    def fingerprint(cls) -> Dict[str, object]:
        return {
            "name": cls.name,
            "version": cls.version,
            "max_inflight": cls.DEFAULT_MAX_INFLIGHT,
        }

    def snapshot(self) -> dict:
        base = super().snapshot()
        base["outstanding_data_tenures"] = self._outstanding
        base["window_waiters"] = len(self._window_waiters)
        return base

    # -- in-flight window ---------------------------------------------------
    def _acquire_slot(self) -> Event:
        """One data-tenure slot; fires immediately when under the bound.

        Called with the address bus held.  That cannot deadlock: slots
        are freed by data tenures, which progress on pure timeouts.  In
        the uncontended case the returned event is already triggered,
        so yielding it resumes the caller synchronously — no time
        passes and no other process runs.
        """
        gate = self.sim.event()
        if self._outstanding < self.max_inflight:
            self._outstanding += 1
            gate.succeed()
        else:
            self.stats.bump("fabric.split.window_stalls")
            self._window_waiters.append(gate)
        return gate

    def _release_slot(self) -> None:
        if self._window_waiters:
            # The slot transfers directly to the oldest stalled master.
            self._window_waiters.popleft().succeed()
        else:
            self._outstanding -= 1

    # -- the tenure ---------------------------------------------------------
    def transact(
        self,
        txn: Transaction,
        priority: Priority = Priority.NORMAL,
        commit=None,
        validate=None,
    ) -> Generator:
        """Run one address tenure; the data tenure retires in background.

        Returns at the end of the address phase (synchronously — see
        the module docstring for why that is load-bearing for
        coherence), with the data occupancy spawned as a chained
        background process.
        """
        sim = self.sim
        start = sim.now
        self.stats.bump("bus.txns")
        self.stats.bump(f"bus.op.{txn.op.value}")
        self.stats.bump(f"bus.master.{txn.master}")
        state = TenureState(txn.master, txn.op.value, txn.addr, start)
        self._inflight[id(txn)] = state
        held = False
        try:
            while True:
                yield self.arbiter.request(txn.master, priority)
                held = True
                if validate is not None and not validate():
                    self.arbiter.release(txn.master)
                    held = False
                    self._record_cancellation(txn)
                    return None
                tenure_start = sim.now
                state.phase = "address"
                state.since = tenure_start
                arb_cycles = 0 if priority is Priority.DRAIN else self.arbitration_cycles
                yield sim.timeout(
                    self.clock.edge_then_cycles(sim.now, arb_cycles + self.address_cycles)
                )
                trace = self._trace_bus
                if trace.enabled:
                    trace.emit(
                        sim.now, txn.master, "address-phase",
                        op=txn.op.value, addr=txn.addr, retry_no=txn.retries,
                    )
                replies = self._snoop_window(txn)
                retriers = [
                    (name, r) for name, r in replies if r.action is SnoopAction.RETRY
                ]
                if retriers:
                    # ARTRY semantics as on the atomic bus: the address
                    # tenure aborts; no data slot was consumed.
                    self.stats.bump("bus.retries")
                    if trace.enabled:
                        trace.emit(sim.now, txn.master, "artry", addr=txn.addr)
                    if self.retry_penalty_cycles:
                        yield sim.timeout(self.clock.cycles(self.retry_penalty_cycles))
                    aborted = sim.now - tenure_start
                    self.stats.bump("bus.busy_ticks", aborted)
                    self.stats.bump(f"bus.busy.{txn.master}", aborted)
                    self.arbiter.release(txn.master)
                    held = False
                    txn.retries += 1
                    state.retries = txn.retries
                    self._check_retry_ceiling(txn)
                    state.phase = "backed-off"
                    state.since = sim.now
                    state.waiting_on = tuple(name for name, _ in retriers)
                    yield sim.all_of([r.completion for _, r in retriers])
                    state.waiting_on = ()
                    state.phase = "arbitrating"
                    state.since = sim.now
                    priority = Priority.RETRY
                    continue
                shared = any(
                    r.action in (SnoopAction.SHARED, SnoopAction.SUPPLY)
                    for _, r in replies
                )
                supplier = next(
                    (r for _, r in replies if r.action is SnoopAction.SUPPLY), None
                )
                # Coherence commit point: data movement and the
                # master's state flip happen *now*, at the end of the
                # address phase with the address bus held — identical
                # serialisation to the atomic bus.  Only the data
                # tenure's occupancy is deferred.
                data, cycles = self._data_phase(txn, supplier)
                result = BusResult(
                    data=data,
                    shared=shared,
                    retries=txn.retries,
                    start_time=start,
                    end_time=sim.now,
                    supplied=supplier is not None,
                )
                if commit is not None:
                    commit(result)
                if trace.enabled:
                    trace.emit(
                        sim.now, txn.master, "complete",
                        op=txn.op.value, addr=txn.addr, shared=shared,
                        supplied=result.supplied, retries=txn.retries,
                    )
                # Reserve a data-tenure slot before releasing the
                # address bus: the bounded window's back-pressure
                # point.  While we stall here the address bus stays
                # held, so no other master can snoop the just-committed
                # line before our caller's synchronous continuation.
                # The slot's release lives in the spawned data tenure
                # (the ownership transfer below); an exception between
                # grant and spawn would leak it — accepted, since the
                # fault matrix takes the platform down on such errors.
                # repro: lint-ok[resource-release]
                yield self._acquire_slot()
                address_span = sim.now - tenure_start
                self.stats.bump("bus.busy_ticks", address_span)
                self.stats.bump(f"bus.busy.{txn.master}", address_span)
                predecessor = self._data_tail
                done = sim.event()
                self._data_tail = done
                sim.process(
                    self._data_tenure(txn, cycles, predecessor, done),
                    name=f"data-tenure:{txn.master}",
                )
                self.arbiter.release(txn.master)
                held = False
                self._note_completion(txn)
                return result
        finally:
            del self._inflight[id(txn)]
            if held:
                self.arbiter.release(txn.master)

    def _data_tenure(
        self,
        txn: Transaction,
        cycles: int,
        predecessor: Optional[Event],
        done: Event,
    ) -> Generator:
        """Background occupancy of one data tenure (in address order)."""
        state = TenureState(txn.master, txn.op.value, txn.addr, self.sim.now)
        state.phase = "data"
        self._inflight[id(done)] = state
        try:
            if predecessor is not None:
                # In-order data bus: wait for the prior tenure.
                yield predecessor
            data_start = self.sim.now
            state.since = data_start
            yield self.sim.timeout(self.clock.cycles(cycles))
            span = self.sim.now - data_start
            self.stats.bump("bus.busy_ticks", span)
            self.stats.bump(f"bus.busy.{txn.master}", span)
            self.stats.bump("fabric.split.data_tenures")
        finally:
            del self._inflight[id(done)]
            done.succeed()
            if self._data_tail is done:
                self._data_tail = None
            self._release_slot()
