"""Statement-level control-flow graphs with exception edges.

The concurrency rules reason about *paths* — "is the bus released on
every path out of this tenure, including the path where the snoop
window raises?" — so they need more than a statement walk.  This
module builds a small CFG per function:

* nodes are statements (compound statements contribute a *head* node
  covering only their test/iterator expression — their bodies are
  separate nodes);
* every node that can raise (it contains a call, a yield, a raise, an
  assert or a subscript) gets an **exception edge** to the innermost
  handler, ``finally`` or the synthetic ``raise`` exit;
* three synthetic nodes — ``entry``, ``exit`` (normal return) and
  ``raise`` (exception escapes the function) — anchor the analyses.

``finally`` blocks get the treatment the resource passes need: the
suite is built once, entered from normal completion, handler falls
and routed ``return``s alike, and its synthetic ``fin_exit`` node
carries the list of nodes syntactically inside the suite.  The model
layer turns that into a *syntactic kill*: any release anywhere in a
``finally`` — even under an ``if held:`` guard the dataflow cannot
evaluate — counts as releasing at the suite's exit.  That is exactly
the idiom the PR 3 bus fix introduced, and dropping it is what the
mutation matrix checks.

Deliberate approximations (all conservative for the shipped passes):
``break``/``continue`` jump straight to their loop targets without
routing through intervening ``finally`` suites (no such code is in
tree); ``with`` has no implicit exit edge; exception edges are
per-statement, not per-expression; a path that enters a ``finally``
on the exception edge may still leave through its normal exit.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

__all__ = ["CFG", "Node", "NORMAL", "EXCEPT", "walk_no_defs", "may_raise"]

#: edge kinds: normal flow vs exception propagation
NORMAL = "n"
EXCEPT = "e"

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: expression shapes that can raise at runtime (per-statement grain)
_RAISERS = (ast.Call, ast.Yield, ast.YieldFrom, ast.Raise, ast.Assert, ast.Subscript)


def walk_no_defs(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs or lambdas.

    The root itself is always yielded; children of nested function,
    lambda and class definitions belong to a different execution
    context and are skipped.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEF_NODES):
                continue
            stack.append(child)


def may_raise(scopes: Tuple[ast.AST, ...]) -> bool:
    """True when any scoped expression can raise (statement grain)."""
    for scope in scopes:
        for sub in walk_no_defs(scope):
            if isinstance(sub, _RAISERS):
                return True
    return False


class Node:
    """One CFG node: a statement, or a synthetic anchor.

    ``kind`` is ``"stmt"`` for real statements and one of ``"entry"``,
    ``"exit"``, ``"raise"``, ``"dispatch"`` (exception dispatch of a
    ``try`` with handlers), ``"fin_enter"`` / ``"fin_exit"`` (finally
    suite boundaries) for synthetic nodes.  ``scopes`` holds the AST
    subtrees this node *executes* (a loop head owns its test, not its
    body).  ``events`` is attached later by the model layer.
    """

    __slots__ = ("kind", "ast", "line", "scopes", "succ", "fin_nodes", "events")

    def __init__(self, kind: str, ast_node=None, scopes: Tuple[ast.AST, ...] = (), line: int = 0):
        self.kind = kind
        self.ast = ast_node
        self.line = line
        self.scopes = scopes
        #: outgoing edges: (target, NORMAL | EXCEPT)
        self.succ: List[Tuple["Node", str]] = []
        #: for fin_exit nodes: the nodes syntactically inside the suite
        self.fin_nodes: Tuple["Node", ...] = ()
        self.events = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.kind} line={self.line}>"


class CFG:
    """The control-flow graph of one function definition."""

    __slots__ = ("func", "entry", "exit", "raise_exit", "nodes")

    def __init__(self, func: ast.AST):
        self.func = func
        self.entry = Node("entry", func, (), getattr(func, "lineno", 0))
        self.exit = Node("exit")
        self.raise_exit = Node("raise")
        self.nodes: List[Node] = [self.entry, self.exit, self.raise_exit]
        _Builder(self).run()

    def preds(self):
        """Reverse edge map: node -> [(pred, kind), ...]."""
        result = {node: [] for node in self.nodes}
        for node in self.nodes:
            for succ, kind in node.succ:
                result[succ].append((node, kind))
        return result


class _Builder:
    """Recursive-descent CFG construction.

    ``tails`` threads through the build: the set of nodes whose next
    normal edge targets whatever comes next.  Statement handlers
    return the new tails (empty after ``return``/``raise``/``break``).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: innermost exception target (dispatch, fin_enter or raise exit)
        self.exc_stack: List[Node] = [cfg.raise_exit]
        #: (loop head, collected break nodes), innermost last
        self.loop_stack: List[Tuple[Node, List[Node]]] = []
        #: (fin_enter, flags) of active finally suites, innermost last
        self.fin_stack: List[Tuple[Node, dict]] = []

    def run(self) -> None:
        tails = self.seq(self.cfg.func.body, [self.cfg.entry])
        self.join(tails, self.cfg.exit)

    # -- plumbing ----------------------------------------------------------
    def join(self, tails: List[Node], node: Node, kind: str = NORMAL) -> None:
        for tail in tails:
            tail.succ.append((node, kind))

    def node(self, ast_node, scopes) -> Node:
        scopes = tuple(s for s in scopes if s is not None)
        made = Node("stmt", ast_node, scopes, getattr(ast_node, "lineno", 0))
        self.cfg.nodes.append(made)
        return made

    def marker(self, kind: str, ast_node=None) -> Node:
        made = Node(kind, ast_node, (), getattr(ast_node, "lineno", 0) if ast_node is not None else 0)
        self.cfg.nodes.append(made)
        return made

    def plain(self, stmt, tails, scopes=None) -> Node:
        made = self.node(stmt, scopes if scopes is not None else (stmt,))
        self.join(tails, made)
        if may_raise(made.scopes):
            made.succ.append((self.exc_stack[-1], EXCEPT))
        return made

    def exit_via_finally(self, node: Node) -> None:
        """Route a ``return`` through the innermost finally, if any."""
        if self.fin_stack:
            fin_enter, flags = self.fin_stack[-1]
            node.succ.append((fin_enter, NORMAL))
            flags["routed"] = True
        else:
            node.succ.append((self.cfg.exit, NORMAL))

    # -- statements --------------------------------------------------------
    def seq(self, stmts, tails) -> List[Node]:
        for stmt in stmts:
            tails = self.stmt(stmt, tails)
        return tails

    def stmt(self, s, tails) -> List[Node]:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Executes as a binding; the body runs in another context.
            made = self.node(s, ())
            self.join(tails, made)
            return [made]
        if isinstance(s, ast.Return):
            made = self.plain(s, tails)
            made.succ = [edge for edge in made.succ if edge[1] == EXCEPT]
            self.exit_via_finally(made)
            return []
        if isinstance(s, ast.Raise):
            made = self.node(s, (s,))
            self.join(tails, made)
            made.succ.append((self.exc_stack[-1], EXCEPT))
            return []
        if isinstance(s, ast.Break):
            made = self.node(s, ())
            self.join(tails, made)
            if self.loop_stack:
                self.loop_stack[-1][1].append(made)
            return []
        if isinstance(s, ast.Continue):
            made = self.node(s, ())
            self.join(tails, made)
            if self.loop_stack:
                made.succ.append((self.loop_stack[-1][0], NORMAL))
            return []
        if isinstance(s, ast.If):
            head = self.plain(s, tails, scopes=(s.test,))
            out = self.seq(s.body, [head])
            if s.orelse:
                out = out + self.seq(s.orelse, [head])
            else:
                out = out + [head]
            return out
        if isinstance(s, ast.While):
            return self._loop(s, tails, scopes=(s.test,),
                              infinite=isinstance(s.test, ast.Constant) and bool(s.test.value))
        if isinstance(s, (ast.For, ast.AsyncFor)):
            return self._loop(s, tails, scopes=(s.iter, s.target), infinite=False)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            head = self.plain(s, tails, scopes=tuple(i.context_expr for i in s.items))
            return self.seq(s.body, [head])
        if isinstance(s, ast.Try):
            return self._try(s, tails)
        return [self.plain(s, tails)]

    def _loop(self, s, tails, scopes, infinite: bool) -> List[Node]:
        head = self.plain(s, tails, scopes=scopes)
        breaks: List[Node] = []
        self.loop_stack.append((head, breaks))
        body_tails = self.seq(s.body, [head])
        self.loop_stack.pop()
        self.join(body_tails, head)
        out = list(breaks)
        if not infinite:
            if s.orelse:
                out += self.seq(s.orelse, [head])
            else:
                out.append(head)
        return out

    def _try(self, s: ast.Try, tails) -> List[Node]:
        fin_enter = fin_exit = None
        flags = {"routed": False}
        if s.finalbody:
            # The suite is built once, in the *outer* context: its own
            # exceptions propagate past this try.
            fin_enter = self.marker("fin_enter", s)
            first_new = len(self.cfg.nodes)
            fin_tails = self.seq(s.finalbody, [fin_enter])
            fin_nodes = tuple(self.cfg.nodes[first_new:])
            fin_exit = self.marker("fin_exit", s)
            # First element is the matching fin_enter; the rest are the
            # suite's own nodes (the syntactic-kill scan needs both).
            fin_exit.fin_nodes = (fin_enter,) + fin_nodes
            self.join(fin_tails, fin_exit)
            # Re-raise continuation: an exception that entered the
            # suite keeps propagating after it.
            fin_exit.succ.append((self.exc_stack[-1], EXCEPT))
            self.fin_stack.append((fin_enter, flags))

        outer_exc = self.exc_stack[-1]
        after_body_exc = fin_enter if fin_enter is not None else outer_exc
        dispatch = None
        if s.handlers:
            dispatch = self.marker("dispatch", s)
            self.exc_stack.append(dispatch)
        else:
            self.exc_stack.append(after_body_exc)
        body_tails = self.seq(s.body, tails)
        self.exc_stack.pop()

        handler_tails: List[Node] = []
        if dispatch is not None:
            self.exc_stack.append(after_body_exc)
            for handler in s.handlers:
                head = self.node(handler, (handler.type,))
                dispatch.succ.append((head, NORMAL))
                handler_tails += self.seq(handler.body, [head])
            self.exc_stack.pop()
            # No handler matched: keep propagating.
            dispatch.succ.append((after_body_exc, EXCEPT))

        if s.orelse:
            self.exc_stack.append(after_body_exc)
            body_tails = self.seq(s.orelse, body_tails)
            self.exc_stack.pop()

        all_tails = body_tails + handler_tails
        if fin_enter is None:
            return all_tails
        self.fin_stack.pop()
        self.join(all_tails, fin_enter)
        if flags["routed"]:
            # A routed return continues past the suite: to the next
            # enclosing finally, or straight to the function exit.
            if self.fin_stack:
                outer_fin, outer_flags = self.fin_stack[-1]
                fin_exit.succ.append((outer_fin, NORMAL))
                outer_flags["routed"] = True
            else:
                fin_exit.succ.append((self.cfg.exit, NORMAL))
        return [fin_exit]
