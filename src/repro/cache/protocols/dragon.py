"""The Dragon protocol — an *update-based* extension.

Section 2 of the paper opens by dividing coherence protocols into
update-based and invalidation-based families and scopes the wrapper
methodology to the invalidation family ("we focus our discussion on
those processors that support invalidation-based protocols").  This
module implements the classic update-based representative (Xerox PARC's
Dragon, the paper's reference [3]) so that boundary is executable: a
homogeneous Dragon platform runs fine, and
:func:`~repro.core.reduction.reduce_protocols` refuses to mix Dragon
with any invalidation protocol.

Dragon's four valid states, mapped onto this package's state enum:

========  ==========  =================================================
Dragon    here        meaning
========  ==========  =================================================
E         EXCLUSIVE   only copy, clean
Sc        SHARED      shared copy, clean w.r.t. the current owner
Sm        OWNED       shared copy, dirty, responsible for write-back
M         MODIFIED    only copy, dirty
========  ==========  =================================================

Writes to shared lines broadcast the word on the bus (``UPDATE``);
sharers patch their copies in place instead of invalidating.  Memory is
*not* updated by the broadcast — the writer becomes the owner (Sm) when
sharers remain, or M when the update finds no listener.
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["DragonProtocol"]


class DragonProtocol(CoherenceProtocol):
    """Update-based: Exclusive / Sc(SHARED) / Sm(OWNED) / Modified."""

    name = "DRAGON"
    states = frozenset(
        {State.MODIFIED, State.OWNED, State.EXCLUSIVE, State.SHARED, State.INVALID}
    )
    uses_shared_signal = True
    supports_supply = True
    #: marks the protocol family for the reduction algebra
    update_based = True

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        if exclusive:
            # Dragon has no RWITM: a write miss fills then broadcasts.
            raise ProtocolError("Dragon fills are never exclusive (no RWITM)")
        return State.SHARED if shared else State.EXCLUSIVE

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state is State.MODIFIED:
            return State.MODIFIED, WriteAction.NONE
        if state is State.EXCLUSIVE:
            return State.MODIFIED, WriteAction.NONE
        if state in (State.SHARED, State.OWNED):
            # Broadcast the word; the controller resolves the final
            # state from the returned shared signal (Sm if sharers
            # remain, M if the update found no listener).
            return State.OWNED, WriteAction.UPDATE
        raise ProtocolError(f"Dragon write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        if op is SnoopOp.UPDATE:
            # Patch the broadcast word into the local copy; ownership
            # moves to the updater, so a previous owner demotes to Sc.
            return SnoopOutcome(
                State.SHARED, assert_shared=True, apply_update=True
            )
        if op is SnoopOp.READ:
            if state in (State.MODIFIED, State.OWNED):
                # The owner supplies the data and stays responsible.
                return SnoopOutcome(State.OWNED, supply=True, assert_shared=True)
            return SnoopOutcome(State.SHARED, assert_shared=True)
        if op is SnoopOp.READ_EXCL:
            if state in (State.MODIFIED, State.OWNED):
                return SnoopOutcome(State.INVALID, supply=True)
            return SnoopOutcome(State.INVALID)
        if op is SnoopOp.WRITE:
            # A non-caching writer (DMA, uncached store): push dirty
            # data first so memory is current, then drop the copy.
            if state in (State.MODIFIED, State.OWNED):
                return SnoopOutcome(State.INVALID, drain=True)
            return SnoopOutcome(State.INVALID)
        # INVALIDATE from a foreign upgrade.
        if state in (State.MODIFIED, State.OWNED):
            return SnoopOutcome(State.INVALID, drain=True)
        return SnoopOutcome(State.INVALID)
