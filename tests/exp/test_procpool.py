"""ResilientPool: ordering, crash recovery, timeouts, error reporting."""

import os
import time

import pytest

from repro.exp.procpool import PoolResult, ResilientPool


def _square(n):
    return n * n


def _slow_square(n):
    time.sleep(0.05)
    return n * n


def _sleep_forever(_item):
    time.sleep(60)


def _raise_value_error(item):
    raise ValueError(f"bad item {item}")


def _crash_once(marker_dir):
    """Die hard on the first attempt, succeed on the second."""
    marker = os.path.join(marker_dir, "attempted")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        os._exit(13)
    return "recovered"


def _crash_always(_item):
    os._exit(13)


def _sleep_if_first(item):
    index, marker_dir = item
    marker = os.path.join(marker_dir, f"slow-{index}")
    if index == 1 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        time.sleep(60)
    return index


class TestBasics:
    def test_every_item_yields_one_result(self):
        pool = ResilientPool(_square, workers=2)
        results = list(pool.map_unordered(range(7)))
        assert len(results) == 7
        assert {r.index for r in results} == set(range(7))
        assert all(r.ok for r in results)
        assert sorted(r.value for r in results) == [n * n for n in range(7)]

    def test_empty_items(self):
        pool = ResilientPool(_square, workers=2)
        assert list(pool.map_unordered([])) == []

    def test_results_carry_wall_time_and_pid(self):
        pool = ResilientPool(_slow_square, workers=2)
        results = list(pool.map_unordered([3, 4]))
        assert all(r.wall_s >= 0.04 for r in results)
        assert all(isinstance(r.pid, int) for r in results)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResilientPool(_square, workers=0)
        with pytest.raises(ValueError):
            ResilientPool(_square, workers=1, max_attempts=0)


class TestFailureModes:
    def test_function_error_is_reported_not_retried(self):
        pool = ResilientPool(_raise_value_error, workers=1, max_attempts=3)
        (result,) = list(pool.map_unordered(["x"]))
        assert result.status == "error"
        assert result.attempts == 1
        assert "ValueError" in result.value
        assert pool.failures == [result]

    def test_crashed_worker_job_is_requeued_and_recovers(self, tmp_path):
        pool = ResilientPool(_crash_once, workers=1, max_attempts=2)
        (result,) = list(pool.map_unordered([str(tmp_path)]))
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_persistent_crash_reported_after_bounded_attempts(self):
        pool = ResilientPool(_crash_always, workers=1, max_attempts=2)
        (result,) = list(pool.map_unordered(["x"]))
        assert result.status == "crash"
        assert result.attempts == 2

    def test_hung_job_times_out(self):
        pool = ResilientPool(
            _sleep_forever, workers=1, timeout_s=0.2, max_attempts=1
        )
        start = time.monotonic()
        (result,) = list(pool.map_unordered(["x"]))
        assert result.status == "timeout"
        assert time.monotonic() - start < 10

    def test_hung_job_does_not_block_siblings(self, tmp_path):
        # Item 1 hangs on its first attempt; items 0 and 2 must still
        # complete, and item 1 recovers on its retry.
        pool = ResilientPool(
            _sleep_if_first, workers=2, timeout_s=0.4, max_attempts=2
        )
        items = [(i, str(tmp_path)) for i in range(3)]
        results = {r.index: r for r in pool.map_unordered(items)}
        assert len(results) == 3
        assert results[0].ok and results[2].ok
        assert results[1].ok and results[1].attempts == 2

    def test_crash_counts_as_failure_in_pool_state(self):
        pool = ResilientPool(_crash_always, workers=1, max_attempts=1)
        list(pool.map_unordered(["a", "b"]))
        assert len(pool.failures) == 2
        assert all(f.status == "crash" for f in pool.failures)


class TestStreaming:
    def test_results_stream_as_they_complete(self):
        pool = ResilientPool(_slow_square, workers=2)
        seen = []
        for result in pool.map_unordered(range(4)):
            seen.append(result.index)
        assert len(seen) == 4

    def test_pool_result_ok_property(self):
        assert PoolResult(0, "ok", 1, 0.0, 123, 1).ok
        assert not PoolResult(0, "timeout", "x", 0.0, None, 2).ok


class TestPersistentMode:
    """start / submit / poll / close — the campaign-service contract."""

    def test_submit_before_start_queues(self):
        pool = ResilientPool(_square, workers=1)
        pool.submit(3)
        pool.submit(4)
        assert not pool.started
        assert pool.queued == 2
        assert pool.outstanding == 2

    def test_poll_drains_submissions(self):
        pool = ResilientPool(_square, workers=2)
        try:
            pool.start()
            indices = [pool.submit(n) for n in range(5)]
            got = {}
            deadline = time.monotonic() + 30
            while len(got) < 5 and time.monotonic() < deadline:
                result = pool.poll(timeout=0.2)
                if result is not None:
                    got[result.index] = result
            assert sorted(got) == sorted(indices)
            assert sorted(r.value for r in got.values()) == [0, 1, 4, 9, 16]
            assert pool.outstanding == 0
        finally:
            pool.close()

    def test_start_is_idempotent(self):
        pool = ResilientPool(_square, workers=2)
        try:
            pool.start()
            pids = [w.process.pid for w in pool._pool]
            pool.start()
            assert [w.process.pid for w in pool._pool] == pids
        finally:
            pool.close()

    def test_close_drain_finishes_outstanding_work(self):
        pool = ResilientPool(_slow_square, workers=2)
        pool.start()
        for n in range(4):
            pool.submit(n)
        results = pool.close(drain=True)
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert pool.outstanding == 0

    def test_close_without_drain_abandons_queue(self):
        pool = ResilientPool(_slow_square, workers=1)
        pool.start()
        for n in range(4):
            pool.submit(n)
        results = pool.close(drain=False)
        # Whatever was mid-run may or may not finish; nothing new starts.
        assert len(results) <= 4
        assert not pool.started

    def test_worker_snapshot_shape(self):
        pool = ResilientPool(_sleep_forever, workers=1, timeout_s=5.0)
        try:
            pool.start()
            pool.submit("x")
            deadline = time.monotonic() + 10
            busy = None
            while time.monotonic() < deadline:
                pool.poll(timeout=0.05)
                views = pool.worker_snapshot()
                if views and views[0]["index"] is not None:
                    busy = views[0]
                    break
            assert busy is not None
            assert busy["alive"] and busy["busy_s"] >= 0.0
            assert busy["attempt"] == 1
            assert pool.active_indices() == [busy["index"]]
        finally:
            pool.close()


class TestBackoff:
    def test_backoff_is_capped_exponential(self):
        pool = ResilientPool(
            _square, workers=1, backoff_s=0.1, backoff_cap_s=0.35
        )
        assert pool.backoff_delay(1) == pytest.approx(0.1)
        assert pool.backoff_delay(2) == pytest.approx(0.2)
        assert pool.backoff_delay(3) == pytest.approx(0.35)  # capped
        assert pool.backoff_delay(9) == pytest.approx(0.35)

    def test_retry_diagnostics_reach_the_result(self, tmp_path):
        pool = ResilientPool(
            _crash_once, workers=1, max_attempts=3,
            backoff_s=0.05, backoff_cap_s=1.0,
        )
        (result,) = list(pool.map_unordered([str(tmp_path)]))
        assert result.ok and result.attempts == 2
        assert result.max_attempts == 3
        assert result.backoff_s == pytest.approx(0.05)

    def test_no_retry_no_backoff_reported(self):
        pool = ResilientPool(_square, workers=1, max_attempts=4)
        (result,) = list(pool.map_unordered([5]))
        assert result.attempts == 1
        assert result.backoff_s == 0.0

    def test_backoff_delays_the_requeue(self, tmp_path):
        pool = ResilientPool(
            _crash_once, workers=1, max_attempts=2,
            backoff_s=0.3, backoff_cap_s=1.0,
        )
        start = time.monotonic()
        (result,) = list(pool.map_unordered([str(tmp_path)]))
        assert result.ok
        assert time.monotonic() - start >= 0.3


class TestSignalHygiene:
    def test_reaped_worker_does_not_poison_parent_wakeup_fd(self):
        """Forked workers must reset inherited signal plumbing.

        An asyncio parent (the campaign service) installs a Python
        SIGTERM handler plus a wakeup fd; both survive fork.  Without
        the worker-side reset, terminating a hung worker writes the
        SIGTERM byte into the *shared* wakeup socket — the parent's
        event loop then believes the service itself was signalled and
        gracefully drains.  The reaped worker must also actually die
        (default disposition), not swallow the signal.
        """
        import signal
        import socket

        recv_sock, send_sock = socket.socketpair()
        recv_sock.setblocking(False)
        send_sock.setblocking(False)
        previous_fd = signal.set_wakeup_fd(send_sock.fileno())
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: None
        )
        try:
            pool = ResilientPool(
                _sleep_forever, workers=1, timeout_s=0.2, max_attempts=1
            )
            (result,) = list(pool.map_unordered(["x"]))
            assert result.status == "timeout"
            with pytest.raises(BlockingIOError):
                recv_sock.recv(1)  # no phantom signal byte leaked
        finally:
            signal.signal(signal.SIGTERM, previous_handler)
            signal.set_wakeup_fd(previous_fd)
            recv_sock.close()
            send_sock.close()


_ORPHAN_SCRIPT = """
import time
from repro.exp.procpool import ResilientPool

def _noop(item):
    return item

pool = ResilientPool(_noop, workers=1, timeout_s=30.0)
pool.start()
print(pool._pool[0].process.pid, flush=True)
time.sleep(120)
"""


def _process_gone(pid):
    """True once ``pid`` is dead (a reaped-or-zombie orphan counts)."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            state = handle.read().rsplit(")", 1)[1].split()[0]
        return state == "Z"
    except OSError:
        return True


class TestOrphanSelfReap:
    def test_worker_exits_after_parent_sigkill(self):
        """``kill -9`` on the pool's owner must not leak the fleet.

        SIGKILL tears down no children: without the worker-side
        reparenting check, an orphaned worker blocks on its task queue
        forever (the campaign service's crash drills leaked one fleet
        per kill).  The worker polls ``os.getppid()`` between queue
        slices and exits once its parent is gone.
        """
        import subprocess
        import sys

        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src
        process = subprocess.Popen(
            [sys.executable, "-c", _ORPHAN_SCRIPT],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        try:
            line = process.stdout.readline()
            worker_pid = int(line)
            os.kill(process.pid, 9)
            process.wait(timeout=10)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if _process_gone(worker_pid):
                    break
                time.sleep(0.1)
            else:
                os.kill(worker_pid, 9)
                raise AssertionError(
                    f"worker {worker_pid} survived its parent's SIGKILL"
                )
        finally:
            process.stdout.close()
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
