"""Hot-path suite plumbing: engine tagging and like-for-like checks.

``--check`` compares wall-clock numbers, so it must refuse to compare
runs that are not like-for-like: a different engine, a different
native/pure split, or a different Python implementation each make the
baseline meaningless.  Mismatch is exit code 2 — distinct from a real
regression (1) — so CI can tell "slower" from "not comparable".
"""

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.exp import hotpath


@pytest.fixture(scope="module")
def quick_doc():
    return hotpath.run_suite(quick=True, repeats=1)


class TestRunSuite:
    def test_statistics_only_engine_is_rejected(self):
        with pytest.raises(ConfigError, match="event kernel"):
            hotpath.run_suite(quick=True, repeats=1, engine="batch")

    def test_document_is_engine_tagged(self, quick_doc):
        assert quick_doc["schema"] == 2
        assert quick_doc["engine"]["name"] == "exact"
        assert isinstance(quick_doc["engine"]["version"], int)
        assert isinstance(quick_doc["impl"], str)
        metrics = quick_doc["metrics"]
        assert metrics["engine_batch_speedup_vs_exact"] > 1.0
        assert metrics["engine_batch_accesses_per_sec"] > (
            metrics["engine_exact_accesses_per_sec"]
        )


class TestBaselineMismatch:
    def test_identical_runs_are_comparable(self, quick_doc):
        assert hotpath.baseline_mismatch(quick_doc, quick_doc) == []

    def test_engine_name_mismatch(self, quick_doc):
        other = dict(quick_doc, engine=dict(quick_doc["engine"],
                                            name="compiled"))
        assert any("engine" in m for m in
                   hotpath.baseline_mismatch(quick_doc, other))

    def test_native_flag_mismatch(self, quick_doc):
        other = dict(quick_doc, engine=dict(quick_doc["engine"], native=True))
        assert hotpath.baseline_mismatch(quick_doc, other) != []

    def test_python_implementation_mismatch(self, quick_doc):
        other = dict(quick_doc, impl="PyPy")
        assert any("PyPy" in m for m in
                   hotpath.baseline_mismatch(quick_doc, other))

    def test_legacy_schema1_baseline_is_comparable(self, quick_doc):
        # Pre-engine baselines carry neither engine nor impl; absence
        # must not read as a mismatch or every CI run would exit 2.
        legacy = {k: v for k, v in quick_doc.items()
                  if k not in ("engine", "impl", "schema")}
        assert hotpath.baseline_mismatch(quick_doc, legacy) == []


class TestCliCheck:
    def test_mismatched_baseline_exits_2(self, quick_doc, tmp_path, capsys):
        baseline = tmp_path / "BENCH_hotpath.json"
        doc = dict(quick_doc, engine=dict(quick_doc["engine"],
                                          name="compiled"))
        baseline.write_text(json.dumps(doc))
        code = main(["bench", "hotpath", "--quick", "--repeats", "1",
                     "--check", "--baseline", str(baseline)])
        assert code == 2
        err = capsys.readouterr().err
        assert "re-record the baseline" in err

    def test_matched_baseline_passes(self, quick_doc, tmp_path, capsys):
        baseline = tmp_path / "BENCH_hotpath.json"
        baseline.write_text(json.dumps(quick_doc))
        # Huge tolerance: this asserts the like-for-like gate opens,
        # not anything about this machine's timing stability.
        code = main(["bench", "hotpath", "--quick", "--repeats", "1",
                     "--check", "--baseline", str(baseline),
                     "--tolerance", "1000"])
        assert code == 0
        assert "no regression" in capsys.readouterr().out
