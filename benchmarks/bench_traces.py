"""Trace-driven cache characterisation (library-utility benchmarks).

Uses the synthetic trace generators to sweep the classic curves on the
platform's caches — working-set knee, stride behaviour, and sharing
cost — sanity-anchoring the cache substrate the paper's numbers stand
on.
"""

from conftest import report, run_once

from repro.core import Platform, PlatformConfig
from repro.cpu import preset_generic
from repro.workloads.tracegen import (
    producer_consumer_trace,
    random_trace,
    replay_trace,
    sequential_trace,
    strided_trace,
)


def fresh_platform(cache_size=1024):
    return Platform(
        PlatformConfig(
            cores=(
                preset_generic("p0", "MESI", cache_size=cache_size),
                preset_generic("p1", "MESI", cache_size=cache_size),
            )
        )
    )


def test_working_set_knee(benchmark):
    """Hit rate collapses once the footprint exceeds the cache."""
    def sweep():
        rows = []
        cache_words = 1024 // 4  # 256 words capacity
        for footprint in (64, 128, 256, 512, 1024):
            platform = fresh_platform(cache_size=1024)
            result = replay_trace(
                platform, random_trace(1200, footprint, seed=7)
            )
            rows.append((footprint, result.hit_rate))
        return rows

    rows = run_once(benchmark, sweep)
    text = "\n".join(
        f"footprint={fp:>5} words  hit rate={hr:6.3f}" for fp, hr in rows
    )
    report(benchmark, "Trace - working-set knee", text)
    rates = [hr for _fp, hr in rows]
    assert rates == sorted(rates, reverse=True)   # monotone decline
    assert rates[0] > 0.95                        # fits: nearly all hits
    assert rates[-1] < 0.5                        # 4x the cache: thrashing


def test_stride_behaviour(benchmark):
    """Word-stride streams hit within lines; line-stride streams miss."""
    def sweep():
        rows = []
        for stride in (4, 8, 16, 32, 64):
            platform = fresh_platform()
            result = replay_trace(platform, strided_trace(256, stride))
            rows.append((stride, result.hit_rate))
        return rows

    rows = run_once(benchmark, sweep)
    text = "\n".join(
        f"stride={s:>3} B  hit rate={hr:6.3f}" for s, hr in rows
    )
    report(benchmark, "Trace - stride sweep", text)
    by_stride = dict(rows)
    assert by_stride[4] == max(by_stride.values())
    assert by_stride[32] == 0.0  # one access per line
    assert by_stride[64] == 0.0


def test_sharing_cost(benchmark):
    """Producer-consumer word handoff vs a private sequential walk."""
    def run_pair():
        shared = replay_trace(fresh_platform(), producer_consumer_trace(64))
        private = replay_trace(
            fresh_platform(), sequential_trace(128, write_every=2)
        )
        return shared, private

    shared, private = run_once(benchmark, run_pair)
    text = (
        f"producer-consumer: {shared.elapsed_ns} ns, {shared.fills} fills\n"
        f"private stream:    {private.elapsed_ns} ns, {private.fills} fills"
    )
    report(benchmark, "Trace - sharing cost", text)
    # Cross-cache handoff forces far more fills per access than a
    # private walk over the same number of accesses.
    assert shared.fills > private.fills
    assert shared.elapsed_ns > private.elapsed_ns
