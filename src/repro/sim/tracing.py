"""Structured tracing and statistics for simulation runs.

A :class:`Tracer` is attached to a platform and receives one
:class:`TraceRecord` per interesting hardware event (bus transaction,
cache state change, interrupt, lock operation...).  Tracing is off by
default; benchmarks leave it off, tests and the coherence checker turn
on the channels they need.

Hot call sites do not call :meth:`Tracer.emit` directly — building the
keyword dict for a record that is then dropped costs more than many of
the modelled operations themselves.  Instead a component asks once for
a cached :class:`TraceChannel` guard object and emits through it::

    self._trace_bus = tracer.channel("bus")
    ...
    trace = self._trace_bus
    if trace.enabled:
        trace.emit(now, source, kind, addr=addr)

When the channel is disabled and no listeners are attached, the cost is
two attribute loads and a branch — no dict, no record, no call.  The
tracer keeps every handed-out channel's ``enabled`` flag current when
channels are enabled or listeners attached.

:class:`Stats` is a plain counter bag used for the headline metrics
(bus cycles busy, misses, interrupts, retries) that the analysis layer
reads after a run.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, Optional

__all__ = ["TraceRecord", "TraceChannel", "Tracer", "Stats", "NullTracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped simulation event.

    ``channel`` groups records ("bus", "cache", "irq", "lock", "core");
    ``source`` names the emitting component; ``kind`` is the event name;
    ``fields`` carries event-specific data (addresses, states...).
    """

    time: int
    channel: str
    source: str
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Render the record as a single human-readable line."""
        pairs = " ".join(f"{k}={_fmt(v)}" for k, v in self.fields.items())
        return f"[{self.time:>10}ns] {self.channel:5s} {self.source:12s} {self.kind:16s} {pairs}"


def _fmt(value: Any) -> str:
    if isinstance(value, int) and value >= 0x1000:
        return f"0x{value:08x}"
    return str(value)


class TraceChannel:
    """A cached per-channel emit guard (see :meth:`Tracer.channel`).

    ``enabled`` is a plain attribute the owning tracer keeps current:
    False exactly when an emit would be a no-op, so call sites skip the
    whole call (and its kwargs dict) with one attribute load.  ``store``
    tracks whether records on this channel are kept in the buffer (they
    may be False while ``enabled`` is True: listeners see all channels).
    """

    __slots__ = ("_tracer", "name", "enabled", "store")

    def __init__(self, tracer: "Tracer", name: str, store: bool, enabled: bool):
        self._tracer = tracer
        self.name = name
        self.store = store
        self.enabled = enabled

    def emit(self, time: int, source: str, kind: str, **fields: Any) -> None:
        """Record one event on this channel (call only when ``enabled``)."""
        tracer = self._tracer
        record = TraceRecord(time, self.name, source, kind, fields)
        for listener in tracer._listeners:
            listener(record)
        if self.store:
            tracer.records.append(record)  # deque(maxlen) evicts the oldest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<TraceChannel {self.name!r} {state}>"


# One tracer per platform; the hot path goes through the slotted
# TraceChannel guards, never through attribute lookups on this object.
class Tracer:  # repro: lint-ok[slots]
    """Collects :class:`TraceRecord` objects on enabled channels.

    ``records`` is a ring buffer: with a ``capacity``, the oldest record
    is dropped in O(1) once full (``deque(maxlen=...)`` — a plain list
    would shift every element on each eviction, O(n) per record for the
    whole steady state of a capped trace).
    """

    def __init__(self, channels: Optional[Iterable[str]] = None, capacity: Optional[int] = None):
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._channels: Optional[set[str]] = set(channels) if channels is not None else None
        self._listeners: list[Callable[[TraceRecord], None]] = []
        self._channel_cache: Dict[str, TraceChannel] = {}

    def enabled(self, channel: str) -> bool:
        """True when ``channel`` is being recorded."""
        return self._channels is None or channel in self._channels

    def enable(self, channel: str) -> None:
        """Start recording ``channel`` (no-op if all channels are on)."""
        if self._channels is not None:
            self._channels.add(channel)
            self._refresh_channels()

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener(record)`` on every emitted record.

        Listeners see records on *all* channels regardless of the enabled
        set; the coherence checker uses this so benchmarks can keep record
        storage off while still being checked.
        """
        self._listeners.append(listener)
        self._refresh_channels()

    # -- channel guards ----------------------------------------------------
    def channel(self, name: str) -> TraceChannel:
        """The cached emit guard for ``name`` (one object per channel)."""
        guard = self._channel_cache.get(name)
        if guard is None:
            guard = TraceChannel(self, name, self._stores(name), self._live(name))
            self._channel_cache[name] = guard
        return guard

    def _stores(self, name: str) -> bool:
        """Whether records on ``name`` are kept in the buffer."""
        return self._channels is None or name in self._channels

    def _live(self, name: str) -> bool:
        """Whether an emit on ``name`` does any work at all."""
        return bool(self._listeners) or self._stores(name)

    def _refresh_channels(self) -> None:
        for guard in self._channel_cache.values():
            guard.store = self._stores(guard.name)
            guard.enabled = self._live(guard.name)

    # -- direct emission ---------------------------------------------------
    def emit(self, time: int, channel: str, source: str, kind: str, **fields: Any) -> None:
        """Record one event (no record is built on a dead channel)."""
        if not self._listeners and not self.enabled(channel):
            return
        record = TraceRecord(time, channel, source, kind, fields)
        for listener in self._listeners:
            listener(record)
        if self.enabled(channel):
            self.records.append(record)  # deque(maxlen) evicts the oldest

    def find(self, channel: Optional[str] = None, kind: Optional[str] = None) -> list[TraceRecord]:
        """Filter recorded events by channel and/or kind."""
        return [
            r
            for r in self.records
            if (channel is None or r.channel == channel)
            and (kind is None or r.kind == kind)
        ]

    def format(self) -> str:
        """The whole trace as one newline-joined string."""
        return "\n".join(r.format() for r in self.records)


class NullTracer(Tracer):  # repro: lint-ok[slots] -- singleton, like Tracer
    """A tracer that records nothing, for zero-overhead benchmark runs."""

    def __init__(self):
        super().__init__(channels=())

    def _stores(self, name: str) -> bool:
        # enable() on the base class would start recording; a NullTracer
        # never stores, whatever the channel set says.
        return False

    def emit(self, time: int, channel: str, source: str, kind: str, **fields: Any) -> None:
        if not self._listeners:
            return
        record = TraceRecord(time, channel, source, kind, fields)
        for listener in self._listeners:
            listener(record)


class Stats:
    """A counter bag with a tiny convenience API."""

    __slots__ = ("counters",)

    def __init__(self):
        self.counters: Counter[str] = Counter()

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment ``key`` by ``amount``."""
        self.counters[key] += amount

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 when never bumped)."""
        return self.counters.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of every counter."""
        return dict(self.counters)

    def merge(self, other: "Stats") -> None:
        """Add another stats bag into this one."""
        self.counters.update(other.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Stats({body})"
