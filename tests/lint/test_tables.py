"""Protocol-table and reduction-algebra validator tests.

Every shipped table must validate; every mutation (dropped transition,
alien target state, missing reset state, unreachable state, broken
side conditions, broken commutativity) must be rejected.
"""

import pytest

from repro.cache.line import State
from repro.cache.protocols import PROTOCOLS, make_protocol
from repro.cache.protocols.base import SnoopOp, SnoopOutcome
from repro.cache.protocols.mesi import MESIProtocol
from repro.cache.protocols.moesi import MOESIProtocol
from repro.core.reduction import (
    PROTOCOL_STATES,
    ReductionResult,
    reduce_protocols,
    system_states,
)
from repro.lint import validate_protocol, validate_reduction


class TestShippedTables:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_every_shipped_protocol_is_sound(self, name):
        assert validate_protocol(make_protocol(name)) == []

    def test_shipped_reduction_algebra_is_consistent(self):
        assert validate_reduction() == []


class _AlienTarget(MESIProtocol):
    """S + READ_EXCL sends the line to OWNED, which MESI does not have."""

    def snoop(self, state, op):
        if state is State.SHARED and op is SnoopOp.READ_EXCL:
            return SnoopOutcome(State.OWNED)
        return super().snoop(state, op)


class _DroppedTransition(MESIProtocol):
    """The (SHARED, READ) entry was deleted: falls through to None."""

    def snoop(self, state, op):
        if state is State.SHARED and op is SnoopOp.READ:
            return None
        return super().snoop(state, op)


class _MissingReset(MESIProtocol):
    states = frozenset({State.MODIFIED, State.EXCLUSIVE, State.SHARED})


class _DeadState(MESIProtocol):
    """Declares OWNED but no transition ever produces it."""

    states = MESIProtocol.states | {State.OWNED}


class _UnreachableExclusive(MESIProtocol):
    """Fills ignore the shared signal, so E can never be entered."""

    def fill_state(self, exclusive, shared):
        if exclusive:
            return State.MODIFIED
        return State.SHARED


class _DrainFromClean(MESIProtocol):
    def snoop(self, state, op):
        if state is State.SHARED and op is SnoopOp.READ:
            return SnoopOutcome(State.SHARED, drain=True, assert_shared=True)
        return super().snoop(state, op)


class _SupplyWithoutSupport(MESIProtocol):
    def snoop(self, state, op):
        if state is State.MODIFIED and op is SnoopOp.READ:
            return SnoopOutcome(State.SHARED, supply=True)
        return super().snoop(state, op)


class _UpdateOnRead(MOESIProtocol):
    def snoop(self, state, op):
        if state is State.SHARED and op is SnoopOp.READ:
            return SnoopOutcome(
                State.SHARED, assert_shared=True, apply_update=True
            )
        return super().snoop(state, op)


class _CrashingTable(MESIProtocol):
    """A KeyError escaping the table is a bug, not an 'illegal input'."""

    def write_hit(self, state):
        raise KeyError(state)


class TestMutatedTables:
    @pytest.mark.parametrize(
        ("mutant", "fragment"),
        [
            (_AlienTarget, "outside the protocol's state set"),
            (_DroppedTransition, "not a SnoopOutcome"),
            (_MissingReset, "INVALID missing"),
            (_DeadState, "unreachable"),
            (_UnreachableExclusive, "unreachable"),
            (_DrainFromClean, "drain from clean"),
            (_SupplyWithoutSupport, "supports_supply=False"),
            (_UpdateOnRead, "non-UPDATE snoop"),
            (_CrashingTable, "raised KeyError"),
        ],
    )
    def test_mutation_is_rejected(self, mutant, fragment):
        problems = validate_protocol(mutant())
        assert problems, f"{mutant.__name__} accepted"
        assert any(fragment in p for p in problems), problems


def _swap_sensitive_reduce(protocols):
    """Deliberately order-dependent: MEI/MESI reduces differently swapped."""
    result = reduce_protocols(protocols)
    names = [p for p in protocols]
    if names == ["MEI", "MESI"]:
        return ReductionResult(
            system_protocol="MESI", policies=result.policies
        )
    return result


def _dragon_accepting_reduce(protocols):
    names = [None if p is None else p.upper() for p in protocols]
    if "DRAGON" in names:
        return ReductionResult(
            system_protocol="MEI",
            policies=tuple(reduce_protocols(["MEI", "MEI"]).policies),
        )
    return reduce_protocols(protocols)


def _bloated_system_states(protocols):
    return PROTOCOL_STATES["MOESI"]


class TestMutatedReduction:
    def test_non_commutative_reduce_rejected(self):
        problems = validate_reduction(reduce_fn=_swap_sensitive_reduce)
        assert any("not commutative" in p for p in problems), problems

    def test_dragon_mixing_must_be_refused(self):
        problems = validate_reduction(reduce_fn=_dragon_accepting_reduce)
        assert any("outside the wrapper algebra" in p for p in problems), problems

    def test_intersection_shape_enforced(self):
        problems = validate_reduction(system_states_fn=_bloated_system_states)
        assert any("operand" in p for p in problems), problems

    def test_policies_must_swap_with_operands(self):
        def keep_order(protocols):
            result = reduce_protocols(protocols)
            if protocols == ["MSI", "MOESI"]:
                return ReductionResult(
                    system_protocol=result.system_protocol,
                    policies=tuple(reversed(result.policies)),
                )
            return result

        problems = validate_reduction(reduce_fn=keep_order)
        assert any("policies do not swap" in p for p in problems), problems

    def test_si_pairs_are_refused_symmetrically(self):
        # The shipped reducer refuses SI everywhere; a reducer that lets
        # SI through on one side only must be caught.
        def asymmetric(protocols):
            if protocols == ["SI", "MESI"]:
                return reduce_protocols(["MEI", "MESI"])
            return reduce_protocols(protocols)

        problems = validate_reduction(reduce_fn=asymmetric)
        assert any("SI" in p for p in problems), problems


class TestReductionFacts:
    """Anchor a few algebra facts the validator relies on."""

    def test_intersection_matches_table(self):
        assert system_states(["MEI", "MESI"]) == PROTOCOL_STATES["MEI"]
        assert system_states(["MSI", "MOESI"]) == PROTOCOL_STATES["MSI"]
        assert system_states(["MEI", "MSI"]) == frozenset(
            {State.MODIFIED, State.INVALID}
        )

    def test_none_behaves_as_mei(self):
        assert system_states([None, "MOESI"]) == PROTOCOL_STATES["MEI"]
