"""Golden-trace determinism gate for the kernel/cache/tracing fast paths.

The hot-path optimisations (same-tick run queue, dict-indexed tag
lookup, zero-cost trace channels) must keep event ordering *byte
identical*: this test runs a fixed Table-2-flavoured workload with
every trace channel enabled and compares the full ``TraceRecord``
stream and the headline statistics against snapshots committed under
``tests/integration/golden/`` (generated from the pre-optimisation
seed).  Any reordering of same-tick events, any change to snoop or
drain sequencing, and any lost or duplicated record fails this test.

Regenerate (only for an *intentional* semantic change)::

    PYTHONPATH=src python tests/integration/test_golden_trace.py --regen
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cpu.presets import preset_arm920t, preset_generic
from repro.engines import kernel_is_native
from repro.workloads.microbench import MicrobenchSpec, run_microbench

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
TRACE_FILE = os.path.join(GOLDEN_DIR, "table2_wcs_trace.txt")
STATS_FILE = os.path.join(GOLDEN_DIR, "table2_wcs_stats.json")

#: every channel the platform components emit on
ALL_CHANNELS = ("bus", "cache", "irq", "mem", "core")

#: both kernel engines must reproduce the golden trace byte-identically;
#: the compiled leg only proves something extra on a native build, so it
#: skips (not passes) when tools/build_native.py has not run
KERNEL_ENGINE_PARAMS = (
    "exact",
    pytest.param(
        "compiled",
        marks=pytest.mark.skipif(
            not kernel_is_native(),
            reason="no native build present (run tools/build_native.py); "
            "the compiled engine would exercise the same pure-Python "
            "modules as the exact leg",
        ),
    ),
)


def run_golden_workload(engine: str = "exact"):
    """The fixed workload: Table-2 protocol pair + a snooped ARM920T.

    Small caches force evictions and write-backs; the non-coherent
    ARM920T brings the TAG CAM, ARTRY back-off and nFIQ/ISR machinery
    into the trace; the MESI + MEI pair is the paper's Table 2 pairing.
    """
    spec = MicrobenchSpec(
        scenario="wcs",
        solution="proposed",
        lines=12,
        exec_time=2,
        iterations=3,
    )
    cores = (
        preset_generic("p1", "MESI", cache_size=1024),
        preset_arm920t("p2").with_(cache_size=1024, cache_ways=4),
    )
    result = run_microbench(
        spec,
        cores=cores,
        keep_platform=True,
        trace_channels=ALL_CHANNELS,
        engine=engine,
    )
    trace_text = result.platform.tracer.format()
    stats = dict(sorted(result.stats.items()))
    stats["__elapsed_ns__"] = result.elapsed_ns
    stats["__isr_entries__"] = result.isr_entries
    stats["__trace_records__"] = len(result.platform.tracer.records)
    return trace_text, stats


@pytest.mark.parametrize("engine", KERNEL_ENGINE_PARAMS)
def test_trace_stream_matches_golden(engine):
    trace_text, _stats = run_golden_workload(engine)
    with open(TRACE_FILE) as handle:
        golden = handle.read().rstrip("\n")
    assert trace_text == golden, (
        "TraceRecord stream diverged from the committed golden trace — "
        "event ordering is no longer byte-identical"
    )


@pytest.mark.parametrize("engine", KERNEL_ENGINE_PARAMS)
def test_headline_stats_match_golden(engine):
    _trace, stats = run_golden_workload(engine)
    with open(STATS_FILE) as handle:
        golden = json.load(handle)
    assert stats == golden, (
        "headline statistics diverged from the committed golden snapshot"
    )


def _regen():  # pragma: no cover - maintenance helper
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    trace_text, stats = run_golden_workload()
    with open(TRACE_FILE, "w") as handle:
        handle.write(trace_text + "\n")
    with open(STATS_FILE, "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {TRACE_FILE} ({len(trace_text.splitlines())} records)")
    print(f"wrote {STATS_FILE} ({len(stats)} counters)")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
