"""The ``python -m repro lint`` subcommand.

Exit codes (stable, relied on by CI and shell pipelines):

====  ========================================================
0     clean — no error-severity findings (warnings may remain)
1     at least one error-severity finding survived suppressions
      and the baseline filter
2     usage / configuration problem (unknown rule, unreadable
      baseline, syntax error in a linted file)
====  ========================================================
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, TextIO

from .core import RULES, Severity, load_project, run_rules
from .report import filter_baseline, load_baseline, render_json, render_text

__all__ = ["run_lint", "add_lint_arguments"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser) -> None:
    """Attach the lint options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is also the baseline format)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON report of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def run_lint(args, stdout: Optional[TextIO] = None, stderr: Optional[TextIO] = None) -> int:
    """Execute one lint run from parsed ``args``; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr

    # Rule registration happens inside run_rules; force it early so
    # --list-rules and rule validation see the full registry.
    from . import rules as _rules  # noqa: F401

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id, rule in RULES.items():
            out.write(f"{rule_id:<{width}}  {rule.description}\n")
        return EXIT_CLEAN

    try:
        project = load_project(args.paths or None)
    except (OSError, SyntaxError) as exc:
        err.write(f"repro lint: cannot load sources: {exc}\n")
        return EXIT_USAGE

    try:
        findings = run_rules(project, args.rules)
    except KeyError as exc:
        err.write(f"repro lint: {exc.args[0]}\n")
        return EXIT_USAGE

    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            render_json(findings, handle)
        out.write(
            f"repro lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}\n"
        )
        return EXIT_CLEAN

    baselined = 0
    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            err.write(f"repro lint: bad baseline: {exc}\n")
            return EXIT_USAGE
        findings, baselined = filter_baseline(findings, accepted)

    if args.format == "json":
        render_json(findings, out)
    else:
        render_text(findings, out)
        if baselined:
            out.write(f"({baselined} baselined finding(s) not shown)\n")

    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    return EXIT_FINDINGS if errors else EXIT_CLEAN
