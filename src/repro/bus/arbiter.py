"""Bus arbitration.

The arbiter hands out exclusive bus tenures.  Requests carry a
:class:`~repro.bus.types.Priority`:

* ``DRAIN`` — snoop pushes (write-backs forced by a snoop hit).  The
  paper's platforms hand the bus to the snooping processor immediately
  after ARTRY (BOFF on the Intel486 side, ARTRY/BG on the PowerPC side);
  drains therefore always win.
* ``RETRY`` — a master re-issuing a transaction that was ARTRY'd.
* ``NORMAL`` — fresh requests.

Within a level, requests are served FIFO (``FixedPriorityArbiter``) or
round-robin over masters (``RoundRobinArbiter``) — an ablation knob.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import BusError
from ..sim import Event, Simulator
from .types import Priority

__all__ = ["Arbiter", "FixedPriorityArbiter", "RoundRobinArbiter"]


class Arbiter:
    """Base arbiter: three priority bands, exclusive grant semantics.

    Masters call :meth:`request` (an event to wait on) and must call
    :meth:`release` when their tenure ends.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._queues: dict[Priority, Deque[Tuple[str, Event]]] = {
            level: deque() for level in Priority
        }
        self._holder: Optional[str] = None
        self.grants = 0

    @property
    def holder(self) -> Optional[str]:
        """Name of the master currently holding the bus, if any."""
        return self._holder

    @property
    def busy(self) -> bool:
        """True while a tenure is in progress."""
        return self._holder is not None

    def request(self, master: str, priority: Priority = Priority.NORMAL) -> Event:
        """Queue a bus request; the returned event fires on grant."""
        grant = self.sim.event()
        self._queues[priority].append((master, grant))
        if not self.busy:
            self._grant_next()
        return grant

    def release(self, master: str) -> None:
        """End the current tenure (must be called by the holder)."""
        if self._holder != master:
            raise BusError(f"{master} released the bus but {self._holder} holds it")
        self._holder = None
        self._grant_next()

    def pending(self) -> int:
        """Number of queued requests across all levels."""
        return sum(len(q) for q in self._queues.values())

    def snapshot(self) -> dict:
        """Diagnostic view: holder, grant count, queued masters per band."""
        return {
            "holder": self._holder,
            "grants": self.grants,
            "queued": {
                level.name.lower(): [master for master, _ in queue]
                for level, queue in self._queues.items()
            },
        }

    # -- selection policy --------------------------------------------------
    def _grant_next(self) -> None:
        choice = self._select()
        if choice is None:
            return
        master, grant = choice
        self._holder = master
        self.grants += 1
        grant.succeed(master)

    def _select(self) -> Optional[Tuple[str, Event]]:
        raise NotImplementedError


class FixedPriorityArbiter(Arbiter):
    """FIFO within each band; bands strictly ordered (default policy)."""

    def _select(self) -> Optional[Tuple[str, Event]]:
        for level in Priority:
            queue = self._queues[level]
            if queue:
                return queue.popleft()
        return None


class RoundRobinArbiter(Arbiter):
    """Round-robin across masters inside the NORMAL band.

    DRAIN and RETRY stay FIFO (they are correctness-critical orderings);
    fairness only matters for fresh requests.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim)
        self._last_master: Optional[str] = None

    def _select(self) -> Optional[Tuple[str, Event]]:
        for level in (Priority.DRAIN, Priority.RETRY):
            queue = self._queues[level]
            if queue:
                return queue.popleft()
        queue = self._queues[Priority.NORMAL]
        if not queue:
            return None
        # Prefer the first queued master different from the last grantee.
        for index, (master, grant) in enumerate(queue):
            if master != self._last_master:
                del queue[index]
                self._last_master = master
                return master, grant
        master, grant = queue.popleft()
        self._last_master = master
        return master, grant
