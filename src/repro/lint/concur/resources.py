"""The declarative resource model behind the concurrency rules.

The paper's whole contribution is a discipline for *who may hold what*
— the bus tenure, the cache tag/data port, the snoop window, the drain
path — and the concurrency rules check that discipline statically.
This module names those resources declaratively: each
:class:`ResourceSpec` describes how an acquire and a release look in
the AST (method names plus a regex over the unparsed receiver
expression), what kind of resource it is, and which semantic flags the
dataflow passes should apply.

The registry is deliberately small and open: a new fabric or engine
that introduces its own arbitrated resource calls
:func:`register_resource` (usually from its own module or a conftest)
and the three rules pick it up with no rule changes.  See
``docs/static-analysis.md`` for the shipped table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "ResourceSpec",
    "register_resource",
    "active_registry",
    "DEFAULT_RESOURCES",
]

#: resource kinds the passes understand
KINDS = ("mutex", "arbiter", "slot", "completion", "registry")


@dataclass(frozen=True)
class ResourceSpec:
    """One named resource and its AST acquire/release shape.

    ``acquire_methods`` / ``release_methods`` match attribute calls
    (``<receiver>.<method>(...)``) whose unparsed ``<receiver>`` text
    matches the ``receiver`` regex; an acquire is *blocking* when the
    call is the value of a ``yield``.  The remaining fields steer the
    dataflow passes:

    * ``cross_master`` — waiting on this resource waits on another
      master's (or another process's) progress; only such waits count
      for ``hold-across-yield`` and the waits-for graph.
    * ``deny_hold_across_wait`` — the deny-list bit: holding this
      resource across a cross-master blocking yield is a finding
      (the PR 6 controller-port deadlock shape).
    * ``transfer_methods`` — calls that hand ownership to a freshly
      spawned process (e.g. ``sim.process(...)``); the held resource is
      considered transferred, not leaked, on that edge.
    * ``wait_attr`` — ``yield sim.all_of([x.<wait_attr> ...])`` counts
      as a blocking wait on this resource (snoop-reply completions).
    * ``providers`` — names of the functions that make the resource
      available again (succeed the completion / release the slot); the
      wait-cycle pass analyses them for what they *must* block on.
    * ``ceiling_anchors`` — calls that bound re-request loops (the
      ARTRY retry ceiling): a waits-for edge whose wait sits in such a
      loop ends in a diagnosed livelock, never a silent deadlock, so it
      cannot close a reportable cycle.
    * ``registry_attrs`` / ``callback_methods`` — for ``registry``-kind
      resources only: iterating the *live* attribute while invoking the
      callbacks is a window-discipline violation (the PR 8
      detach-during-snoop-window race); iterate a snapshot instead.
    """

    id: str
    kind: str
    doc: str = ""
    acquire_methods: Tuple[str, ...] = ()
    release_methods: Tuple[str, ...] = ()
    receiver: str = r".^"  # matches nothing unless overridden
    cross_master: bool = False
    deny_hold_across_wait: bool = False
    transfer_methods: Tuple[str, ...] = ()
    wait_attr: str = ""
    providers: Tuple[str, ...] = ()
    ceiling_anchors: Tuple[str, ...] = ()
    registry_attrs: Tuple[str, ...] = ()
    callback_methods: Tuple[str, ...] = ()
    _receiver_re: "re.Pattern[str]" = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown resource kind {self.kind!r} (of {KINDS})")
        object.__setattr__(self, "_receiver_re", re.compile(self.receiver))

    def matches_receiver(self, text: str) -> bool:
        return bool(self._receiver_re.search(text))


#: the shipped resource table (see docs/static-analysis.md)
DEFAULT_RESOURCES: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        id="bus-tenure",
        kind="arbiter",
        doc="the address bus, granted by the platform arbiter",
        acquire_methods=("request",),
        release_methods=("release",),
        receiver=r"(^|\.)arbiter$",
        cross_master=True,
        ceiling_anchors=("_check_retry_ceiling",),
    ),
    ResourceSpec(
        id="bank-tenure",
        kind="arbiter",
        doc="one directory home bank's arbitration domain",
        acquire_methods=("request",),
        release_methods=("release",),
        receiver=r"(^|\.)bank$",
        cross_master=True,
        ceiling_anchors=("_check_retry_ceiling",),
    ),
    ResourceSpec(
        id="cache-port",
        kind="mutex",
        doc="the cache tag/data port serialising processor vs drain access",
        acquire_methods=("acquire",),
        release_methods=("release",),
        receiver=r"(^|\.)port$",
        cross_master=True,
        deny_hold_across_wait=True,
    ),
    ResourceSpec(
        id="window-slot",
        kind="slot",
        doc="one data-tenure slot of the split bus's bounded in-flight window",
        acquire_methods=("_acquire_slot",),
        release_methods=("_release_slot",),
        receiver=r"^self$",
        cross_master=True,
        transfer_methods=("process",),
        providers=("_data_tenure",),
    ),
    ResourceSpec(
        id="drain-completion",
        kind="completion",
        doc="a snoop-reply completion: the requester's ARTRY back-off target",
        cross_master=True,
        wait_attr="completion",
        providers=("_drain_worker",),
    ),
    ResourceSpec(
        id="snoop-window",
        kind="registry",
        doc="the bus snooper list walked during an address-phase window",
        registry_attrs=("snoopers",),
        callback_methods=("snoop", "observe"),
    ),
)

#: the live registry, id -> spec (module-level so fabrics can extend it)
_REGISTRY: Dict[str, ResourceSpec] = {spec.id: spec for spec in DEFAULT_RESOURCES}


def register_resource(
    spec: ResourceSpec,
    registry: Optional[Dict[str, ResourceSpec]] = None,
) -> ResourceSpec:
    """Add ``spec`` to the registry (the process-wide one by default).

    Duplicate ids raise — two specs matching the same resource would
    double-report.  Pass an explicit ``registry`` dict (e.g. a copy of
    :func:`active_registry`) to extend a single analysis without
    touching global state.
    """
    target = _REGISTRY if registry is None else registry
    if spec.id in target:
        raise ValueError(f"duplicate resource id {spec.id!r}")
    target[spec.id] = spec
    return spec


def active_registry() -> Dict[str, ResourceSpec]:
    """A copy of the current registry (id -> spec, insertion order)."""
    return dict(_REGISTRY)
