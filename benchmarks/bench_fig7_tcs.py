"""Figure 7: typical-case scenario (random block among 10 per tenure).

Probabilistic reuse sits TCS between WCS and BCS: the proposed solution
keeps cross-tenure survivors cached, the software solution cannot, and
the gap widens with the block size.
"""

from conftest import report, run_once

from repro.analysis import figure7_tcs

LINE_COUNTS = (1, 2, 4, 8, 16, 32)
EXEC_TIMES = (1, 2, 4)
ITERATIONS = 8


def test_figure7_tcs(benchmark):
    figure = run_once(
        benchmark,
        figure7_tcs,
        line_counts=LINE_COUNTS,
        exec_times=EXEC_TIMES,
        iterations=ITERATIONS,
    )
    report(benchmark, "Figure 7 - Typical case results", figure.render())
    for exec_time in EXEC_TIMES:
        for lines in LINE_COUNTS:
            proposed = figure.get(f"proposed et={exec_time}", lines)
            software = figure.get(f"software et={exec_time}", lines)
            assert proposed < software  # proposed wins across the sweep
    # TCS speedup at 32 lines sits between the WCS (~0) and BCS (~0.4)
    # extremes.
    speedup = 1 - figure.get("proposed et=1", 32) / figure.get("software et=1", 32)
    assert 0.10 <= speedup <= 0.45
