"""Swappable simulation engines (model/engine split).

The coherence *model* — protocol tables, controllers, bus semantics —
lives in ``repro.cache`` / ``repro.bus`` / ``repro.core``.  This
package holds the *engines* that execute it: ``exact`` (the event
kernel, golden-trace identical), ``batch`` (trace-driven functional
replay, statistics only) and ``compiled`` (the exact kernel on native
builds of the hot modules when available).  See ``docs/engines.md``.

Select an engine with ``PlatformConfig(engine=...)`` / ``--engine`` on
the CLI and run a workload through it::

    from repro.engines import get_engine
    result = get_engine(config.engine).run(config, accesses)

The import direction is one-way: engines import the model, model code
never imports this package (the ``engine-contract`` lint rule).
"""

from __future__ import annotations

from ..core.platform import ENGINE_NAMES
from .interfaces import EngineCapabilities, EngineRunResult, ISimEngine
from .registry import (
    available_engines,
    engine_fingerprint,
    engine_names,
    get_engine,
)
from .exact import ExactEngine
from .batch import BatchEngine
from .compiled import CompiledEngine, kernel_is_native, native_modules
from .workloads import (
    reference_config,
    reference_workload,
    serialize_traces,
    serialize_workload,
)

__all__ = [
    "ISimEngine",
    "EngineCapabilities",
    "EngineRunResult",
    "ExactEngine",
    "BatchEngine",
    "CompiledEngine",
    "get_engine",
    "engine_names",
    "available_engines",
    "engine_fingerprint",
    "kernel_is_native",
    "native_modules",
    "serialize_traces",
    "serialize_workload",
    "reference_config",
    "reference_workload",
]

# The model owns the vocabulary; the registry must cover it exactly.
assert tuple(engine_names()) == ENGINE_NAMES, (
    f"engine registry {engine_names()} disagrees with "
    f"platform.ENGINE_NAMES {ENGINE_NAMES}"
)
