"""Unit tests for sparse main memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.mem import WORD_MASK, MainMemory


class TestWords:
    def test_unwritten_reads_zero(self):
        assert MainMemory().read_word(0x100) == 0

    def test_read_your_write(self):
        memory = MainMemory()
        memory.write_word(0x100, 0xDEADBEEF)
        assert memory.read_word(0x100) == 0xDEADBEEF

    def test_values_masked_to_32_bits(self):
        memory = MainMemory()
        memory.write_word(0x100, 0x1_2345_6789)
        assert memory.read_word(0x100) == 0x2345_6789

    def test_unaligned_read_rejected(self):
        with pytest.raises(MemoryError_):
            MainMemory().read_word(0x101)

    def test_unaligned_write_rejected(self):
        with pytest.raises(MemoryError_):
            MainMemory().write_word(0x102, 1)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            MainMemory().read_word(-4)

    def test_counters(self):
        memory = MainMemory()
        memory.write_word(0, 1)
        memory.read_word(0)
        memory.read_word(4)
        assert memory.writes == 1
        assert memory.reads == 2


class TestLines:
    def test_line_roundtrip(self):
        memory = MainMemory()
        data = list(range(8))
        memory.write_line(0x200, data)
        assert memory.read_line(0x200, 8) == data

    def test_line_read_counts_words(self):
        memory = MainMemory()
        memory.read_line(0, 8)
        assert memory.reads == 8

    def test_partial_line_overlays_words(self):
        memory = MainMemory()
        memory.write_word(0x204, 77)
        line = memory.read_line(0x200, 8)
        assert line[1] == 77
        assert line[0] == 0


class TestHelpers:
    def test_load_skips_counters(self):
        memory = MainMemory()
        memory.load(0, [1, 2, 3])
        assert memory.writes == 0
        assert memory.read_word(4) == 2

    def test_peek_skips_counters(self):
        memory = MainMemory()
        memory.load(0, [9])
        assert memory.peek(0) == 9
        assert memory.reads == 0

    def test_footprint(self):
        memory = MainMemory()
        memory.load(0, [1, 2, 3])
        memory.write_word(0, 5)  # overwrite, not new
        assert memory.footprint_words() == 3


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255).map(lambda n: n * 4),
            st.integers(min_value=0, max_value=WORD_MASK),
        ),
        max_size=50,
    )
)
def test_property_last_write_wins(writes):
    memory = MainMemory()
    expected = {}
    for addr, value in writes:
        memory.write_word(addr, value)
        expected[addr] = value
    for addr, value in expected.items():
        assert memory.read_word(addr) == value
