"""Model checking as a benchmark: the Section 2 claims, exhaustively.

Regenerates the paper's central correctness argument in a form stronger
than simulation: BFS over every reachable two-cache state for every
protocol pair, wrapped (must all be safe) and unwrapped (the paper's
incompatible pairs must be provably unsafe).
"""

from conftest import report, run_once

from repro.verify.model_check import check_matrix


def test_model_check_matrix(benchmark):
    def run_both():
        return check_matrix(wrapped=True), check_matrix(wrapped=False)

    wrapped, unwrapped = run_once(benchmark, run_both)
    lines = []
    for (p0, p1), result in wrapped.items():
        broken = unwrapped[(p0, p1)]
        lines.append(
            f"{p0:>5} + {p1:<5} wrapped: {'SAFE' if result.ok else 'UNSAFE'}  "
            f"unwrapped: {'SAFE' if broken.ok else 'UNSAFE'}"
        )
    report(benchmark, "Model check - every protocol pair", "\n".join(lines))
    assert all(result.ok for result in wrapped.values())
    # The paper's incompatible pairs are provably unsafe without wrappers.
    for pair in (("MESI", "MEI"), ("MSI", "MESI"), ("MOESI", "MEI")):
        assert not unwrapped[pair].ok
