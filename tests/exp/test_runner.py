"""Unit tests for the sweep runner: ordering, caching, manifests."""

import pytest

from repro.exp import MicrobenchJob, SequenceJob, SweepRunner
from repro.workloads import MicrobenchSpec


def small_jobs():
    spec = MicrobenchSpec("wcs", "disabled", lines=2, exec_time=1, iterations=2)
    return [
        MicrobenchJob(spec),
        MicrobenchJob(spec.with_(solution="proposed")),
        SequenceJob(("MESI", "MEI"), wrapped=False),
    ]


class TestSweepRunner:
    def test_results_in_submission_order(self):
        jobs = small_jobs()
        results = SweepRunner().run(jobs)
        assert len(results) == len(jobs)
        assert results[0]["elapsed_ns"] > results[1]["elapsed_ns"]  # disabled slower
        assert results[2]["stale_reads"] == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_duplicate_jobs_simulate_once(self):
        jobs = small_jobs()
        runner = SweepRunner()
        results = runner.run([jobs[0], jobs[1], jobs[0]])
        assert results[0] == results[2]
        assert runner.executed == 2
        assert runner.manifest()["deduplicated"] == 1

    def test_warm_cache_executes_nothing(self, tmp_path):
        jobs = small_jobs()
        cold = SweepRunner(cache_dir=str(tmp_path))
        cold_results = cold.run(jobs)
        assert cold.executed == len(jobs)

        warm = SweepRunner(cache_dir=str(tmp_path))
        warm_results = warm.run(jobs)
        assert warm.executed == 0
        assert warm.cache_hits == len(jobs)
        assert warm_results == cold_results

    def test_manifest_accumulates_across_sweeps(self, tmp_path):
        jobs = small_jobs()
        runner = SweepRunner(cache_dir=str(tmp_path))
        runner.run(jobs[:2])
        runner.run(jobs)  # first two hit, third misses
        manifest = runner.manifest()
        assert manifest["sweeps"] == 2
        assert manifest["n_jobs"] == 5
        assert manifest["cache_hits"] == 2
        assert manifest["executed"] == 3
        assert [entry["index"] for entry in manifest["jobs"]] == list(range(5))
        assert all(entry["label"] for entry in manifest["jobs"])

    def test_manifest_written_to_disk(self, tmp_path):
        import json

        runner = SweepRunner(cache_dir=str(tmp_path / "cache"))
        runner.run(small_jobs()[:1])
        path = str(tmp_path / "out" / "manifest.json")
        runner.write_manifest(path)
        with open(path) as handle:
            manifest = json.load(handle)
        assert manifest["n_jobs"] == 1
        assert manifest["jobs"][0]["cache_hit"] is False
        assert manifest["jobs"][0]["wall_s"] > 0

    def test_parallel_pool_matches_serial(self, tmp_path):
        jobs = small_jobs()
        serial = SweepRunner().run(jobs)
        parallel = SweepRunner(jobs=3).run(jobs)
        assert parallel == serial

    def test_summary_mentions_totals(self):
        runner = SweepRunner()
        runner.run(small_jobs()[:1])
        summary = runner.summary()
        assert "1 jobs" in summary and "1 simulated" in summary
