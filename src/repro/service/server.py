"""The service itself: routes, streaming, signals, lifecycle.

:class:`CampaignService` wires a :class:`~repro.service.scheduler.
Scheduler` to the hand-rolled HTTP layer on ``asyncio.start_server``.
Endpoints:

=======  =======================  ==========================================
Method   Path                     Meaning
=======  =======================  ==========================================
POST     ``/jobs``                submit one job payload (JSON)
GET      ``/jobs``                list all known jobs (summaries)
GET      ``/jobs/<id>``           one job; ``?wait=S`` long-polls until
                                  terminal (capped at ``max_wait_s``)
GET      ``/jobs/<id>/events``    SSE stream of status transitions; closes
                                  after the terminal event
GET      ``/healthz``             liveness: 200 once the socket is up
GET      ``/readyz``              readiness: 503 while draining or while
                                  every worker's heartbeat is flat
GET      ``/stats``               counters, queue depth, worker + watchdog
                                  snapshots, cache occupancy
POST     ``/drain``               begin a graceful drain (what SIGTERM does)
=======  =======================  ==========================================

Admission errors map to transport codes: 400 for an invalid payload,
403 for a disabled probe, 429 + ``Retry-After`` when the bounded queue
sheds, 503 + ``Retry-After`` while draining.

``kill -9`` safety is inherited from the layers below (journal lines
and cache writes are flushed per transition); this module adds the
*graceful* path: SIGTERM/SIGINT stop admission, finish in-flight jobs,
flush, then exit.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Optional

from ..errors import ConfigError, ReproError
from .config import ServiceConfig
from .http import (
    HttpError,
    HttpRequest,
    json_response,
    read_request,
    sse_event,
    sse_preamble,
)
from .scheduler import DrainingError, QueueFullError, Scheduler
from .state import TERMINAL_STATUSES, write_announce

__all__ = ["CampaignService", "serve"]


class CampaignService:
    """One service instance: scheduler + HTTP front end."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        os.makedirs(config.data_dir, exist_ok=True)
        self.scheduler = Scheduler(config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Recover, boot the fleet, bind, announce."""
        self.scheduler.cache.migrate()  # warm pre-shard caches just work
        self.scheduler.pool.start()
        self.scheduler.recover()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self.scheduler.pump())
        self._watchdog_task = asyncio.create_task(self.scheduler.watchdog())
        write_announce(
            self.config.announce_path,
            {
                "host": self.config.host,
                "port": self.port,
                "pid": os.getpid(),
                "data_dir": self.config.data_dir,
            },
        )

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def drain_and_stop(self, timeout_s: Optional[float] = None) -> None:
        """The graceful exit: SIGTERM semantics as a coroutine."""
        if self.scheduler.draining:
            return
        await self.scheduler.drain(timeout_s=timeout_s)
        await self.stop()

    async def stop(self) -> None:
        """Tear everything down (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in (self._pump_task, self._watchdog_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._pump_task = self._watchdog_task = None
        self.scheduler.shutdown()
        try:
            os.unlink(self.config.announce_path)
        except OSError:
            pass
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling -------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.detail})
                )
                await writer.drain()
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            # A client that hangs up mid-response (or mid-SSE-stream)
            # costs exactly its own connection.
            self.scheduler.stats_counters["streams_closed"] += 1
        except Exception as exc:  # never let one request kill the loop
            try:
                writer.write(
                    json_response(500, {"error": f"internal error: {exc}"})
                )
                await writer.drain()
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            writer.write(json_response(200, {"status": "alive"}))
        elif path == "/readyz" and method == "GET":
            writer.write(self._readyz())
        elif path == "/stats" and method == "GET":
            writer.write(json_response(200, self.scheduler.stats()))
        elif path == "/jobs" and method == "POST":
            writer.write(self._submit(request))
        elif path == "/jobs" and method == "GET":
            writer.write(self._list_jobs())
        elif path == "/drain" and method == "POST":
            asyncio.get_running_loop().create_task(self.drain_and_stop())
            writer.write(json_response(202, {"status": "draining"}))
        elif path.startswith("/jobs/") and method == "GET":
            await self._job_get(request, writer)
            return  # may have streamed; drained inside
        else:
            writer.write(
                json_response(404, {"error": f"no route {method} {path}"})
            )
        await writer.drain()

    # -- handlers ------------------------------------------------------------
    def _readyz(self) -> bytes:
        stalled = self.scheduler.stalled_workers
        all_stalled = (
            len(stalled) >= self.config.workers and self.config.workers > 0
        )
        if self.scheduler.draining or all_stalled:
            reason = "draining" if self.scheduler.draining else "stalled"
            return json_response(
                503,
                {"status": "unavailable", "reason": reason,
                 "stalled_workers": stalled},
                extra_headers={"Retry-After": "30"},
            )
        return json_response(200, {"status": "ready"})

    def _submit(self, request: HttpRequest) -> bytes:
        try:
            payload = request.json()
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.detail})
        try:
            verdict = self.scheduler.submit(payload)
        except DrainingError as exc:
            return json_response(
                503, {"error": str(exc)},
                extra_headers={"Retry-After": str(exc.retry_after_s)},
            )
        except QueueFullError as exc:
            return json_response(
                429, {"error": str(exc), "shed": True},
                extra_headers={"Retry-After": str(exc.retry_after_s)},
            )
        except ConfigError as exc:
            status = 403 if "probe jobs are disabled" in str(exc) else 400
            return json_response(status, {"error": str(exc)})
        except ReproError as exc:
            return json_response(400, {"error": str(exc)})
        verdict["location"] = f"/jobs/{verdict['job_id']}"
        return json_response(202, verdict)

    def _list_jobs(self) -> bytes:
        return json_response(
            200,
            {
                "jobs": [
                    entry.to_dict(include_result=False)
                    for _, entry in sorted(self.scheduler.jobs.items())
                ]
            },
        )

    async def _job_get(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        parts = request.path.strip("/").split("/")
        # "/jobs/<id>" or "/jobs/<id>/events"
        job_id = parts[1] if len(parts) >= 2 else ""
        entry = self.scheduler.jobs.get(job_id)
        if entry is None:
            writer.write(
                json_response(404, {"error": f"unknown job {job_id!r}"})
            )
            await writer.drain()
            return
        if len(parts) == 3 and parts[2] == "events":
            await self._stream_events(entry, writer)
            return
        if len(parts) != 2:
            writer.write(json_response(404, {"error": "no such resource"}))
            await writer.drain()
            return
        wait_s = 0.0
        if "wait" in request.query:
            try:
                wait_s = float(request.query["wait"])
            except ValueError:
                writer.write(
                    json_response(400, {"error": "wait must be a number"})
                )
                await writer.drain()
                return
        wait_s = max(0.0, min(wait_s, self.config.max_wait_s))
        if wait_s and not entry.terminal:
            try:
                await asyncio.wait_for(
                    entry.terminal_event.wait(), timeout=wait_s
                )
            except asyncio.TimeoutError:
                pass  # long-poll expired; report the live status
        writer.write(json_response(200, entry.to_dict()))
        await writer.drain()

    async def _stream_events(self, entry, writer: asyncio.StreamWriter) -> None:
        """SSE: current status immediately, then every transition."""
        queue: asyncio.Queue = asyncio.Queue()
        entry.subscribers.append(queue)
        self.scheduler.stats_counters["streams_opened"] += 1
        try:
            writer.write(sse_preamble())
            first = entry.to_dict()
            writer.write(
                sse_event(
                    first, event="result" if entry.terminal else "status"
                )
            )
            await writer.drain()
            while not entry.terminal:
                event = await queue.get()
                terminal = event.get("status") in TERMINAL_STATUSES
                writer.write(
                    sse_event(event, event="result" if terminal else "status")
                )
                await writer.drain()
                if terminal:
                    break
        finally:
            if queue in entry.subscribers:
                entry.subscribers.remove(queue)
            self.scheduler.stats_counters["streams_closed"] += 1


async def _serve_async(config: ServiceConfig, ready_line: bool = True) -> int:
    service = CampaignService(config)
    await service.start()
    loop = asyncio.get_running_loop()

    def _graceful(signame: str) -> None:
        # Second signal escalates to immediate stop.
        if service.scheduler.draining:
            loop.create_task(service.stop())
        else:
            loop.create_task(service.drain_and_stop())

    for signame in ("SIGTERM", "SIGINT"):
        try:
            loop.add_signal_handler(
                getattr(signal, signame), _graceful, signame
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    if ready_line:
        print(
            f"campaign service listening on {service.url} "
            f"(data: {config.data_dir})",
            flush=True,
        )
    await service.wait_stopped()
    return 0


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    return asyncio.run(_serve_async(config))
