"""Parallel sweeps must be byte-identical to serial ones.

The acceptance bar for the runner: fanning jobs over a worker pool (and
answering repeats from the cache) may change nothing about the figures'
CSV/JSON output — every job is an independent deterministic simulation
and the runner returns results in submission order.
"""

from repro.analysis import (
    compute_headlines,
    figure5_wcs,
    figure_to_csv,
    figure_to_json,
    headlines_to_markdown,
)
from repro.exp import SweepRunner

REDUCED = dict(line_counts=(1, 2), exec_times=(1,), iterations=2)


class TestFigureDeterminism:
    def test_parallel_figure5_is_byte_identical_to_serial(self):
        serial = figure5_wcs(**REDUCED)
        parallel = figure5_wcs(runner=SweepRunner(jobs=4), **REDUCED)
        assert figure_to_csv(parallel) == figure_to_csv(serial)
        assert figure_to_json(parallel) == figure_to_json(serial)

    def test_cached_rerun_is_byte_identical(self, tmp_path):
        cold = figure5_wcs(runner=SweepRunner(jobs=2, cache_dir=str(tmp_path)), **REDUCED)
        warm_runner = SweepRunner(jobs=2, cache_dir=str(tmp_path))
        warm = figure5_wcs(runner=warm_runner, **REDUCED)
        assert warm_runner.executed == 0  # answered entirely from cache
        assert figure_to_csv(warm) == figure_to_csv(cold)
        assert figure_to_json(warm) == figure_to_json(cold)


class TestHeadlineDeterminism:
    def test_parallel_headlines_match_serial(self):
        serial = compute_headlines(iterations=2, lines=4)
        parallel = compute_headlines(iterations=2, lines=4, runner=SweepRunner(jobs=4))
        assert headlines_to_markdown(parallel) == headlines_to_markdown(serial)
