"""Unit tests for clock domains."""

import pytest

from repro.errors import ConfigError
from repro.sim import Clock, mhz_to_period_ns


class TestMhzConversion:
    def test_100mhz_is_10ns(self):
        assert mhz_to_period_ns(100) == 10

    def test_50mhz_is_20ns(self):
        assert mhz_to_period_ns(50) == 20

    def test_1000mhz_is_1ns(self):
        assert mhz_to_period_ns(1000) == 1

    def test_non_integral_period_rejected(self):
        with pytest.raises(ConfigError):
            mhz_to_period_ns(33.0)  # 30.30.. ns

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigError):
            mhz_to_period_ns(0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigError):
            mhz_to_period_ns(-5)


class TestClock:
    def test_cycles_scale_by_period(self):
        clk = Clock(20)
        assert clk.cycles(13) == 260

    def test_zero_cycles_is_zero(self):
        assert Clock(10).cycles(0) == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigError):
            Clock(10).cycles(-1)

    def test_from_mhz(self):
        clk = Clock.from_mhz(100)
        assert clk.period == 10
        assert clk.freq_mhz == pytest.approx(100.0)

    def test_to_cycles(self):
        assert Clock(20).to_cycles(50) == pytest.approx(2.5)

    def test_next_edge_on_edge_is_zero(self):
        assert Clock(20).next_edge(40) == 0

    def test_next_edge_mid_period(self):
        assert Clock(20).next_edge(45) == 15

    def test_next_edge_with_phase(self):
        clk = Clock(20, phase=5)
        assert clk.next_edge(5) == 0
        assert clk.next_edge(6) == 19

    def test_edge_then_cycles(self):
        clk = Clock(20)
        # from t=45: 15 to the edge, then 2 cycles
        assert clk.edge_then_cycles(45, 2) == 55

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigError):
            Clock(0)

    def test_invalid_phase_rejected(self):
        with pytest.raises(ConfigError):
            Clock(10, phase=10)
