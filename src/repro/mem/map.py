"""Memory map: address regions and their attributes.

The platforms in the paper distinguish several kinds of address space:

* private, cacheable memory per processor,
* the shared-data region — cacheable or not depending on the coherence
  solution being evaluated (Table 4: "Shared data: selectively enabled"),
* the lock-variable region — **never** cached ("Lock variables are not
  cached in all simulations"), and
* memory-mapped devices (the hardware lock register, the snoop-logic
  mailbox) which are uncacheable by construction.

A :class:`MemoryMap` is a list of non-overlapping :class:`Region` objects
plus lookup helpers.  Caches consult it to decide whether an access may
allocate; write policy (write-back vs write-through) is also a region
attribute, mirroring the Intel486's per-line WB/WT configuration.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Iterable, Optional

from ..errors import ConfigError, MemoryError_

__all__ = ["WritePolicy", "Region", "MemoryMap"]


class WritePolicy(Enum):
    """Write policy applied to cache lines allocated from a region."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class Region:
    """A contiguous, attribute-uniform address range ``[base, base+size)``."""

    name: str
    base: int
    size: int
    cacheable: bool = True
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    device: Any = None
    shared: bool = False

    def __post_init__(self):
        if self.base < 0 or self.size <= 0:
            raise ConfigError(f"region {self.name!r}: bad range base=0x{self.base:x} size={self.size}")
        if self.base % 4 or self.size % 4:
            raise ConfigError(f"region {self.name!r}: base and size must be word-aligned")
        if self.device is not None and self.cacheable:
            raise ConfigError(f"region {self.name!r}: device regions must be uncacheable")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this region."""
        return self.base <= addr < self.end

    def uncached(self) -> "Region":
        """A copy of this region with caching disabled."""
        return replace(self, cacheable=False)


class MemoryMap:
    """Sorted, non-overlapping set of regions with fast lookup."""

    def __init__(self, regions: Iterable[Region] = ()):
        self._regions: list[Region] = []
        self._bases: list[int] = []
        for region in regions:
            self.add(region)

    # -- construction -------------------------------------------------------
    def add(self, region: Region) -> Region:
        """Insert ``region``, rejecting overlaps and duplicate names."""
        if any(r.name == region.name for r in self._regions):
            raise ConfigError(f"duplicate region name {region.name!r}")
        index = bisect.bisect_left(self._bases, region.base)
        if index > 0 and self._regions[index - 1].end > region.base:
            raise ConfigError(
                f"region {region.name!r} overlaps {self._regions[index - 1].name!r}"
            )
        if index < len(self._regions) and region.end > self._regions[index].base:
            raise ConfigError(
                f"region {region.name!r} overlaps {self._regions[index].name!r}"
            )
        self._regions.insert(index, region)
        self._bases.insert(index, region.base)
        return region

    def replace(self, name: str, **changes: Any) -> Region:
        """Swap the named region for a copy with ``changes`` applied."""
        old = self.region(name)
        self._remove(name)
        new = replace(old, **changes)
        try:
            return self.add(new)
        except ConfigError:
            self.add(old)  # roll back so the map stays valid
            raise

    def _remove(self, name: str) -> None:
        for index, region in enumerate(self._regions):
            if region.name == name:
                del self._regions[index]
                del self._bases[index]
                return
        raise ConfigError(f"no region named {name!r}")

    # -- lookup ---------------------------------------------------------------
    @property
    def regions(self) -> tuple[Region, ...]:
        """All regions, sorted by base address."""
        return tuple(self._regions)

    def region(self, name: str) -> Region:
        """The region with the given name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise ConfigError(f"no region named {name!r}")

    def find(self, addr: int) -> Region:
        """The region containing ``addr``; raises when unmapped."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0 and self._regions[index].contains(addr):
            return self._regions[index]
        raise MemoryError_(f"unmapped address 0x{addr:08x}")

    def lookup(self, addr: int) -> Optional[Region]:
        """Like :meth:`find` but returns None for unmapped addresses."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0 and self._regions[index].contains(addr):
            return self._regions[index]
        return None

    def is_cacheable(self, addr: int) -> bool:
        """True when a cache may allocate a line for ``addr``."""
        return self.find(addr).cacheable

    def device_at(self, addr: int) -> Any:
        """The device backing ``addr``, or None for plain memory."""
        return self.find(addr).device

    def __iter__(self):
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
