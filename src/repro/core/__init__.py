"""The paper's contribution: wrappers, reduction, snoop logic, platforms."""

from .lock_register import LockRegister
from .platform import (
    LOCK_BASE,
    LOCKREG_BASE,
    MAILBOX_BASE,
    PRIVATE_BASE,
    SCRATCH_BASE,
    SHARED_BASE,
    SHARED_SIZE,
    Platform,
    PlatformConfig,
    classify_platform,
)
from .reduction import (
    PROTOCOL_STATES,
    ReductionResult,
    SharedMode,
    WrapperPolicy,
    reduce_protocols,
    system_states,
)
from .snoop_logic import (
    MAILBOX_ACK,
    MAILBOX_EMPTY,
    MAILBOX_POP,
    MAILBOX_STATUS,
    SnoopLogic,
    append_isr,
)
from .wrapper import Wrapper

__all__ = [
    "Platform",
    "PlatformConfig",
    "classify_platform",
    "Wrapper",
    "SnoopLogic",
    "append_isr",
    "LockRegister",
    "ReductionResult",
    "SharedMode",
    "WrapperPolicy",
    "reduce_protocols",
    "system_states",
    "PROTOCOL_STATES",
    "SHARED_BASE",
    "SHARED_SIZE",
    "LOCK_BASE",
    "LOCKREG_BASE",
    "SCRATCH_BASE",
    "MAILBOX_BASE",
    "PRIVATE_BASE",
    "MAILBOX_POP",
    "MAILBOX_ACK",
    "MAILBOX_STATUS",
    "MAILBOX_EMPTY",
]
