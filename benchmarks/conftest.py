"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
simulations are deterministic, so each benchmark runs a single round
(`pedantic`) and attaches the regenerated rows/series to
``benchmark.extra_info`` — run ``pytest benchmarks/ --benchmark-only -s``
to also see them printed.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(benchmark, title: str, text: str) -> None:
    """Print a regenerated artefact and attach it to the benchmark."""
    print(f"\n===== {title} =====")
    print(text)
    benchmark.extra_info["artifact"] = text
