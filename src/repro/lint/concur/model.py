"""The shared whole-program model behind the three concurrency rules.

One :class:`ConcurAnalysis` per lint run (cached on the
:class:`~repro.lint.core.Project`) builds:

* a **function index** over every def in the project (qualified names,
  generator-ness, delegation targets) — the entry points the ISSUE
  names (``Process`` bootstraps, ``yield from`` chains across the bus,
  fabric, controller and faults layers) all resolve through it;
* per-function **yield-point CFGs** (:mod:`.cfg`) with per-node
  resource events classified against the declarative registry
  (:mod:`.resources`): blocking acquires, releases, ownership
  transfers, classified waits, and ``yield from`` delegation;
* **interprocedural summaries**: ``waits_summary`` (which resources a
  call *may* block on, following ``yield from`` and generator
  tail-calls like ``return self.bus.transact(...)``) and
  ``must_waits`` (which resources every normal completion *must* have
  blocked on — the strong edges of the waits-for graph);
* the dataflow passes the rules consume: per-site may-held sets
  (``resource-release``, ``hold-across-yield``) and the static
  waits-for graph with ceiling/bypass breakers (``wait-cycle``).

Name resolution is by bare method name, merging all same-named defs —
a deliberate over-approximation (there are three ``transact``
implementations; a caller may reach any fabric).  Held-sets are
intraprocedural: every in-tree acquire/release pair is function-local
(or explicitly transferred), which the ``resource-release`` pass
itself enforces.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core import Project
from .cfg import CFG, EXCEPT, NORMAL, Node, walk_no_defs
from .resources import ResourceSpec, active_registry

__all__ = ["ConcurAnalysis", "FunctionInfo", "NodeEvents", "WaitEdge", "expr_text"]

#: modules the analyzer never inspects (the analyzer itself: its
#: docstrings and pattern tables are full of the shapes it hunts)
EXEMPT_PREFIXES = ("lint/",)

#: a held-resource key: (resource id, unparsed receiver text)
Key = Tuple[str, str]

#: yields of these kernel primitives never wait on another master
_NEUTRAL_YIELDS = ("timeout", "any_of", "event")


def expr_text(node: Optional[ast.AST]) -> str:
    """Canonical source text of an expression (receiver matching)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic trees
        return ""


def call_name(node: ast.AST) -> str:
    """The terminal name of a call (``self.bus.transact(...)`` -> ``transact``)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""


class NodeEvents:
    """The resource events one CFG node performs."""

    __slots__ = ("acquires", "releases", "transfers", "waits", "delegates", "unclassified")

    def __init__(self):
        #: [(key, line, blocking)] — acquire-method calls
        self.acquires: List[Tuple[Key, int, bool]] = []
        #: keys released by this node
        self.releases: Set[Key] = set()
        #: resource ids whose ownership this node hands to a new process
        self.transfers: Set[str] = set()
        #: resource id -> line of a classified blocking wait
        self.waits: Dict[str, int] = {}
        #: names this node delegates to (yield from / generator tail-call)
        self.delegates: Set[str] = set()
        #: the node blocks on something the model cannot classify
        self.unclassified = False


class FunctionInfo:
    """One def in the project, with its lazily built CFG."""

    __slots__ = ("module", "node", "qualname", "nested", "is_generator",
                 "has_delegates", "_cfg", "acquire_sites", "ceiling_stmts")

    def __init__(self, module, node, qualname: str, nested: bool):
        self.module = module
        self.node = node
        self.qualname = qualname
        self.nested = nested
        self.is_generator = False
        self.has_delegates = False
        for stmt in node.body:
            for sub in walk_no_defs(stmt):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    self.is_generator = True
                if isinstance(sub, ast.YieldFrom):
                    self.has_delegates = True
                if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Call):
                    self.has_delegates = True
        self._cfg: Optional[CFG] = None
        #: key -> first acquire line (for messages)
        self.acquire_sites: Dict[Key, int] = {}
        #: id()s of statements inside a ceiling-anchored loop
        self.ceiling_stmts: FrozenSet[int] = frozenset()

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def path(self) -> str:
        return self.module.path

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = CFG(self.node)
        return self._cfg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.path}:{self.qualname}>"


class WaitEdge:
    """One edge of the static waits-for graph.

    ``src`` is held (or, for ``strong`` provider edges, is being
    provided) while progress requires ``dst``.  ``ceiling`` marks waits
    inside a retry-ceiling loop — bounded, so a livelock diagnosis, not
    a silent deadlock; such an edge cannot close a reportable cycle.
    """

    __slots__ = ("src", "dst", "path", "line", "strong", "ceiling", "via")

    def __init__(self, src, dst, path, line, strong=False, ceiling=False, via=""):
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.strong = strong
        self.ceiling = ceiling
        self.via = via

    def describe(self) -> str:
        if self.strong:
            return (
                f"providing {self.src} must first block on {self.dst} "
                f"(provider {self.via}, {self.path}:{self.line})"
            )
        via = f" via {self.via}" if self.via else ""
        return (
            f"{self.src} is held while waiting on {self.dst}{via} "
            f"({self.path}:{self.line})"
        )


class ConcurAnalysis:
    """The whole-program concurrency model, shared by the three rules."""

    def __init__(self, project: Project, registry: Optional[Dict[str, ResourceSpec]] = None):
        self.project = project
        self.registry: Dict[str, ResourceSpec] = (
            dict(registry) if registry is not None else active_registry()
        )
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self._waits_memo: Dict[FunctionInfo, Dict[str, Tuple[str, int]]] = {}
        self._must_memo: Dict[FunctionInfo, Dict[str, Tuple[str, int]]] = {}
        self._held_memo: Dict[FunctionInfo, Dict[Node, FrozenSet[Key]]] = {}
        self._ceiling_anchors = frozenset(
            anchor for spec in self.registry.values() for anchor in spec.ceiling_anchors
        )
        self._collect()

    @classmethod
    def of(cls, project: Project) -> "ConcurAnalysis":
        cached = getattr(project, "_concur_analysis", None)
        if cached is None:
            cached = cls(project)
            project._concur_analysis = cached
        return cached

    # -- index construction ------------------------------------------------
    def _collect(self) -> None:
        for module in self.project.modules:
            if any(module.path.startswith(p) for p in EXEMPT_PREFIXES):
                continue
            self._collect_into(module, module.tree.body, "", nested=False)
        for fi in self.functions:
            self._attach_events(fi)

    def _collect_into(self, module, body, prefix: str, nested: bool) -> None:
        for item in body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + item.name
                fi = FunctionInfo(module, item, qual, nested)
                self.functions.append(fi)
                self.by_name.setdefault(item.name, []).append(fi)
                self._collect_into(module, item.body, qual + ".", nested=True)
            elif isinstance(item, ast.ClassDef):
                self._collect_into(module, item.body, prefix + item.name + ".", nested)
            else:
                for attr in ("body", "orelse", "finalbody"):
                    sub = getattr(item, attr, None)
                    if sub:
                        self._collect_into(module, sub, prefix, nested)
                for handler in getattr(item, "handlers", ()) or ():
                    self._collect_into(module, handler.body, prefix, nested)

    # -- event classification ----------------------------------------------
    def _attach_events(self, fi: FunctionInfo) -> None:
        cfg = fi.cfg
        for node in cfg.nodes:
            node.events = self._scan_node(node)
            for key, line, _blocking in node.events.acquires:
                fi.acquire_sites.setdefault(key, line)
        # Syntactic kill: a release anywhere inside a finally suite —
        # even under a guard like ``if held:`` — counts as releasing
        # the moment the suite is entered.  Applying it at fin_enter
        # (not just fin_exit) also covers exception edges raised by the
        # suite's own earlier statements.
        for node in cfg.nodes:
            if node.kind == "fin_exit" and node.fin_nodes:
                kills: Set[Key] = set()
                for inner in node.fin_nodes[1:]:
                    kills |= inner.events.releases
                node.fin_nodes[0].events.releases |= kills
                node.events.releases |= kills
        # Ceiling-anchored loops: waits inside are bounded re-requests.
        if self._ceiling_anchors:
            marked: Set[int] = set()
            for stmt in fi.node.body:
                for sub in walk_no_defs(stmt):
                    if isinstance(sub, (ast.While, ast.For)):
                        anchored = any(
                            call_name(inner) in self._ceiling_anchors
                            for inner in walk_no_defs(sub)
                            if isinstance(inner, ast.Call)
                        )
                        if anchored:
                            marked |= {id(inner) for inner in walk_no_defs(sub)}
            fi.ceiling_stmts = frozenset(marked)

    def _scan_node(self, node: Node) -> NodeEvents:
        ev = NodeEvents()
        if not node.scopes:
            return ev
        yielded_calls: Set[int] = set()
        for scope in node.scopes:
            for sub in walk_no_defs(scope):
                if isinstance(sub, ast.Yield) and isinstance(sub.value, ast.Call):
                    yielded_calls.add(id(sub.value))
        for scope in node.scopes:
            for sub in walk_no_defs(scope):
                if isinstance(sub, ast.Yield):
                    self._classify_yield(sub, ev)
                elif isinstance(sub, ast.YieldFrom):
                    name = call_name(sub.value)
                    if name:
                        ev.delegates.add(name)
                    else:
                        ev.unclassified = True
                elif isinstance(sub, ast.Return) and isinstance(sub.value, ast.Call):
                    name = call_name(sub.value)
                    if name:
                        ev.delegates.add(name)
                elif isinstance(sub, ast.Call):
                    self._classify_call(sub, ev, blocking=id(sub) in yielded_calls)
        return ev

    def _classify_yield(self, y: ast.Yield, ev: NodeEvents) -> None:
        value = y.value
        if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)):
            ev.unclassified = True
            return
        attr = value.func.attr
        receiver = expr_text(value.func.value)
        for spec in self.registry.values():
            if attr in spec.acquire_methods and spec.matches_receiver(receiver):
                ev.waits.setdefault(spec.id, value.lineno)
                return
        if attr == "all_of":
            found = False
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute):
                    for spec in self.registry.values():
                        if spec.wait_attr and sub.attr == spec.wait_attr:
                            ev.waits.setdefault(spec.id, value.lineno)
                            found = True
            if not found:
                ev.unclassified = True
            return
        if attr not in _NEUTRAL_YIELDS:
            ev.unclassified = True

    def _classify_call(self, call: ast.Call, ev: NodeEvents, blocking: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = expr_text(func.value)
        for spec in self.registry.values():
            if attr in spec.acquire_methods and spec.matches_receiver(receiver):
                ev.acquires.append(((spec.id, receiver), call.lineno, blocking))
            if attr in spec.release_methods and spec.matches_receiver(receiver):
                ev.releases.add((spec.id, receiver))
            if attr in spec.transfer_methods:
                ev.transfers.add(spec.id)

    # -- interprocedural summaries -------------------------------------------
    def _delegate_targets(self, name: str, origin: FunctionInfo) -> List[FunctionInfo]:
        return [
            target
            for target in self.by_name.get(name, ())
            if target is not origin and (target.is_generator or target.has_delegates)
        ]

    def waits_summary(
        self, fi: FunctionInfo, _stack: Optional[frozenset] = None
    ) -> Dict[str, Tuple[str, int]]:
        """Resources ``fi`` *may* block on (transitively), id -> one site."""
        memo = self._waits_memo.get(fi)
        if memo is not None:
            return memo
        stack = _stack or frozenset()
        if fi in stack:
            return {}
        stack = stack | {fi}
        result: Dict[str, Tuple[str, int]] = {}
        for node in fi.cfg.nodes:
            ev = node.events
            if ev is None:
                continue
            for sid, line in sorted(ev.waits.items()):
                result.setdefault(sid, (fi.path, line))
            for name in sorted(ev.delegates):
                for target in self._delegate_targets(name, fi):
                    for sid, site in self.waits_summary(target, stack).items():
                        result.setdefault(sid, site)
        self._waits_memo[fi] = result
        return result

    def _contributions(
        self, node: Node, fi: FunctionInfo, stack: frozenset
    ) -> Dict[str, Tuple[str, int]]:
        """Resources this node *must* block on before completing normally."""
        ev = node.events
        if ev is None:
            return {}
        result: Dict[str, Tuple[str, int]] = {
            sid: (fi.path, line) for sid, line in sorted(ev.waits.items())
        }
        for name in sorted(ev.delegates):
            targets = self._delegate_targets(name, fi)
            if not targets:
                continue
            # The callee is one of the same-named defs: only resources
            # every candidate must block on are guaranteed.
            merged: Optional[Dict[str, Tuple[str, int]]] = None
            for target in targets:
                one = self.must_waits(target, stack)
                if merged is None:
                    merged = dict(one)
                else:
                    merged = {sid: site for sid, site in merged.items() if sid in one}
            for sid, site in (merged or {}).items():
                result.setdefault(sid, site)
        return result

    def _must_forward(
        self, fi: FunctionInfo, stack: frozenset
    ) -> Dict[Node, Optional[Dict[str, Tuple[str, int]]]]:
        """Forward all-paths analysis: IN[node] = resources every path
        from entry to node has blocked on (None = unreachable)."""
        cfg = fi.cfg
        contrib = {node: self._contributions(node, fi, stack) for node in cfg.nodes}
        values: Dict[Node, Optional[Dict[str, Tuple[str, int]]]] = {
            node: None for node in cfg.nodes
        }
        values[cfg.entry] = {}
        work = [cfg.entry]
        while work:
            node = work.pop()
            current = values[node]
            if current is None:
                continue
            out = dict(current)
            for sid, site in contrib[node].items():
                out.setdefault(sid, site)
            for succ, _kind in node.succ:
                existing = values[succ]
                if existing is None:
                    values[succ] = dict(out)
                    work.append(succ)
                else:
                    met = {sid: site for sid, site in existing.items() if sid in out}
                    if met != existing:
                        values[succ] = met
                        work.append(succ)
        return values

    def must_waits(
        self, fi: FunctionInfo, _stack: Optional[frozenset] = None
    ) -> Dict[str, Tuple[str, int]]:
        """Resources every *normal* completion of ``fi`` blocked on."""
        memo = self._must_memo.get(fi)
        if memo is not None:
            return memo
        stack = _stack or frozenset()
        if fi in stack:
            return {}
        stack = stack | {fi}
        values = self._must_forward(fi, stack)
        result = values[fi.cfg.exit] or {}
        self._must_memo[fi] = result
        return result

    def must_at_providers(
        self, fi: FunctionInfo, spec: ResourceSpec
    ) -> Optional[Dict[str, Tuple[str, int]]]:
        """Resources every path to a provide-site of ``spec`` blocks on.

        Provide-sites are ``.succeed()`` calls for completion kinds and
        matching release calls for slot kinds.  Returns None when
        ``fi`` has no provide-site.
        """
        targets = [
            node for node in fi.cfg.nodes if self._provides(node, spec)
        ]
        if not targets:
            return None
        values = self._must_forward(fi, frozenset({fi}))
        merged: Optional[Dict[str, Tuple[str, int]]] = None
        for node in targets:
            at = values[node]
            if at is None:
                continue  # unreachable provide-site constrains nothing
            if merged is None:
                merged = dict(at)
            else:
                merged = {sid: site for sid, site in merged.items() if sid in at}
        return merged or {}

    def _provides(self, node: Node, spec: ResourceSpec) -> bool:
        if spec.kind == "completion":
            for scope in node.scopes:
                for sub in walk_no_defs(scope):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "succeed"
                    ):
                        return True
            return False
        if spec.kind == "slot":
            ev = node.events
            return ev is not None and any(key[0] == spec.id for key in ev.releases)
        return False

    # -- may-held dataflow ----------------------------------------------------
    def may_held(self, fi: FunctionInfo) -> Dict[Node, FrozenSet[Key]]:
        """IN[node] = resources possibly held when the node starts.

        Acquire gens apply on *normal* out-edges only (a blocking
        acquire that raises never granted); releases and transfers
        likewise.  The syntactic finally kill (see :mod:`.cfg`) applies
        on every out-edge of a ``fin_exit``.
        """
        memo = self._held_memo.get(fi)
        if memo is not None:
            return memo
        cfg = fi.cfg
        values: Dict[Node, Optional[FrozenSet[Key]]] = {node: None for node in cfg.nodes}
        values[cfg.entry] = frozenset()
        work = [cfg.entry]
        while work:
            node = work.pop()
            current = values[node]
            if current is None:
                continue
            ev = node.events
            normal_out = current
            if ev is not None:
                if ev.acquires:
                    normal_out = normal_out | {key for key, _line, _b in ev.acquires}
                if ev.releases:
                    normal_out = normal_out - ev.releases
                if ev.transfers:
                    normal_out = frozenset(
                        key for key in normal_out if key[0] not in ev.transfers
                    )
            except_out = current
            if node.kind == "fin_exit" and ev is not None and ev.releases:
                except_out = except_out - ev.releases
            for succ, kind in node.succ:
                flowed = normal_out if kind == NORMAL else except_out
                existing = values[succ]
                joined = flowed if existing is None else (existing | flowed)
                if joined != existing:
                    values[succ] = joined
                    work.append(succ)
        result = {
            node: (value if value is not None else frozenset())
            for node, value in values.items()
        }
        self._held_memo[fi] = result
        return result

    # -- the waits-for graph --------------------------------------------------
    def wait_edges(self) -> List[WaitEdge]:
        """Every edge of the static waits-for graph, deterministic order."""
        edges: List[WaitEdge] = []
        for fi in self.functions:
            held_in = None
            for node in fi.cfg.nodes:
                ev = node.events
                if ev is None:
                    continue
                waited: Dict[str, str] = {}
                for sid in sorted(ev.waits):
                    spec = self.registry.get(sid)
                    if spec is not None and spec.cross_master:
                        waited.setdefault(sid, "")
                for name in sorted(ev.delegates):
                    for target in self._delegate_targets(name, fi):
                        for sid in sorted(self.waits_summary(target)):
                            spec = self.registry.get(sid)
                            if spec is not None and spec.cross_master:
                                waited.setdefault(sid, name)
                if not waited:
                    continue
                if held_in is None:
                    held_in = self.may_held(fi)
                held = held_in.get(node) or frozenset()
                for key in sorted(held):
                    for sid, via in sorted(waited.items()):
                        if key[0] == sid:
                            continue
                        waited_spec = self.registry[sid]
                        ceiling = (
                            node.ast is not None
                            and id(node.ast) in fi.ceiling_stmts
                            and waited_spec.kind in ("arbiter", "slot")
                        )
                        edges.append(
                            WaitEdge(
                                key[0], sid, fi.path, node.line,
                                ceiling=ceiling, via=via,
                            )
                        )
        for spec in self.registry.values():
            for provider_name in spec.providers:
                for fi in self.by_name.get(provider_name, []):
                    must = self.must_at_providers(fi, spec)
                    if not must:
                        continue
                    for sid, site in sorted(must.items()):
                        if sid == spec.id:
                            continue
                        edges.append(
                            WaitEdge(
                                spec.id, sid, site[0], site[1],
                                strong=True, via=fi.qualname,
                            )
                        )
        edges.sort(key=lambda e: (e.src, e.dst, not e.strong, e.ceiling, e.path, e.line))
        return edges
