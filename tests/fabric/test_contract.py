"""The fabric contract: registry, capabilities, snapshots, fingerprints."""

import pytest

from repro.bus.asb import AsbBus
from repro.core.platform import FABRIC_NAMES, Platform, PlatformConfig
from repro.cpu.presets import preset_generic
from repro.errors import ConfigError
from repro.fabric import (
    AtomicFabric,
    DirectoryFabric,
    IFabric,
    SplitBus,
    fabric_fingerprint,
    fabric_names,
    get_fabric,
    make_fabric,
)


def _two_core_config(**overrides):
    cores = (
        preset_generic("p0", "MESI", cache_size=1024),
        preset_generic("p1", "MESI", cache_size=1024),
    )
    return PlatformConfig(cores=cores, hardware_coherence=True, **overrides)


class TestRegistry:
    def test_every_platform_fabric_name_is_registered(self):
        assert set(FABRIC_NAMES) <= set(fabric_names())

    def test_lookup_returns_the_classes(self):
        assert get_fabric("atomic") is AtomicFabric
        assert get_fabric("split") is SplitBus
        assert get_fabric("directory") is DirectoryFabric

    def test_unknown_fabric_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown fabric"):
            get_fabric("crossbar")

    def test_unknown_fabric_rejected_by_platform_config(self):
        with pytest.raises(ConfigError, match="unknown fabric"):
            _two_core_config(fabric="crossbar")

    def test_every_fabric_is_an_ifabric(self):
        for name in fabric_names():
            assert issubclass(get_fabric(name), IFabric)


class TestCapabilities:
    def test_atomic_is_broadcast_atomic(self):
        caps = AtomicFabric.capabilities()
        assert caps.broadcast and caps.atomic_tenure
        assert not caps.pipelined and not caps.point_to_point

    def test_split_pipelines_but_still_broadcasts(self):
        caps = SplitBus.capabilities()
        assert caps.broadcast and caps.pipelined
        assert not caps.atomic_tenure

    def test_directory_is_point_to_point(self):
        caps = DirectoryFabric.capabilities()
        assert caps.point_to_point and not caps.broadcast


class TestFingerprints:
    def test_fingerprints_name_themselves(self):
        for name in fabric_names():
            fingerprint = fabric_fingerprint(name)
            assert fingerprint["name"] == name
            assert "version" in fingerprint

    def test_split_fingerprint_includes_the_window(self):
        assert "max_inflight" in fabric_fingerprint("split")

    def test_directory_fingerprint_includes_the_banks(self):
        fingerprint = fabric_fingerprint("directory")
        assert "banks" in fingerprint and "lookup_cycles" in fingerprint


class TestPlatformWiring:
    @pytest.mark.parametrize("name", FABRIC_NAMES)
    def test_platform_builds_on_every_fabric(self, name):
        platform = Platform(_two_core_config(fabric=name))
        assert platform.bus.name == name
        assert isinstance(platform.bus, AsbBus)  # shared bus surface

    def test_default_fabric_is_the_paper_faithful_atomic(self):
        platform = Platform(_two_core_config())
        assert platform.bus.name == "atomic"

    def test_make_fabric_rejects_unknown_names(self):
        platform = Platform(_two_core_config())
        with pytest.raises(ConfigError, match="unknown fabric"):
            make_fabric(
                "crossbar",
                platform.sim,
                platform.bus.clock,
                platform.memory_controller,
                arbiter_factory=lambda: None,
            )

    @pytest.mark.parametrize("name", FABRIC_NAMES)
    def test_snapshot_has_the_common_surface(self, name):
        platform = Platform(_two_core_config(fabric=name))
        snapshot = platform.bus.snapshot()
        assert snapshot["fabric"] == name
        assert snapshot["completions"] == 0
        assert "arbiter" in snapshot and "inflight" in snapshot

    @pytest.mark.parametrize("name", FABRIC_NAMES)
    def test_arbitration_disciplines_compose_with_every_fabric(self, name):
        for discipline in ("fcfs", "priority", "round-robin"):
            platform = Platform(
                _two_core_config(fabric=name, arbitration=discipline)
            )
            assert platform.bus.arbiter.grants == 0


class TestBatchEngineRefusal:
    @pytest.mark.parametrize("name", ("split", "directory"))
    def test_batch_engine_refuses_non_atomic_fabrics(self, name):
        from repro.engines import get_engine

        with pytest.raises(ConfigError, match="atomic snoopy bus only"):
            get_engine("batch").run(_two_core_config(fabric=name), [])
