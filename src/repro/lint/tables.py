"""``protocol-tables`` — static soundness proofs over the protocol FSMs.

The dynamic model checker (:mod:`repro.verify.model_check`) explores
pairs of caches through the simulator; these validators need no
simulation at all.  They import each protocol class and check the
transition *tables* directly:

* **closure** — every (state, snooped-op) pair, every fill combination
  and every processor hit either returns a well-formed result whose
  target state belongs to the protocol's declared state set, or raises
  :class:`~repro.errors.ProtocolError` (the explicit "illegal input"
  marker).  Any other exception, a missing return, or a foreign target
  state is a table bug.
* **side-condition sanity** — a drain demand only ever comes from a
  dirty state; cache-to-cache supply only from protocols that declare
  ``supports_supply``; update application only in response to an
  ``UPDATE`` snoop.
* **reachability** — every declared state is reachable from reset
  (INVALID) through some sequence of fills, hits and snoops.  A state
  that cannot be reached is dead weight at best and usually a sign a
  transition was dropped.
* **reduction algebra** — over all processor pairs drawn from
  {MEI, MSI, MESI, MOESI, None}: reduction is commutative (same system
  protocol, per-processor policies swapped with the operands), the
  integrated state set equals the intersection of the operand state
  sets and is contained in each operand's; homogeneous pairs reduce to
  themselves with identity wrappers.  The same properties are checked
  N-way over every triple: the system protocol is invariant under
  operand permutation (policies permuting with the operands), the
  integrated state set is the three-way intersection, and pairwise
  folding agrees with the direct 3-way reduction (associativity, via
  the canonical system-protocol names).  Dragon integrates only with
  itself and refuses mixed pairs symmetrically; SI (write-through
  lines) is outside the wrapper algebra and is refused symmetrically
  too.

The validator functions take the objects under test as parameters so
the mutation tests in ``tests/lint`` can hand them deliberately broken
tables and assert rejection.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from .core import Finding, Project, Rule, register

__all__ = ["ProtocolTablesRule", "validate_protocol", "validate_reduction"]


def validate_protocol(proto) -> List[str]:
    """Problems with one protocol instance's transition table ([] = sound)."""
    from ..cache.line import State
    from ..cache.protocols.base import SnoopOp, SnoopOutcome, WriteAction
    from ..errors import ProtocolError

    problems: List[str] = []
    states = proto.states
    name = proto.name

    if not states:
        return [f"{name}: empty state set"]
    for state in states:
        if not isinstance(state, State):
            problems.append(f"{name}: non-State entry {state!r} in state set")
    if State.INVALID not in states:
        problems.append(f"{name}: reset state INVALID missing from state set")
    if problems:
        return problems  # the remaining checks assume a sane state set

    reached = {State.INVALID}
    frontier = [State.INVALID]

    def reach(target) -> None:
        if isinstance(target, State) and target in states and target not in reached:
            reached.add(target)
            frontier.append(target)

    # -- fills (edges out of INVALID) -------------------------------------
    for exclusive in (False, True):
        for shared in (False, True):
            label = f"fill(exclusive={exclusive}, shared={shared})"
            try:
                result = proto.fill_state(exclusive, shared)
            except ProtocolError:
                continue  # explicitly illegal fill (SI/Dragon RWITM)
            except Exception as exc:  # noqa: BLE001 - any other escape is a bug
                problems.append(f"{name}: {label} raised {type(exc).__name__}: {exc}")
                continue
            if not isinstance(result, State) or result not in states:
                problems.append(f"{name}: {label} -> {result!r} outside state set")
            elif result is State.INVALID:
                problems.append(f"{name}: {label} allocates in INVALID")
            else:
                reach(result)

    # -- per-state closure, breadth-first so reachability falls out -------
    while frontier:
        state = frontier.pop()
        label = f"read_hit({state.name})"
        try:
            result = proto.read_hit(state)
        except ProtocolError:
            pass
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{name}: {label} raised {type(exc).__name__}: {exc}")
        else:
            if not isinstance(result, State) or result not in states:
                problems.append(f"{name}: {label} -> {result!r} outside state set")
            else:
                reach(result)

        label = f"write_hit({state.name})"
        try:
            result = proto.write_hit(state)
        except ProtocolError:
            pass
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{name}: {label} raised {type(exc).__name__}: {exc}")
        else:
            ok = (
                isinstance(result, tuple)
                and len(result) == 2
                and isinstance(result[0], State)
                and result[0] in states
                and isinstance(result[1], WriteAction)
            )
            if not ok:
                problems.append(
                    f"{name}: {label} -> {result!r} is not a "
                    "(state-in-set, WriteAction) pair"
                )
            else:
                reach(result[0])

        for op in SnoopOp:
            label = f"snoop({state.name}, {op.name})"
            try:
                outcome = proto.snoop(state, op)
            except ProtocolError:
                continue  # explicitly illegal input
            except Exception as exc:  # noqa: BLE001
                problems.append(f"{name}: {label} raised {type(exc).__name__}: {exc}")
                continue
            if not isinstance(outcome, SnoopOutcome):
                problems.append(f"{name}: {label} -> {outcome!r} (not a SnoopOutcome)")
                continue
            if not isinstance(outcome.next_state, State) or (
                outcome.next_state not in states
            ):
                problems.append(
                    f"{name}: {label} targets {outcome.next_state!r} "
                    "outside the protocol's state set"
                )
            else:
                reach(outcome.next_state)
            if outcome.drain and not state.is_dirty:
                problems.append(
                    f"{name}: {label} demands a drain from clean state "
                    f"{state.name}"
                )
            if outcome.supply and not proto.supports_supply:
                problems.append(
                    f"{name}: {label} supplies cache-to-cache but the "
                    "protocol declares supports_supply=False"
                )
            if outcome.apply_update and op is not SnoopOp.UPDATE:
                problems.append(
                    f"{name}: {label} applies an update on a non-UPDATE snoop"
                )

    unreachable = states - reached
    for state in sorted(unreachable, key=lambda s: s.name):
        problems.append(
            f"{name}: state {state.name} is unreachable from reset (INVALID)"
        )
    return problems


#: the invalidation protocols the wrapper algebra integrates, plus a
#: no-coherence-hardware processor (None forces the MEI treatment)
_ALGEBRA_MEMBERS: Sequence[Optional[str]] = ("MEI", "MSI", "MESI", "MOESI", None)
_REFUSED_MEMBERS: Sequence[str] = ("DRAGON", "SI")


def validate_reduction(
    reduce_fn: Optional[Callable] = None,
    states_map=None,
    system_states_fn: Optional[Callable] = None,
) -> List[str]:
    """Problems with the reduction algebra ([] = consistent).

    The three collaborators default to the shipped implementation and
    are injectable so mutation tests can break one at a time.
    """
    from ..core import reduction as _reduction
    from ..errors import IntegrationError

    reduce_fn = reduce_fn or _reduction.reduce_protocols
    states_map = states_map if states_map is not None else _reduction.PROTOCOL_STATES
    system_states_fn = system_states_fn or _reduction.system_states

    problems: List[str] = []

    def effective(member: Optional[str]):
        return states_map["MEI" if member is None else member]

    def label(member: Optional[str]) -> str:
        return "none" if member is None else member

    for a in _ALGEBRA_MEMBERS:
        for b in _ALGEBRA_MEMBERS:
            pair = f"reduce({label(a)}, {label(b)})"
            try:
                forward = reduce_fn([a, b])
                backward = reduce_fn([b, a])
            except IntegrationError as exc:
                problems.append(f"{pair}: refused a legal pair: {exc}")
                continue
            if forward.system_protocol != backward.system_protocol:
                problems.append(
                    f"{pair}: not commutative — {forward.system_protocol} vs "
                    f"{backward.system_protocol} when swapped"
                )
            if forward.policies != tuple(reversed(backward.policies)):
                problems.append(
                    f"{pair}: per-processor policies do not swap with the "
                    "operands"
                )
            expected = effective(a) & effective(b)
            actual = system_states_fn([a, b])
            if actual != system_states_fn([b, a]):
                problems.append(f"{pair}: system_states is not commutative")
            if actual != expected:
                problems.append(
                    f"{pair}: integrated state set "
                    f"{sorted(s.name for s in actual)} != operand "
                    f"intersection {sorted(s.name for s in expected)}"
                )
            if not (actual <= effective(a) and actual <= effective(b)):
                problems.append(
                    f"{pair}: integrated states escape an operand's state set"
                )
            system = forward.system_protocol
            if system not in states_map:
                problems.append(f"{pair}: unknown system protocol {system!r}")
            elif not actual <= states_map[system]:
                problems.append(
                    f"{pair}: system protocol {system} cannot represent the "
                    "integrated state set"
                )
            if a == b and a is not None:
                if system != a:
                    problems.append(
                        f"{pair}: homogeneous pair reduced to {system}, "
                        f"expected {a}"
                    )
                if not all(p.is_identity for p in forward.policies):
                    problems.append(
                        f"{pair}: homogeneous pair needs non-identity wrappers"
                    )

    # -- N-way folds: the algebra must not be secretly pairwise -----------
    # Every triple over the algebra members, under every operand order:
    # the system protocol is permutation-invariant, the per-processor
    # policies permute with the operands, the integrated state set is
    # the three-way intersection, and folding pairwise (reduce the
    # first two, then reduce their system protocol with the third)
    # lands on the same system protocol as the direct 3-way reduction.
    from itertools import permutations, product

    for triple in product(_ALGEBRA_MEMBERS, repeat=3):
        name3 = f"reduce({', '.join(label(m) for m in triple)})"
        try:
            direct = reduce_fn(list(triple))
        except IntegrationError as exc:
            problems.append(f"{name3}: refused a legal triple: {exc}")
            continue
        expected = effective(triple[0]) & effective(triple[1]) & effective(triple[2])
        actual = system_states_fn(list(triple))
        if actual != expected:
            problems.append(
                f"{name3}: integrated state set "
                f"{sorted(s.name for s in actual)} != three-way "
                f"intersection {sorted(s.name for s in expected)}"
            )
        for perm in permutations(range(3)):
            reordered = [triple[i] for i in perm]
            try:
                permuted = reduce_fn(reordered)
            except IntegrationError as exc:
                problems.append(
                    f"{name3}: permutation {reordered} refused: {exc}"
                )
                continue
            if permuted.system_protocol != direct.system_protocol:
                problems.append(
                    f"{name3}: system protocol depends on operand order — "
                    f"{direct.system_protocol} vs {permuted.system_protocol}"
                )
            if permuted.policies != tuple(direct.policies[i] for i in perm):
                problems.append(
                    f"{name3}: per-processor policies do not permute with "
                    "the operands"
                )
        try:
            folded = reduce_fn(
                [reduce_fn(list(triple[:2])).system_protocol, triple[2]]
            )
        except IntegrationError as exc:
            problems.append(f"{name3}: pairwise fold refused: {exc}")
        else:
            if folded.system_protocol != direct.system_protocol:
                problems.append(
                    f"{name3}: pairwise fold gives "
                    f"{folded.system_protocol}, direct 3-way gives "
                    f"{direct.system_protocol} — the algebra is not "
                    "associative"
                )
        if len(set(triple)) == 1 and triple[0] is not None:
            if direct.system_protocol != triple[0] or not all(
                p.is_identity for p in direct.policies
            ):
                problems.append(
                    f"{name3}: homogeneous triple must reduce to itself "
                    "with identity wrappers"
                )

    # -- protocols outside the algebra must be refused symmetrically ------
    for outsider in _REFUSED_MEMBERS:
        for member in (*_ALGEBRA_MEMBERS, *_REFUSED_MEMBERS):
            if outsider == "DRAGON" and member == "DRAGON":
                continue  # homogeneous Dragon is legal, checked below
            for ordered in ([outsider, member], [member, outsider]):
                pair = f"reduce({label(ordered[0])}, {label(ordered[1])})"
                try:
                    reduce_fn(ordered)
                except IntegrationError:
                    continue
                except Exception as exc:  # noqa: BLE001
                    problems.append(
                        f"{pair}: raised {type(exc).__name__} instead of "
                        "IntegrationError"
                    )
                else:
                    problems.append(
                        f"{pair}: accepted a pair outside the wrapper algebra"
                    )
    try:
        dragon = reduce_fn(["DRAGON", "DRAGON"])
    except Exception as exc:  # noqa: BLE001
        problems.append(
            f"reduce(DRAGON, DRAGON): homogeneous Dragon must be legal "
            f"(raised {type(exc).__name__}: {exc})"
        )
    else:
        if dragon.system_protocol != "DRAGON" or not all(
            p.is_identity for p in dragon.policies
        ):
            problems.append(
                "reduce(DRAGON, DRAGON): expected identity wrappers and a "
                "DRAGON system protocol"
            )
    return problems


@register
class ProtocolTablesRule(Rule):
    """Run the table and algebra validators over the shipped protocols."""

    id = "protocol-tables"
    description = (
        "protocol transition tables are closed, in-set, reachable; the "
        "reduction algebra is commutative and intersection-shaped"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        # Only meaningful when the protocol package is part of the run
        # (fixture-only projects in the lint tests skip it).
        if project.module("cache/protocols/__init__.py") is None:
            return
        from ..cache.protocols import PROTOCOLS

        for name in PROTOCOLS:
            proto = PROTOCOLS[name]()
            path = f"cache/protocols/{name.lower()}.py"
            module = project.module(path)
            anchor = module.path if module is not None else path
            for problem in validate_protocol(proto):
                yield self.finding(anchor, 1, problem)
        reduction_module = project.module("core/reduction.py")
        anchor = (
            reduction_module.path
            if reduction_module is not None
            else "core/reduction.py"
        )
        for problem in validate_reduction():
            yield self.finding(anchor, 1, problem)
