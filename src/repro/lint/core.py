"""The static-analysis framework: rules, findings, suppressions.

``repro lint`` complements the *dynamic* verification layers (the
runtime coherence checker, the exhaustive model checker, the fault
matrix) with checks that need no simulation at all: AST passes over the
package source catch simulator hazards (nondeterministic iteration,
unslotted hot-path classes, unguarded trace emits, bad process yields,
fault proxies that silently bypass injection), and table validators
import the protocol FSMs and prove their transition tables sound.

The pieces:

* :class:`Finding` — one diagnostic, anchored to a file and line.
* :class:`Rule` — a registered check.  AST rules subclass
  :class:`AstRule` and inspect one parsed module at a time; whole-
  project rules (the table validators, the proxy-coverage check)
  subclass :class:`Rule` directly and see the :class:`Project`.
* :class:`Project` / :class:`ModuleSource` — the parsed source tree,
  with per-module suppression tables and lazily built AST parent links.
* ``# repro: lint-ok[rule-id]`` — the inline suppression syntax.  A
  suppression names the rule(s) it silences and applies to its own line
  (or, on a comment-only line, to the next line).  Blanket or malformed
  suppressions are themselves findings, as are suppressions that no
  longer silence anything — the repo can never accumulate dead waivers.

Running everything::

    from repro.lint import run_rules, load_project
    findings = run_rules(load_project())
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Severity",
    "Finding",
    "ModuleSource",
    "Project",
    "Rule",
    "AstRule",
    "RULES",
    "register",
    "load_project",
    "run_rules",
    "SUPPRESSION_RULE_ID",
]

#: findings about the suppression comments themselves use this rule id
SUPPRESSION_RULE_ID = "suppression"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok(?:\[([^\]]*)\])?")


class Severity(Enum):
    """How a finding affects the exit code (errors fail the run)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR

    @property
    def key(self) -> Tuple[str, str, str]:
        """Line-number-insensitive identity, used by baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """``path:line: [severity] rule: message`` — one line per finding."""
        return (
            f"{self.path}:{self.line}: [{self.severity.value}] "
            f"{self.rule}: {self.message}"
        )


class ModuleSource:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, text: str):
        #: path relative to the project root, POSIX-style (stable in reports)
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        #: line -> rule ids suppressed on that line ("*" never appears:
        #: blanket suppressions are rejected at parse time)
        self.suppressions: Dict[int, Set[str]] = {}
        #: (line, rule) pairs that actually silenced a finding
        self.used_suppressions: Set[Tuple[int, str]] = set()
        #: findings about malformed suppression comments
        self.suppression_findings: List[Finding] = []
        self._parse_suppressions()

    # -- suppressions ------------------------------------------------------
    def _parse_suppressions(self) -> None:
        # Tokenize so only genuine comments count — a docstring that
        # *documents* the lint-ok syntax must not create a waiver.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught it
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            ids = match.group(1)
            rules = [r.strip() for r in (ids or "").split(",") if r.strip()]
            if not rules:
                self.suppression_findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE_ID,
                        path=self.path,
                        line=lineno,
                        message=(
                            "blanket suppression: lint-ok must name the "
                            "rule(s) it silences, e.g. lint-ok[slots]"
                        ),
                    )
                )
                continue
            # A comment-only line suppresses the next line; a trailing
            # comment suppresses its own line.
            line_text = self.text.splitlines()[lineno - 1]
            own_line = line_text.lstrip().startswith("#")
            target = lineno + 1 if own_line else lineno
            self.suppressions.setdefault(target, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        """True (and mark used) when an inline waiver covers ``finding``."""
        rules = self.suppressions.get(finding.line)
        if rules and finding.rule in rules:
            self.used_suppressions.add((finding.line, finding.rule))
            return True
        return False

    def unused_suppression_findings(
        self, known_rules: Optional[Set[str]] = None
    ) -> List[Finding]:
        """A warning per waiver that silenced nothing this run.

        Waivers naming a rule outside ``known_rules`` are excluded —
        they are reported separately (as errors, not unused warnings).
        """
        findings = []
        for line, rules in sorted(self.suppressions.items()):
            for rule in sorted(rules):
                if known_rules is not None and rule not in known_rules:
                    continue
                if (line, rule) not in self.used_suppressions:
                    findings.append(
                        Finding(
                            rule=SUPPRESSION_RULE_ID,
                            path=self.path,
                            line=line,
                            message=f"unused suppression for rule {rule!r}",
                            severity=Severity.WARNING,
                        )
                    )
        return findings

    def unknown_suppression_findings(self, known_rules: Set[str]) -> List[Finding]:
        """An error per waiver naming a rule that does not exist.

        A typo'd waiver (``lint-ok[hold-accross-yield]``) would
        otherwise sit dead forever while the finding it meant to
        silence fails the run — or worse, silently stop waiving after
        a rule rename.
        """
        findings = []
        for line, rules in sorted(self.suppressions.items()):
            for rule in sorted(rules):
                if rule not in known_rules:
                    findings.append(
                        Finding(
                            rule=SUPPRESSION_RULE_ID,
                            path=self.path,
                            line=line,
                            message=(
                                f"suppression names unknown rule {rule!r} "
                                f"(no such rule is registered)"
                            ),
                        )
                    )
        return findings

    # -- AST helpers -------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleSource {self.path}>"


@dataclass
class Project:
    """The file set one lint run inspects."""

    root: Path
    modules: List[ModuleSource] = field(default_factory=list)

    def module(self, path_suffix: str) -> Optional[ModuleSource]:
        """The module whose path ends with ``path_suffix`` (or None)."""
        for mod in self.modules:
            if mod.path.endswith(path_suffix):
                return mod
        return None


def load_project(paths: Optional[Sequence[str]] = None) -> Project:
    """Parse the package source into a :class:`Project`.

    With no ``paths`` the package's own source tree (``src/repro``) is
    used, located relative to this file so the lint run works from any
    working directory.  Files under the package root always get the
    same package-relative label regardless of how they were named on
    the command line — baselines and waiver paths stay stable across
    ``repro lint``, ``repro lint src/repro/bus`` and ``--changed-only``
    runs.
    """
    package_root = Path(__file__).resolve().parents[1]  # .../src/repro
    if paths:
        files: List[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
        root = Path(paths[0])
        root = root if root.is_dir() else root.parent
    else:
        root = package_root
        files = sorted(root.rglob("*.py"))
    project = Project(root=root)
    seen: Set[str] = set()
    for file in files:
        resolved = file.resolve()
        try:
            label = resolved.relative_to(package_root).as_posix()
        except ValueError:
            try:
                label = resolved.relative_to(root.resolve()).as_posix()
            except ValueError:
                label = file.as_posix()
        if label in seen:  # a file named twice on the command line
            continue
        seen.add(label)
        project.modules.append(ModuleSource(label, file.read_text()))
    return project


class Rule:
    """Base class: one registered static check.

    Subclasses set ``id``, ``description`` and ``severity`` and override
    :meth:`check`.  Path anchoring is the rule's job; the framework
    applies suppressions and severity afterwards.
    """

    id: str = "?"
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, project: Project) -> Iterable[Finding]:
        """Yield findings over the whole project."""
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        """A finding attributed to this rule."""
        return Finding(
            rule=self.id, path=path, line=line, message=message,
            severity=self.severity,
        )


class AstRule(Rule):
    """A rule that inspects one parsed module at a time."""

    #: path fragments (POSIX) this rule never applies to
    exempt_paths: Tuple[str, ...] = ()

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if any(fragment in module.path for fragment in self.exempt_paths):
                continue
            yield from self.visit_module(module)

    def visit_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


#: the rule registry, id -> instance, in registration order
RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and add to :data:`RULES`."""
    instance = cls()
    if instance.id in RULES:
        raise ValueError(f"duplicate lint rule id {instance.id!r}")
    RULES[instance.id] = instance
    return cls


def run_rules(
    project: Project,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run (a subset of) the registered rules and apply suppressions.

    Returns the surviving findings sorted by (path, line, rule);
    includes the suppression hygiene findings (malformed waivers always,
    unused waivers only when every rule ran — a partial run cannot tell
    a dead waiver from one whose rule was skipped).
    """
    # Import for registration side effects; deferred to avoid a cycle at
    # package import time (rule modules import this one).
    from . import rules as _rules  # noqa: F401  (registration import)

    if rule_ids is None:
        selected = list(RULES.values())
    else:
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            raise KeyError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
                f"registered: {', '.join(RULES)}"
            )
        selected = [RULES[r] for r in rule_ids]
    findings: List[Finding] = []
    modules_by_path = {m.path: m for m in project.modules}
    for rule in selected:
        for finding in rule.check(project):
            module = modules_by_path.get(finding.path)
            if module is not None and module.is_suppressed(finding):
                continue
            findings.append(finding)
    known_rules = set(RULES) | {SUPPRESSION_RULE_ID}
    for module in project.modules:
        findings.extend(module.suppression_findings)
        findings.extend(module.unknown_suppression_findings(known_rules))
        if rule_ids is None:
            findings.extend(module.unused_suppression_findings(known_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
