"""Unit tests for the instruction set definitions."""

import pytest

from repro.cpu.isa import NUM_REGS, OPCODES, Instr, validate_instr
from repro.errors import IsaError


class TestValidation:
    def test_known_opcodes_pass(self):
        for op in ("LI", "ADD", "LD", "ST", "BEQ", "DCBF", "HALT"):
            validate_instr(Instr(op))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            validate_instr(Instr("FROB"))

    def test_register_range_enforced(self):
        with pytest.raises(IsaError):
            validate_instr(Instr("ADD", rd=NUM_REGS))
        with pytest.raises(IsaError):
            validate_instr(Instr("ADD", ra=-1))

    def test_negative_delay_rejected(self):
        with pytest.raises(IsaError):
            validate_instr(Instr("DELAY", imm=-5))

    def test_opcode_set_is_complete(self):
        # ISA surface check: additions must be intentional.
        assert len(OPCODES) == 32


class TestProperties:
    def test_branches_flagged(self):
        assert Instr("BEQ").is_branch
        assert Instr("JMP").is_branch
        assert Instr("JR").is_branch
        assert not Instr("ADD").is_branch

    def test_render_forms(self):
        assert Instr("LI", rd=1, imm=0x10).render() == "LI r1, 0x10"
        assert Instr("LD", rd=2, ra=3, imm=4).render() == "LD r2, [r3+4]"
        assert Instr("ST", rb=2, ra=3).render() == "ST r2, [r3+0]"
        assert "@" in Instr("BEQ", ra=1, rb=2, target="loop").render()
        assert Instr("HALT").render() == "HALT"

    def test_instr_is_immutable(self):
        instr = Instr("NOP")
        with pytest.raises(AttributeError):
            instr.op = "ADD"
