"""Software synchronization: locks and the software coherence solution."""

from .barrier import SenseBarrier
from .locks import BakeryLock, HwLock, Lock, SwapLock, TurnLock
from .software_coherence import (
    drain_instruction_count,
    emit_drain_block,
    emit_invalidate_block,
)

__all__ = [
    "Lock",
    "TurnLock",
    "SwapLock",
    "HwLock",
    "BakeryLock",
    "SenseBarrier",
    "emit_drain_block",
    "emit_invalidate_block",
    "drain_instruction_count",
]
