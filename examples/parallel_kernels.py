#!/usr/bin/env python3
"""Parallel application kernels across the three coherence solutions.

Runs the library's three shared-memory kernels — parallel reduction,
1-D Jacobi relaxation, and a token ring — on heterogeneous platforms,
verifying every numeric result against a Python reference and showing
how much the paper's transparent hardware coherence buys over the
manual drain/invalidate discipline.

Run:  python examples/parallel_kernels.py
"""

from repro.cpu import preset_arm920t, preset_powerpc755
from repro.workloads import run_jacobi, run_reduction, run_token_ring


def show(name, runner, **kwargs):
    print(f"-- {name} --")
    baseline = None
    for solution in ("disabled", "software", "proposed"):
        result = runner(solution=solution, **kwargs)
        status = "ok" if result.correct else "WRONG RESULT"
        if baseline is None:
            baseline = result.elapsed_ns
        print(
            f"  {solution:<10} {result.elapsed_ns:>8} ns  "
            f"ratio={result.elapsed_ns / baseline:5.3f}  "
            f"result={result.value} (expected {result.expected})  {status}"
        )
        assert result.correct
    print()


def main():
    show("parallel reduction, 2 cores x 32 words each", run_reduction,
         n_cores=2, n_words=64)
    show("1-D Jacobi, 2 cores x 16 cells, 4 sweeps", run_jacobi,
         n_cores=2, n_cells=32, sweeps=4)

    print("-- token ring on the paper's PF2 platform --")
    cores = (preset_powerpc755(), preset_arm920t())
    result = run_token_ring(2, laps=4, cores=cores)
    hops = 2 * 4
    print(
        f"  {hops} hops in {result.elapsed_ns} ns "
        f"({result.elapsed_ns // hops} ns/hop), token={result.value}  "
        f"{'ok' if result.correct else 'WRONG'}"
    )
    assert result.correct


if __name__ == "__main__":
    main()
