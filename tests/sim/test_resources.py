"""Unit tests for the FIFO mutex."""

import pytest

from repro.errors import SimulationError
from repro.sim import Mutex, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_uncontended_acquire_is_immediate(sim):
    mutex = Mutex(sim)
    log = []

    def proc():
        yield mutex.acquire()
        log.append(sim.now)
        mutex.release()

    sim.process(proc())
    sim.run()
    assert log == [0]
    assert not mutex.locked


def test_fifo_ordering(sim):
    mutex = Mutex(sim)
    order = []

    def worker(tag, hold):
        yield mutex.acquire()
        order.append(tag)
        yield sim.timeout(hold)
        mutex.release()

    for tag in ("a", "b", "c"):
        sim.process(worker(tag, 10))
    sim.run()
    assert order == ["a", "b", "c"]


def test_contention_counted(sim):
    mutex = Mutex(sim)

    def worker():
        yield mutex.acquire()
        yield sim.timeout(5)
        mutex.release()

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert mutex.acquisitions == 2
    assert mutex.contentions == 1


def test_release_unheld_raises(sim):
    mutex = Mutex(sim)
    with pytest.raises(SimulationError):
        mutex.release()


def test_waiting_count(sim):
    mutex = Mutex(sim)
    mutex.acquire()
    mutex.acquire()
    mutex.acquire()
    assert mutex.locked
    assert mutex.waiting == 2


def test_handoff_keeps_lock_held(sim):
    mutex = Mutex(sim)
    state = []

    def first():
        yield mutex.acquire()
        yield sim.timeout(5)
        mutex.release()
        state.append(mutex.locked)  # handed to second, still locked

    def second():
        yield mutex.acquire()
        mutex.release()

    sim.process(first())
    sim.process(second())
    sim.run()
    assert state == [True]
