"""``slots`` — hot-path classes must declare ``__slots__``.

PR 1 and PR 2 each recovered double-digit percentages of simulator
throughput by slotting the per-event / per-transaction classes; this
rule keeps that from regressing.  It applies only to the *hot modules* —
the files on the per-access critical path (events, trace records, bus
vocabulary, cache lines/arrays, tenure state).  Within a hot module
every class must either:

* declare ``__slots__`` in its body,
* be a ``@dataclass(slots=True)``,
* subclass an exempt base (``Enum``/``Exception`` families — both are
  framework-managed and never per-event), or
* carry an explicit ``# repro: lint-ok[slots]`` waiver (appropriate for
  the one-per-platform singletons like ``Simulator`` and ``Tracer``,
  where a ``__dict__`` costs nothing per event).

A class that declares ``__slots__`` but subclasses an unslotted local
class still gets a ``__dict__``; the rule checks each class on its own
because the fix (slot the base, or ``__slots__ = ()`` for pure
interfaces) is per-class anyway.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import AstRule, Finding, ModuleSource, register

__all__ = ["SlotsRule", "HOT_MODULES"]

#: path suffixes of the modules on the per-access critical path
HOT_MODULES = (
    "sim/kernel.py",
    "sim/tracing.py",
    "cache/line.py",
    "cache/array.py",
    "bus/types.py",
    "bus/asb.py",
)

_EXEMPT_BASES = {
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "Exception",
    "BaseException",
    "Protocol",
    "ABC",
}


def _base_name(node: ast.AST) -> str:
    """Rightmost identifier of a base expression (``x.y.Enum`` -> Enum)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _has_exempt_base(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = _base_name(base)
        if name in _EXEMPT_BASES or name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _base_name(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


@register
class SlotsRule(AstRule):
    """Hot-path classes must be __dict__-free."""

    id = "slots"
    description = "classes in hot-path modules must declare __slots__"
    exempt_paths = ("lint/",)

    def visit_module(self, module: ModuleSource) -> Iterable[Finding]:
        if not module.path.endswith(HOT_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _has_exempt_base(node):
                continue
            if _declares_slots(node) or _is_slotted_dataclass(node):
                continue
            yield self.finding(
                module.path,
                node.lineno,
                f"hot-path class {node.name} has no __slots__ "
                "(declare __slots__, use @dataclass(slots=True), or "
                "waive a singleton with lint-ok[slots])",
            )
