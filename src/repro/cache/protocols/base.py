"""Coherence-protocol state machines: the common interface.

A protocol answers three questions, all as pure functions of the current
line state (which makes the FSMs directly unit- and property-testable):

1. What state does a newly fetched line enter?  (:meth:`fill_state` —
   depends on whether the fetch was exclusive/RWITM and on the sampled
   shared signal.)
2. What happens on a processor-side write hit?  (:meth:`write_hit` —
   silent upgrade, bus upgrade, or write-through.)
3. How does a snooped bus transaction change the line?  (:meth:`snoop` —
   possibly demanding a drain first, supplying data cache-to-cache, or
   asserting the shared signal.)

The wrapper of Section 2 never edits these machines; it manipulates their
*inputs* (converting snooped reads to writes, forcing the shared signal),
which is exactly how the paper removes states from the integrated system.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Tuple

from ...errors import ProtocolError
from ..line import State

__all__ = ["SnoopOp", "WriteAction", "SnoopOutcome", "CoherenceProtocol"]


class SnoopOp(Enum):
    """Bus operations as seen by a snooping cache controller."""

    READ = "read"
    READ_EXCL = "read-excl"
    WRITE = "write"
    INVALIDATE = "invalidate"
    UPDATE = "update"


class WriteAction(Enum):
    """What a processor-side write hit requires beyond the state change."""

    NONE = "none"              # silent (already M, or E -> M)
    UPGRADE = "upgrade"        # address-only bus invalidate (S/O -> M)
    WRITE_THROUGH = "write-through"  # single-word bus write (WT lines)
    UPDATE = "update"          # word broadcast to sharers (Dragon)


@dataclass(frozen=True)
class SnoopOutcome:
    """Result of snooping one bus operation against one line state.

    ``drain``
        The line is dirty and must be written back before the snooped
        transaction can complete: the snooper answers ARTRY and pushes
        the line, after which the line enters ``next_state``.
    ``supply``
        The snooper sources the line cache-to-cache (MOESI intervention);
        the transaction completes without a memory read.
    ``assert_shared``
        The snooper keeps a copy and drives the shared signal.
    ``apply_update``
        The snooper patches the broadcast word into its copy (update-
        based protocols only).
    """

    next_state: State
    drain: bool = False
    supply: bool = False
    assert_shared: bool = False
    apply_update: bool = False


_MISS = SnoopOutcome(State.INVALID)


class CoherenceProtocol:
    """Base class for the invalidation-protocol FSMs."""

    #: protocol name, e.g. "MESI"
    name: str = "?"
    #: the states this protocol can ever place a line in
    states: FrozenSet[State] = frozenset()
    #: whether the protocol samples a shared signal on fills
    uses_shared_signal: bool = False
    #: whether dirty lines may be supplied cache-to-cache
    supports_supply: bool = False

    # -- processor side ----------------------------------------------------
    def fill_state(self, exclusive: bool, shared: bool) -> State:
        """State for a newly fetched line.

        ``exclusive`` is True for read-with-intent-to-modify fetches;
        ``shared`` is the sampled shared signal (ignored by protocols
        without one).
        """
        raise NotImplementedError

    def read_hit(self, state: State) -> State:
        """State after a processor read hit (identity for all protocols)."""
        self._check(state)
        return state

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        """State and required bus action for a processor write hit."""
        raise NotImplementedError

    # -- snoop side -----------------------------------------------------------
    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        """Reaction of a line in ``state`` to a snooped ``op``."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------
    def _check(self, state: State) -> None:
        if state is not State.INVALID and state not in self.states:
            raise ProtocolError(f"{self.name} line in foreign state {state}")

    def _snoop_invalid(self) -> SnoopOutcome:
        return _MISS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} protocol>"

    def __str__(self) -> str:
        return self.name
