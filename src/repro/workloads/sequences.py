"""Protocol-integration sequences: Tables 2 and 3 as executable demos.

The paper motivates the wrapper with two four-step sequences showing
how an unwrapped heterogeneous pair reads stale data:

* **Table 2** (MESI + MEI): the MEI processor fills Exclusive because it
  ignores the shared signal, its silent E->M write never reaches the
  bus, and the MESI processor's Shared copy goes stale.
* **Table 3** (MSI + MESI): the MSI processor has no shared-signal
  output, so the MESI processor fills Exclusive, writes silently, and
  the MSI processor's Shared copy goes stale.

:func:`run_sequence` executes an operation list on a two-processor
platform, recording each processor's line state after every step and
the values loads return, with the wrappers either active (the proposed
fix) or forced to identity policies (the broken integration).  The
corresponding benchmarks and tests assert both halves: the stale read
appears without the wrapper and disappears with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.platform import SHARED_BASE, Platform, PlatformConfig
from ..core.reduction import WrapperPolicy
from ..cpu.presets import preset_generic
from ..errors import ConfigError
from ..verify.checker import CoherenceChecker

__all__ = [
    "SequenceStep",
    "SequenceResult",
    "run_sequence",
    "TABLE2_OPS",
    "TABLE3_OPS",
    "table2_demo",
    "table3_demo",
]

#: Table 2 / Table 3 operation list: (processor index, op) on one line.
#: Processor 1 of the paper is index 0 here.
TABLE2_OPS: Tuple[Tuple[int, str], ...] = (
    (0, "read"),   # a: P1 (MESI) reads      -> I->E
    (1, "read"),   # b: P2 (MEI) reads       -> P1 E->S, P2 fills E
    (1, "write"),  # c: P2 writes silently   -> P2 E->M, P1 still S (stale!)
    (0, "read"),   # d: P1 reads             -> S hit returns stale data
)

TABLE3_OPS: Tuple[Tuple[int, str], ...] = (
    (0, "read"),   # a: P1 (MSI) reads       -> I->S
    (1, "read"),   # b: P2 (MESI) reads      -> fills E (no shared signal)
    (1, "write"),  # c: P2 writes silently   -> E->M
    (0, "read"),   # d: P1 reads             -> S hit returns stale data
)


@dataclass
class SequenceStep:
    """One executed operation and the system state after it."""

    index: int
    processor: int
    op: str
    value_read: Optional[int]
    states: Tuple[str, ...]
    stale: bool

    def describe(self) -> str:
        """Row rendering in the style of the paper's tables."""
        letter = chr(ord("a") + self.index)
        op = f"P{self.processor + 1} {self.op}s"
        states = "  ".join(
            f"P{i + 1}:{s}" for i, s in enumerate(self.states)
        )
        stale = "  <-- STALE" if self.stale else ""
        value = f" = {self.value_read}" if self.value_read is not None else ""
        return f"{letter}: {op:10s}{value:8s} {states}{stale}"


@dataclass
class SequenceResult:
    """The full sequence outcome plus checker findings."""

    protocols: Tuple[str, str]
    wrapped: bool
    steps: List[SequenceStep]
    violations: List[str]
    system_protocol: Optional[str]

    @property
    def stale_reads(self) -> int:
        """Number of loads that returned stale data."""
        return sum(1 for step in self.steps if step.stale)

    def render(self) -> str:
        """The whole table as text."""
        mode = "with wrappers" if self.wrapped else "no wrappers (broken)"
        header = (
            f"{self.protocols[0]} + {self.protocols[1]} ({mode})"
            + (f" -> system protocol {self.system_protocol}" if self.wrapped else "")
        )
        lines = [header]
        lines += [step.describe() for step in self.steps]
        lines.append(f"stale reads: {self.stale_reads}")
        return "\n".join(lines)


def run_sequence(
    protocols: Tuple[str, str],
    ops: Sequence[Tuple[int, str]] = TABLE2_OPS,
    wrapped: bool = True,
    addr: int = SHARED_BASE,
    initial_value: int = 100,
) -> SequenceResult:
    """Execute ``ops`` on a two-processor platform and record states.

    ``wrapped=False`` forces identity wrapper policies — the processors
    snoop natively with no conversion, reproducing the paper's broken
    integration.  The write at step c stores a value different from
    ``initial_value`` so a stale read is unambiguous.
    """
    if len(protocols) != 2:
        raise ConfigError("run_sequence wants exactly two protocols")
    cores = (
        preset_generic("p1", protocols[0]),
        preset_generic("p2", protocols[1]),
    )
    platform = Platform(PlatformConfig(cores=cores, hardware_coherence=True))
    if not wrapped:
        for wrapper in platform.wrappers:
            if wrapper is not None:
                wrapper.policy = WrapperPolicy()  # identity: no conversion
    # Violations are the expected *evidence* in the unwrapped runs.
    checker = CoherenceChecker(platform)
    platform.memory.load(addr, [initial_value])
    checker.seed_from_memory()

    controllers = platform.controllers
    steps: List[SequenceStep] = []
    golden = initial_value

    def driver():
        nonlocal golden
        next_value = initial_value
        for index, (proc, op) in enumerate(ops):
            controller = controllers[proc]
            value_read = None
            stale = False
            if op == "read":
                value_read = yield from controller.read(addr)
                stale = value_read != golden
            elif op == "write":
                next_value += 1
                yield from controller.write(addr, next_value)
                golden = next_value
            else:
                raise ConfigError(f"unknown sequence op {op!r}")
            states = tuple(str(c.line_state(addr)) for c in controllers)
            steps.append(
                SequenceStep(
                    index=index, processor=proc, op=op,
                    value_read=value_read, states=states, stale=stale,
                )
            )

    platform.sim.process(driver(), name="sequence-driver")
    platform.sim.run()
    return SequenceResult(
        protocols=(protocols[0], protocols[1]),
        wrapped=wrapped,
        steps=steps,
        violations=[str(v) for v in checker.violations],
        system_protocol=(
            platform.reduction.system_protocol if platform.reduction else None
        ),
    )


def table2_demo(wrapped: bool) -> SequenceResult:
    """Table 2: MESI (P1) + MEI (P2), the shared-state problem."""
    return run_sequence(("MESI", "MEI"), TABLE2_OPS, wrapped=wrapped)


def table3_demo(wrapped: bool) -> SequenceResult:
    """Table 3: MSI (P1) + MESI (P2), the exclusive-state problem."""
    return run_sequence(("MSI", "MESI"), TABLE3_OPS, wrapped=wrapped)
