"""Runtime coherence checking.

Two complementary checks, attachable to any :class:`Platform`:

1. **Value checking** (the golden model) — every store (and the store
   half of every atomic swap) updates a reference copy of memory; every
   load is compared against it.  Under correct coherence — hardware or
   software-disciplined — a load must return the most recent store to
   its address in bus/coherence order, so a mismatch is a *stale read*:
   exactly the failure of Tables 2 and 3.
2. **State invariants** (single-writer / multiple-reader) — after every
   bus transaction the line it touched is audited across all caches
   (enabled by default only on hardware-coherent platforms; a software-
   disciplined platform tolerates stale clean copies by design):

   * at most one cache holds the line in M or E, and then no other
     cache holds it at all;
   * at most one cache holds it in O, and co-holders must be in S;
   * clean copies (E, and S when no owner exists) must equal memory.

Violations are collected (and optionally raised immediately); the
Table 2/3 demonstrations read them back to show the stale-data problem,
and the test suite asserts their absence everywhere else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cache.line import State
from ..core.platform import Platform
from ..errors import CoherenceViolation, ConfigError
from ..sim.tracing import TraceRecord

__all__ = ["CoherenceChecker"]

_EXCLUSIVE_STATES = (State.MODIFIED, State.EXCLUSIVE)


class CoherenceChecker:
    """Attach to a platform; audits values and line states as it runs."""

    def __init__(
        self,
        platform: Platform,
        check_values: bool = True,
        check_states: Optional[bool] = None,
        raise_immediately: bool = False,
        max_violations: int = 1000,
    ):
        if max_violations < 1:
            raise ConfigError(
                f"max_violations must be >= 1, got {max_violations}"
            )
        self.platform = platform
        self.check_values = check_values
        if check_states is None:
            # The SWMR invariants are a *hardware* coherence property.
            # Software-disciplined platforms legitimately keep stale
            # clean copies around (they invalidate before reading), so
            # state checks default to the platform's coherence mode.
            check_states = platform.config.hardware_coherence
        self.check_states = check_states
        self.raise_immediately = raise_immediately
        #: accumulation cap: a badly broken run (every load stale) must
        #: not grow memory without bound.  When the cap hits, one marker
        #: violation is appended and further ones are counted, not kept.
        self.max_violations = max_violations
        self.truncated = False
        self.suppressed_violations = 0
        self.violations: List[CoherenceViolation] = []
        self._golden: Dict[int, int] = {}
        self.loads_checked = 0
        self.stores_tracked = 0
        self._cache_masters = {c.name for c in platform.controllers}
        platform.tracer.add_listener(self._on_record)

    # -- seeding ---------------------------------------------------------------
    def seed(self, addr: int, value: int) -> None:
        """Tell the golden model about a preloaded memory word."""
        self._golden[addr] = value

    def seed_from_memory(self) -> None:
        """Snapshot every word currently in main memory into the model.

        Call after :meth:`MainMemory.load`-style preinitialisation so
        reads of preloaded data are not misflagged as stale.
        """
        for addr, value in self.platform.memory._words.items():
            self._golden[addr] = value

    # -- record intake --------------------------------------------------------
    def _on_record(self, record: TraceRecord) -> None:
        if record.channel == "mem" and self.check_values:
            kind = record.kind
            fields = record.fields
            if self._is_device(fields["addr"]):
                # Device registers (mailbox, lock register) have read
                # side effects; the golden memory model does not apply.
                return
            if kind == "store":
                self._golden[fields["addr"]] = fields["value"]
                self.stores_tracked += 1
            elif kind == "load":
                self._check_load(record.time, fields["addr"], fields["value"])
            elif kind == "swap":
                self._check_load(record.time, fields["addr"], fields["old"])
                self._golden[fields["addr"]] = fields["value"]
                self.stores_tracked += 1
        elif record.channel == "bus" and record.kind == "complete":
            if (
                self.check_values
                and record.source not in self._cache_masters
                and record.fields.get("op") in ("write", "write-line", "swap")
            ):
                # A non-cache master (DMA engine, NIC) wrote memory: its
                # stores never pass through a cache controller, so sync
                # the golden model from the committed memory contents.
                self._sync_from_memory(
                    record.fields["addr"], record.fields["op"]
                )
            if self.check_states:
                self.check_line_states(record.fields["addr"])

    def _sync_from_memory(self, addr: int, op: str) -> None:
        if op == "write-line":
            span = self.platform.config.line_bytes
            base = addr
        else:
            span = 4
            base = addr
        for offset in range(0, span, 4):
            self._golden[base + offset] = self.platform.memory.peek(base + offset)

    def _is_device(self, addr: int) -> bool:
        region = self.platform.map.lookup(addr)
        return region is not None and region.device is not None

    def _check_load(self, time: int, addr: int, value: int) -> None:
        self.loads_checked += 1
        expected = self._golden.get(addr, 0)
        if value != expected:
            self._flag(
                addr,
                f"stale read at t={time}: returned 0x{value:08x}, the most "
                f"recent store wrote 0x{expected:08x}",
            )

    # -- state invariants ----------------------------------------------------------
    def check_line_states(self, addr: int) -> None:
        """Audit the SWMR invariants for the line containing ``addr``."""
        holders = []
        for controller in self.platform.controllers:
            base = controller.geom.line_base(addr)
            line = controller.array.lookup(base)
            if line is not None:
                holders.append((controller, base, line))
        if not holders:
            return
        exclusive = [h for h in holders if h[2].state in _EXCLUSIVE_STATES]
        owners = [h for h in holders if h[2].state is State.OWNED]
        if exclusive and len(holders) > 1:
            states = ", ".join(
                f"{c.name}:{line.state}" for c, _b, line in holders
            )
            self._flag(addr, f"M/E copy coexists with other copies ({states})")
        if len(owners) > 1:
            names = ", ".join(c.name for c, _b, _l in owners)
            self._flag(addr, f"multiple owners ({names})")
        if owners:
            bad = [
                h for h in holders
                if h[2].state not in (State.OWNED, State.SHARED)
            ]
            if bad:
                states = ", ".join(f"{c.name}:{line.state}" for c, _b, line in bad)
                self._flag(addr, f"owner coexists with non-S copies ({states})")
            # Dirty sharing (MOESI supply / Dragon update) must keep every
            # sharer's copy identical to the owner's.
            owner_data = owners[0][2].data
            for controller, base, line in holders:
                if line.state is State.SHARED and line.data != owner_data:
                    self._flag(
                        base,
                        f"{controller.name}'s shared copy diverges from "
                        f"the owner ({owners[0][0].name})",
                    )
        # Clean copies must match memory (dirty sharing exempts S under O).
        for controller, base, line in holders:
            clean = line.state is State.EXCLUSIVE or (
                line.state is State.SHARED and not owners
            )
            if clean:
                memory_words = [
                    self.platform.memory.peek(base + 4 * i)
                    for i in range(controller.geom.line_words)
                ]
                if line.data != memory_words:
                    self._flag(
                        base,
                        f"{controller.name} holds a clean {line.state} copy "
                        "that differs from memory",
                    )

    def check_all_lines(self) -> None:
        """Full sweep: audit every line any cache currently holds."""
        seen = set()
        for controller in self.platform.controllers:
            for addr, _line in controller.array.valid_lines():
                if addr not in seen:
                    seen.add(addr)
                    self.check_line_states(addr)

    # -- reporting ------------------------------------------------------------------
    def _flag(self, addr: int, detail: str) -> None:
        if len(self.violations) >= self.max_violations:
            self.suppressed_violations += 1
            if not self.truncated:
                self.truncated = True
                self.violations.append(
                    CoherenceViolation(
                        addr,
                        f"violation cap reached ({self.max_violations}); "
                        "further violations are counted but not stored "
                        "(see suppressed_violations)",
                    )
                )
            return
        violation = CoherenceViolation(addr, detail)
        self.violations.append(violation)
        if self.raise_immediately:
            raise violation

    @property
    def clean(self) -> bool:
        """True when no violation has been observed."""
        return not self.violations

    def raise_if_violations(self) -> None:
        """Raise the first collected violation, if any."""
        if self.violations:
            raise self.violations[0]

    def summary(self) -> str:
        """One-line status for logs and example scripts."""
        text = (
            f"checker: {self.loads_checked} loads checked, "
            f"{self.stores_tracked} stores tracked, "
            f"{len(self.violations)} violations"
        )
        if self.truncated:
            text += f" (+{self.suppressed_violations} suppressed past cap)"
        return text
