"""Differential tests: simulator verdicts vs the exhaustive model."""

from repro.fuzz.differential import differential_check, replay_events
from repro.verify.model_check import check_pair


class TestReplayEvents:
    def test_safe_path_runs_clean(self):
        clean, violations = replay_events(
            "MESI", "MESI", True,
            ("write0", "read1", "write1", "read0", "evict0", "read1"),
        )
        assert clean
        assert violations == []

    def test_model_witness_reproduces_concretely(self):
        """A stale-read witness from the model must trip the concrete
        coherence checker when replayed on the simulator."""
        verdict = check_pair("MESI", "MEI", wrapped=False)
        assert not verdict.ok
        witness = verdict.violations[0]
        clean, violations = replay_events(
            "MESI", "MEI", False, witness.path
        )
        assert not clean
        assert violations

    def test_wrapped_pair_survives_the_same_witness(self):
        """The wrapper fix: the exact path that breaks the unwrapped
        pair is harmless once the wrappers mediate."""
        verdict = check_pair("MESI", "MEI", wrapped=False)
        witness = verdict.violations[0]
        clean, _ = replay_events("MESI", "MEI", True, witness.path)
        assert clean


class TestDifferentialCheck:
    def test_selected_pairs_agree(self):
        report = differential_check(
            pairs=(("MESI", "MESI"), ("MESI", "MEI"), ("MOESI", "MSI")),
            n_random=3,
            path_length=8,
            max_witnesses=2,
        )
        assert report.ok, report.disagreements
        assert report.checked == 6  # 3 pairs x 2 wrapper modes
        assert report.paths > 0
        assert "AGREE" in report.summary()

    def test_records_carry_model_verdicts(self):
        report = differential_check(
            pairs=(("MESI", "MEI"),), n_random=2, path_length=6
        )
        by_mode = {r["wrapped"]: r for r in report.records}
        assert by_mode[True]["model_ok"] is True
        assert by_mode[False]["model_ok"] is False
        # Unsafe configs replay witnesses; every one must be dirty.
        assert all(not p["clean"] for p in by_mode[False]["paths"])

    def test_seed_determinism(self):
        a = differential_check(
            pairs=(("MSI", "MSI"),), n_random=2, path_length=6, seed=4
        )
        b = differential_check(
            pairs=(("MSI", "MSI"),), n_random=2, path_length=6, seed=4
        )
        assert a.records == b.records


def test_full_matrix_agrees():
    """Every ordered model-protocol pair, both wrapper modes.

    This is the satellite acceptance check: the simulator's verdict
    agrees with verify/model_check.check_pair everywhere.
    """
    report = differential_check(n_random=2, path_length=8, max_witnesses=2)
    assert report.ok, report.disagreements
    assert report.checked == 32  # 16 ordered pairs x 2 modes
