"""Processor presets: the three embedded processors of the case study.

Each preset is a :class:`CoreConfig` capturing what matters to the
evaluation: clock frequency, data cache geometry, the native coherence
protocol (or None for the ARM920T, which has no coherence hardware),
and interrupt/sync cost parameters.

* :func:`preset_powerpc755` — 100 MHz, 32 KB 8-way data cache, MEI.
* :func:`preset_arm920t` — 50 MHz, 16 KB 64-way CAM-organised data
  cache, no coherence support.
* :func:`preset_intel486` — Write-back Enhanced Intel486: a MESI-derived
  protocol for write-back lines plus SI for write-through lines (the
  INV-pin behaviour lives in the wrapper).  Run here at 50 MHz so its
  period is an integral number of nanoseconds.

All presets use 32-byte (8-word) lines: the platform integration layer
requires one system-wide line size (a model restriction; the paper's
processors differ, but snoop granularity must be uniform for the
single-line snoop check to be sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..cache.array import CacheGeometry

__all__ = ["CoreConfig", "preset_powerpc755", "preset_arm920t", "preset_intel486",
           "preset_generic"]


@dataclass(frozen=True)
class CoreConfig:
    """Everything needed to instantiate one processor on a platform."""

    name: str
    freq_mhz: float
    cache_size: int = 16 * 1024
    cache_line_bytes: int = 32
    cache_ways: int = 4
    #: native coherence protocol name, or None for no coherence hardware
    protocol: Optional[str] = "MESI"
    #: protocol for write-through regions (Intel486's SI lines)
    protocol_wt: Optional[str] = None
    cpi: int = 1
    sync_cycles: int = 3
    fiq_response_cycles: int = 2
    #: extra 0..N cycles of seeded per-assertion response jitter
    fiq_response_jitter_cycles: int = 0
    interrupt_entry_cycles: int = 4
    rfi_cycles: int = 2
    isr_drain_priority: bool = True
    cache_enabled: bool = True

    @property
    def coherent(self) -> bool:
        """True when the processor has native coherence hardware."""
        return self.protocol is not None

    def geometry(self) -> CacheGeometry:
        """The data-cache geometry this config describes."""
        return CacheGeometry(
            size_bytes=self.cache_size,
            line_bytes=self.cache_line_bytes,
            ways=self.cache_ways,
        )

    def with_(self, **changes) -> "CoreConfig":
        """A modified copy (convenience over dataclasses.replace)."""
        return replace(self, **changes)


def preset_powerpc755(name: str = "ppc755") -> CoreConfig:
    """PowerPC755: 100 MHz, 32 KB 8-way data cache, MEI protocol."""
    return CoreConfig(
        name=name,
        freq_mhz=100.0,
        cache_size=32 * 1024,
        cache_line_bytes=32,
        cache_ways=8,
        protocol="MEI",
        sync_cycles=10,         # PPC7xx sync: pipeline + bus-queue flush
    )


def preset_arm920t(name: str = "arm920t") -> CoreConfig:
    """ARM920T: 50 MHz, 16 KB 64-way data cache, no coherence hardware."""
    return CoreConfig(
        name=name,
        freq_mhz=50.0,
        cache_size=16 * 1024,
        cache_line_bytes=32,
        cache_ways=64,
        protocol=None,
        sync_cycles=6,          # CP15 drain-write-buffer stall
        fiq_response_cycles=1,  # pipeline-dependent nFIQ response
        interrupt_entry_cycles=1,  # FIQ has dedicated banked registers
        rfi_cycles=1,
    )


def preset_intel486(name: str = "i486") -> CoreConfig:
    """Write-back Enhanced Intel486: MESI write-back lines + SI WT lines."""
    return CoreConfig(
        name=name,
        freq_mhz=50.0,
        cache_size=8 * 1024,
        cache_line_bytes=32,
        cache_ways=4,
        protocol="MESI",
        protocol_wt="SI",
        sync_cycles=2,
    )


def preset_generic(
    name: str,
    protocol: Optional[str],
    freq_mhz: float = 50.0,
    cache_size: int = 16 * 1024,
) -> CoreConfig:
    """A plain processor with the given protocol — for protocol-mix studies."""
    return CoreConfig(
        name=name,
        freq_mhz=freq_mhz,
        cache_size=cache_size,
        protocol=protocol,
    )
