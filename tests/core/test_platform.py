"""Unit tests for platform assembly and classification."""

import pytest

from repro.core import (
    LOCK_BASE,
    SHARED_BASE,
    Platform,
    PlatformConfig,
    classify_platform,
)
from repro.cpu import (
    preset_arm920t,
    preset_generic,
    preset_intel486,
    preset_powerpc755,
)
from repro.errors import ConfigError, IntegrationError


def pf2_config(**overrides):
    return PlatformConfig(
        cores=(preset_powerpc755(), preset_arm920t()), **overrides
    )


class TestClassification:
    def test_pf3_all_coherent(self):
        assert classify_platform((preset_powerpc755(), preset_intel486())) == "PF3"

    def test_pf2_mixed(self):
        assert classify_platform((preset_powerpc755(), preset_arm920t())) == "PF2"

    def test_pf1_none_coherent(self):
        cores = (preset_arm920t("a0"), preset_arm920t("a1"))
        assert classify_platform(cores) == "PF1"

    def test_platform_records_class(self):
        assert Platform(pf2_config()).pf_class == "PF2"


class TestConfigValidation:
    def test_empty_cores_rejected(self):
        with pytest.raises(ConfigError):
            PlatformConfig(cores=())

    def test_mixed_line_sizes_rejected(self):
        cores = (
            preset_powerpc755(),
            preset_arm920t().with_(cache_line_bytes=16),
        )
        with pytest.raises(ConfigError) as exc_info:
            PlatformConfig(cores=cores)
        # The message names both offending sizes, not just cores[0]'s.
        assert "16" in str(exc_info.value)
        assert "32" in str(exc_info.value)

    def test_duplicate_core_names_rejected(self):
        cores = (preset_generic("p0", "MESI"), preset_generic("p0", "MSI"))
        with pytest.raises(ConfigError) as exc_info:
            PlatformConfig(cores=cores)
        assert "p0" in str(exc_info.value)

    def test_core_count_beyond_memory_layout_rejected(self):
        too_many = tuple(
            preset_generic(f"p{i}", "MESI") for i in range(513)
        )
        with pytest.raises(ConfigError):
            PlatformConfig(cores=too_many)

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ConfigError):
            pf2_config(arbitration="lottery")

    def test_with_copies(self):
        config = pf2_config()
        copy = config.with_(shared_cacheable=False)
        assert config.shared_cacheable and not copy.shared_cacheable


class TestWiring:
    def test_pf2_gets_wrapper_and_snoop_logic(self):
        platform = Platform(pf2_config())
        assert platform.wrappers[0] is not None
        assert platform.wrappers[1] is None
        assert platform.snoop_logics[0] is None
        assert platform.snoop_logics[1] is not None

    def test_pf3_gets_two_wrappers(self):
        platform = Platform(
            PlatformConfig(cores=(preset_powerpc755(), preset_intel486()))
        )
        assert all(w is not None for w in platform.wrappers)
        assert all(s is None for s in platform.snoop_logics)

    def test_software_config_attaches_nothing(self):
        platform = Platform(pf2_config(hardware_coherence=False))
        assert platform.reduction is None
        assert platform.bus.snoopers == []

    def test_reduction_matches_protocols(self):
        platform = Platform(pf2_config())
        assert platform.reduction.system_protocol == "MEI"

    def test_mailbox_region_bound_to_snoop_logic(self):
        platform = Platform(pf2_config())
        region = platform.map.find(platform.mailbox_base(1))
        assert region.device is platform.snoop_logics[1]

    def test_lock_register_device(self):
        platform = Platform(pf2_config(lock_register=True))
        assert platform.lock_register is not None
        region = platform.map.find(platform.lock_register.lock_addr())
        assert region.device is platform.lock_register

    def test_shared_region_cacheability_knob(self):
        cached = Platform(pf2_config(shared_cacheable=True))
        uncached = Platform(pf2_config(shared_cacheable=False))
        assert cached.map.find(SHARED_BASE).cacheable
        assert not uncached.map.find(SHARED_BASE).cacheable

    def test_lock_region_uncacheable_by_default(self):
        platform = Platform(pf2_config())
        assert not platform.map.find(LOCK_BASE).cacheable

    def test_core_lookup_by_name(self):
        platform = Platform(pf2_config())
        assert platform.core("arm920t").name == "arm920t"
        assert platform.controller("ppc755").name == "ppc755"
        assert platform.index_of("ppc755") == 0

    def test_private_regions_per_core(self):
        platform = Platform(pf2_config())
        assert platform.map.find(platform.private_base(0)).name == "private:ppc755"
        assert platform.map.find(platform.private_base(1)).name == "private:arm920t"

    def test_noncoherent_cache_is_not_a_bus_snooper(self):
        platform = Platform(pf2_config())
        names = {s.master_name for s in platform.bus.snoopers}
        # The ARM appears via its snoop logic, not via a wrapper.
        assert names == {"ppc755", "arm920t"}
        assert platform.controllers[1].coherent is False


class TestRun:
    def test_run_without_programs_rejected(self):
        with pytest.raises(ConfigError):
            Platform(pf2_config()).run()

    def test_run_returns_last_halt_time(self):
        from repro.cpu import Assembler

        platform = Platform(pf2_config())
        quick = Assembler()
        quick.halt()
        slow = Assembler()
        slow.delay(100).halt()
        platform.load_programs(
            {"ppc755": quick.assemble(), "arm920t": slow.assemble()}
        )
        elapsed = platform.run()
        assert elapsed == platform.core("arm920t").halt_time
        assert elapsed > platform.core("ppc755").halt_time

    def test_three_core_platform_runs(self):
        from repro.cpu import Assembler

        cores = (
            preset_generic("p0", "MEI", freq_mhz=100),
            preset_generic("p1", "MESI"),
            preset_generic("p2", "MOESI"),
        )
        platform = Platform(PlatformConfig(cores=cores))
        programs = {}
        for index, cfg in enumerate(cores):
            asm = Assembler()
            asm.li(1, SHARED_BASE).li(2, index).st(2, 1, 4 * index).halt()
            programs[cfg.name] = asm.assemble()
        platform.load_programs(programs)
        platform.run()
        for index in range(3):
            assert platform.memory.peek(SHARED_BASE + 4 * index) in (0, index)
