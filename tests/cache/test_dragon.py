"""Tests for the update-based Dragon protocol extension."""

import pytest

from repro.cache import SnoopOp, State, WriteAction, make_protocol
from repro.cache.protocols.dragon import DragonProtocol
from repro.core import Platform, PlatformConfig, SHARED_BASE, reduce_protocols
from repro.cpu import preset_generic
from repro.errors import IntegrationError, ProtocolError
from repro.verify import CoherenceChecker

M, O, E, S, I = (
    State.MODIFIED,
    State.OWNED,
    State.EXCLUSIVE,
    State.SHARED,
    State.INVALID,
)


class TestFsm:
    def test_registered(self):
        assert make_protocol("DRAGON").name == "DRAGON"

    def test_fill_states(self):
        protocol = DragonProtocol()
        assert protocol.fill_state(False, shared=False) is E
        assert protocol.fill_state(False, shared=True) is S

    def test_no_rwitm(self):
        with pytest.raises(ProtocolError):
            DragonProtocol().fill_state(True, False)

    def test_exclusive_write_is_silent(self):
        state, action = DragonProtocol().write_hit(E)
        assert state is M and action is WriteAction.NONE

    def test_shared_write_broadcasts_update(self):
        state, action = DragonProtocol().write_hit(S)
        assert action is WriteAction.UPDATE

    def test_owner_write_broadcasts_update(self):
        _state, action = DragonProtocol().write_hit(O)
        assert action is WriteAction.UPDATE

    def test_snooped_update_patches_and_demotes_owner(self):
        outcome = DragonProtocol().snoop(O, SnoopOp.UPDATE)
        assert outcome.apply_update
        assert outcome.next_state is S
        assert outcome.assert_shared

    def test_snooped_update_keeps_sharer(self):
        outcome = DragonProtocol().snoop(S, SnoopOp.UPDATE)
        assert outcome.apply_update and outcome.next_state is S

    def test_snooped_read_on_dirty_supplies(self):
        for state in (M, O):
            outcome = DragonProtocol().snoop(state, SnoopOp.READ)
            assert outcome.supply and outcome.next_state is O

    def test_foreign_plain_write_drains_dirty(self):
        outcome = DragonProtocol().snoop(O, SnoopOp.WRITE)
        assert outcome.drain and outcome.next_state is I


class TestReductionBoundary:
    def test_homogeneous_dragon_allowed(self):
        result = reduce_protocols(["DRAGON", "DRAGON"])
        assert result.system_protocol == "DRAGON"
        assert all(policy.is_identity for policy in result.policies)

    @pytest.mark.parametrize("other", ["MEI", "MSI", "MESI", "MOESI", None])
    def test_mixing_with_invalidation_rejected(self, other):
        with pytest.raises(IntegrationError):
            reduce_protocols(["DRAGON", other])


def dragon_platform():
    platform = Platform(
        PlatformConfig(
            cores=(
                preset_generic("d0", "DRAGON"),
                preset_generic("d1", "DRAGON"),
            )
        )
    )
    return platform, CoherenceChecker(platform)


def drive(platform, generator):
    proc = platform.sim.process(generator)
    platform.sim.run(detect_deadlock=False)
    return proc.value


class TestPlatform:
    def test_shared_write_updates_peer_in_place(self):
        platform, checker = dragon_platform()
        d0, d1 = platform.controllers

        def scenario():
            yield from d0.read(SHARED_BASE)       # E in d0
            yield from d1.read(SHARED_BASE)       # both S now
            yield from d0.write(SHARED_BASE, 42)  # broadcast update
            value = yield from d1.read(SHARED_BASE)  # hit, patched copy
            return value

        assert drive(platform, scenario()) == 42
        d0_state = platform.controllers[0].line_state(SHARED_BASE)
        d1_state = platform.controllers[1].line_state(SHARED_BASE)
        assert d0_state is O   # Sm: shared, dirty, owner
        assert d1_state is S   # Sc
        checker.check_all_lines()
        assert checker.clean

    def test_update_with_no_sharers_goes_modified(self):
        platform, checker = dragon_platform()
        d0, d1 = platform.controllers

        def scenario():
            yield from d0.read(SHARED_BASE)
            yield from d1.read(SHARED_BASE)
            d1.invalidate_line(SHARED_BASE)       # sharer silently gone
            yield from d0.write(SHARED_BASE, 7)   # update finds nobody
            return True

        drive(platform, scenario())
        assert platform.controllers[0].line_state(SHARED_BASE) is M
        checker.check_all_lines()
        assert checker.clean

    def test_updates_replace_invalidations_on_bus(self):
        """Write ping-pong: Dragon uses updates, MESI uses refills."""
        def ping_pong(protocol):
            platform = Platform(
                PlatformConfig(
                    cores=(
                        preset_generic("c0", protocol),
                        preset_generic("c1", protocol),
                    )
                )
            )
            c0, c1 = platform.controllers

            def scenario():
                yield from c0.read(SHARED_BASE)
                yield from c1.read(SHARED_BASE)
                for i in range(6):
                    writer = c0 if i % 2 == 0 else c1
                    reader = c1 if i % 2 == 0 else c0
                    yield from writer.write(SHARED_BASE, i)
                    value = yield from reader.read(SHARED_BASE)
                    assert value == i

            platform.sim.process(scenario())
            platform.sim.run(detect_deadlock=False)
            return platform.stats

        dragon_stats = ping_pong("DRAGON")
        mesi_stats = ping_pong("MESI")
        # Dragon: after the initial fills, everything is word updates.
        assert dragon_stats.get("bus.op.update") == 6
        assert dragon_stats.get("bus.op.read-line") == 2
        # MESI: every write invalidates, every read refills.
        assert mesi_stats.get("bus.op.update") == 0
        assert mesi_stats.get("bus.op.read-line") > 2

    def test_owner_eviction_writes_back(self):
        platform, checker = dragon_platform()
        d0, d1 = platform.controllers

        def scenario():
            yield from d0.read(SHARED_BASE)
            yield from d1.read(SHARED_BASE)
            yield from d0.write(SHARED_BASE, 99)   # d0 becomes owner
            yield from d0.flush_line(SHARED_BASE)  # owner leaves
            return True

        drive(platform, scenario())
        assert platform.memory.peek(SHARED_BASE) == 99
        checker.check_all_lines()
        assert checker.clean

    def test_dirty_handoff_via_supply(self):
        platform, checker = dragon_platform()
        d0, d1 = platform.controllers

        def scenario():
            yield from d0.read(SHARED_BASE)
            yield from d0.write(SHARED_BASE, 5)     # M in d0
            value = yield from d1.read(SHARED_BASE)  # supplied c2c
            return value

        assert drive(platform, scenario()) == 5
        assert platform.controllers[0].line_state(SHARED_BASE) is O
        assert platform.controllers[1].line_state(SHARED_BASE) is S
        assert platform.stats.get("bus.c2c_supplies") == 1
        checker.check_all_lines()
        assert checker.clean

    def test_write_miss_fills_then_updates(self):
        platform, checker = dragon_platform()
        d0, d1 = platform.controllers

        def scenario():
            yield from d1.read(SHARED_BASE)        # d1 has a copy
            yield from d0.write(SHARED_BASE, 3)    # d0 misses: fill + update
            value = yield from d1.read(SHARED_BASE)
            return value

        assert drive(platform, scenario()) == 3
        checker.check_all_lines()
        assert checker.clean
