#!/usr/bin/env python3
"""Building a custom platform with the low-level API.

Shows the pieces the high-level helpers assemble for you:

* a three-processor platform mixing MOESI, MESI and a non-coherent
  core, with the reduction computed automatically;
* hand-written assembly via the :class:`Assembler`;
* bus/cache/IRQ tracing, printed as a timeline;
* reading the per-component statistics after the run.

Run:  python examples/custom_platform.py
"""

from repro import CoherenceChecker, Platform, PlatformConfig
from repro.core import SCRATCH_BASE, SHARED_BASE, append_isr
from repro.cpu import Assembler, preset_arm920t, preset_generic

TOKEN = SCRATCH_BASE          # uncached turn token
DATA = SHARED_BASE            # one shared line passed around the ring


def ring_task(my_id, n_cores, rounds, isr_mailbox=None):
    """Pass a counter around the ring: each core increments and hands on."""
    asm = Assembler(name=f"ring{my_id}")
    asm.li(1, TOKEN)
    asm.li(2, DATA)
    for round_no in range(rounds):
        tag = f"{my_id}_{round_no}"
        asm.li(3, round_no * n_cores + my_id)  # my expected turn number
        asm.label(f"wait_{tag}")
        asm.ld(4, 1)
        asm.bne(4, 3, f"wait_{tag}")
        asm.ld(5, 2)          # read the shared counter (may cross caches)
        asm.addi(5, 5, 1)
        asm.st(5, 2)          # increment it
        asm.addi(4, 4, 1)
        asm.st(4, 1)          # pass the token
    asm.halt()
    if isr_mailbox is not None:
        append_isr(asm, isr_mailbox)
    return asm.assemble()


def main():
    config = PlatformConfig(
        cores=(
            preset_generic("dsp", "MOESI", freq_mhz=100),
            preset_generic("cpu", "MESI", freq_mhz=50),
            preset_arm920t("io"),
        ),
        trace_channels=("irq",),   # record interrupt traffic
    )
    platform = Platform(config)
    checker = CoherenceChecker(platform)

    print(f"platform class: {platform.pf_class}")
    print(f"integrated protocol: {platform.reduction.system_protocol}")
    for cfg, policy in zip(config.cores, platform.reduction.policies):
        print(f"  {cfg.name:>4}: {policy}")
    print()

    rounds = 4
    platform.load_programs(
        {
            "dsp": ring_task(0, 3, rounds),
            "cpu": ring_task(1, 3, rounds),
            "io": ring_task(2, 3, rounds, isr_mailbox=platform.mailbox_base(2)),
        }
    )
    elapsed = platform.run()

    final = platform.memory.peek(DATA)  # may still be cached...
    cached = [
        c.array.lookup(DATA).data[0]
        for c in platform.controllers
        if c.array.lookup(DATA) is not None
    ]
    value = cached[0] if cached else final
    print(f"ring of 3 cores x {rounds} rounds -> counter = {value} "
          f"(expected {3 * rounds}); elapsed {elapsed} ns")
    assert value == 3 * rounds

    print(f"\ninterrupt timeline ({len(platform.tracer.records)} events):")
    for record in list(platform.tracer.records)[:12]:
        print("  " + record.format())

    print("\nselected statistics:")
    for key in sorted(platform.stats.as_dict()):
        if any(s in key for s in ("fills", "drains", "isr", "snoop_logic")):
            print(f"  {key:<28} {platform.stats.get(key)}")

    checker.check_all_lines()
    print(f"\n{checker.summary()}")
    assert checker.clean


if __name__ == "__main__":
    main()
