"""``fabric-contract`` — the model/fabric split, statically enforced.

The swappable-fabric architecture (:mod:`repro.fabric`,
``docs/fabrics.md``) carries the same two obligations as the engine
split, plus one of its own:

* **surface completeness** — every name in
  :data:`repro.core.platform.FABRIC_NAMES` is registered, and every
  registered fabric class provides the full :class:`IFabric` surface
  (``name``, ``version``, ``capabilities``, ``build``, ``transact``,
  ``snapshot``, ``fingerprint``) plus the bus surface the model
  already speaks (``attach_snooper`` / ``detach_snooper`` /
  ``register_master`` / ``inflight_tenures``).
* **import direction** — the bus and cache model never imports the
  fabric package; the sanctioned consumers are the platform assembler
  (``core/platform``), the experiment layer, the CLI and this lint
  suite.  A snooper or controller reaching into ``repro.fabric`` would
  tie the reference semantics to one interconnect organisation.
* **no vocabulary cycle** — the fabric package never imports
  ``repro.core.platform``: the name vocabulary flows model → fabric
  only, so configurations validate without loading any fabric code.
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterable, List, Tuple

from .core import AstRule, Finding, ModuleSource, Project, register

__all__ = ["FabricContractRule", "validate_fabric_surface"]

#: the IFabric surface every registered fabric class must provide
REQUIRED_SURFACE = ("name", "version", "capabilities", "build", "transact",
                    "snapshot", "fingerprint")

#: the bus surface the model speaks, provided by deriving from AsbBus
BUS_SURFACE = ("attach_snooper", "detach_snooper", "register_master",
               "inflight_tenures")

#: path fragments allowed to import repro.fabric (POSIX, relative to
#: src/repro); everything else in the package is model code
_FABRIC_CONSUMERS = ("fabric/", "core/platform", "exp/", "lint/", "__main__")


def validate_fabric_surface() -> List[Tuple[str, int, str]]:
    """Problems with the fabric registry ([] = sound).

    Returns ``(path, line, message)`` tuples anchored to the offending
    class definitions, importing the live registry so a stub that
    merely parses cannot pass.
    """
    from ..core.platform import FABRIC_NAMES
    from ..fabric.interfaces import FabricCapabilities, IFabric
    from ..fabric.registry import _REGISTRY, fabric_names

    problems: List[Tuple[str, int, str]] = []

    def anchor(cls) -> Tuple[str, int]:
        try:
            path = inspect.getsourcefile(cls) or "fabric/registry.py"
            line = inspect.getsourcelines(cls)[1]
        except (OSError, TypeError):  # pragma: no cover - C extension
            return "fabric/registry.py", 1
        marker = "repro/"
        cut = path.rfind(marker)
        return (path[cut + len(marker):] if cut >= 0 else path), line

    registered = tuple(fabric_names())
    if registered != tuple(FABRIC_NAMES):
        problems.append((
            "fabric/registry.py", 1,
            f"fabric registry {registered} does not match "
            f"platform.FABRIC_NAMES {tuple(FABRIC_NAMES)}",
        ))
    for name, fabric in _REGISTRY.items():
        path, line = anchor(fabric)
        if not (isinstance(fabric, type) and issubclass(fabric, IFabric)):
            problems.append((path, line,
                             f"fabric {name!r} is not an IFabric class"))
            continue
        for attr in REQUIRED_SURFACE + BUS_SURFACE:
            member = getattr(fabric, attr, None)
            if member is None:
                problems.append((
                    path, line,
                    f"fabric {name!r} lacks required member {attr!r}",
                ))
            elif attr not in ("name", "version") and not callable(member):
                problems.append((
                    path, line,
                    f"fabric {name!r}: {attr!r} must be callable",
                ))
        if getattr(fabric, "name", None) != name:
            problems.append((
                path, line,
                f"fabric registered as {name!r} reports name "
                f"{getattr(fabric, 'name', None)!r}",
            ))
        version = getattr(fabric, "version", None)
        if not isinstance(version, int) or version < 1:
            problems.append((
                path, line,
                f"fabric {name!r}: version must be a positive int, "
                f"got {version!r}",
            ))
        try:
            caps = fabric.capabilities()
        except Exception as exc:  # noqa: BLE001 - report, don't crash lint
            problems.append((path, line,
                             f"fabric {name!r}: capabilities() raised {exc!r}"))
            continue
        if not isinstance(caps, FabricCapabilities):
            problems.append((
                path, line,
                f"fabric {name!r}: capabilities() returned "
                f"{type(caps).__name__}, not FabricCapabilities",
            ))
        if caps.broadcast and caps.point_to_point:
            problems.append((
                path, line,
                f"fabric {name!r}: broadcast and point_to_point are "
                "mutually exclusive organisations",
            ))
        fp = fabric.fingerprint()
        if not {"name", "version"} <= set(fp):
            problems.append((
                path, line,
                f"fabric {name!r}: fingerprint() must carry name and "
                f"version (bench baselines depend on them), got {sorted(fp)}",
            ))
    return problems


@register
class FabricContractRule(AstRule):
    """Fabrics implement the full surface; model code never imports them."""

    id = "fabric-contract"
    description = (
        "every registered fabric implements the full IFabric surface, "
        "model code never imports repro.fabric, and the fabric package "
        "never imports the platform vocabulary back"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        # Surface completeness: only meaningful when linting the real
        # package (a partial path selection may not include fabric/).
        if project.module("fabric/registry.py") is not None:
            for path, line, message in validate_fabric_surface():
                yield self.finding(path, line, message)
        yield from super().check(project)

    def visit_module(self, module: ModuleSource) -> Iterable[Finding]:
        if "fabric/" in module.path:
            yield from self._vocabulary_cycle(module)
            return
        if any(fragment in module.path for fragment in _FABRIC_CONSUMERS):
            return
        for node, name in self._fabric_imports(module):
            yield self.finding(
                module.path, node.lineno,
                f"model code imports fabric internals ({name}); the "
                "dependency is one-way — fabrics wrap the bus model, "
                "never the reverse",
            )

    def _vocabulary_cycle(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level > 0:
                    target = "." * node.level + target
                names = [target]
            else:
                continue
            for name in names:
                bare = name.lstrip(".")
                if bare == "core.platform" or bare.startswith(
                    ("core.platform.", "repro.core.platform")
                ):
                    yield self.finding(
                        module.path, node.lineno,
                        f"fabric package imports the platform ({name}); "
                        "the name vocabulary flows model -> fabric only",
                    )

    def _fabric_imports(self, module: ModuleSource):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.fabric" or alias.name.startswith(
                        "repro.fabric."
                    ):
                        yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level == 0 and (
                    target == "repro.fabric"
                    or target.startswith("repro.fabric.")
                ):
                    yield node, target
                elif node.level > 0 and (
                    target == "fabric" or target.startswith("fabric.")
                ):
                    yield node, "." * node.level + target
