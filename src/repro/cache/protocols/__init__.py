"""Invalidation-based coherence protocol FSMs."""

from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction
from .dragon import DragonProtocol
from .mei import MEIProtocol
from .mesi import MESIProtocol
from .moesi import MOESIProtocol
from .msi import MSIProtocol
from .si import SIProtocol

#: registry of protocol classes by canonical name
PROTOCOLS = {
    cls.name: cls
    for cls in (
        MEIProtocol, MSIProtocol, MESIProtocol, MOESIProtocol, SIProtocol,
        DragonProtocol,
    )
}


def make_protocol(name: str) -> CoherenceProtocol:
    """Instantiate a protocol by name ("MEI", "MSI", "MESI", "MOESI", "SI")."""
    try:
        return PROTOCOLS[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None


__all__ = [
    "CoherenceProtocol",
    "SnoopOp",
    "SnoopOutcome",
    "WriteAction",
    "MEIProtocol",
    "MSIProtocol",
    "MESIProtocol",
    "MOESIProtocol",
    "SIProtocol",
    "DragonProtocol",
    "PROTOCOLS",
    "make_protocol",
]
