"""A hand-rolled HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough of RFC 9112 for the service's API: request-line + headers
+ ``Content-Length`` bodies in, fixed-length JSON responses and
unbounded Server-Sent-Event streams out.  No chunked encoding, no
keep-alive (every response carries ``Connection: close``; clients are
scripted, not browsers with connection pools), and hard limits on
header count and body size so a misbehaving client cannot balloon the
process.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "json_response",
    "read_request",
    "response_bytes",
    "sse_event",
    "sse_preamble",
]

#: request-line / single-header ceiling (bytes)
MAX_LINE = 16 * 1024
MAX_HEADERS = 64
MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Parse/protocol failure that maps straight to a status code."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (400 on garbage)."""
        if not self.body:
            raise HttpError(400, "request body is empty")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off the stream; None on a clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending anything
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request line too long")
    if len(line) > MAX_LINE:
        raise HttpError(413, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            raw = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers")
        if len(raw) > MAX_LINE:
            raise HttpError(413, "header line too long")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        if ":" not in text:
            raise HttpError(400, f"malformed header {text!r}")
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(413, "too many headers")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY:
            raise HttpError(413, f"body exceeds {MAX_BODY} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one fixed-length response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one JSON response (sorted keys: diffable in tests)."""
    body = (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    return response_bytes(status, body, extra_headers=extra_headers)


def sse_preamble() -> bytes:
    """Headers opening a Server-Sent-Events stream (no length; we
    stream until the terminal event, then close the connection)."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )


def sse_event(data: Any, event: Optional[str] = None) -> bytes:
    """One SSE frame: optional event name + one JSON data line."""
    frame = ""
    if event is not None:
        frame += f"event: {event}\n"
    frame += f"data: {json.dumps(data, sort_keys=True)}\n\n"
    return frame.encode("utf-8")
