"""Injector arming, validation, and byte-identical replay."""

import pytest

from repro.core.platform import SHARED_BASE
from repro.errors import ConfigError, LivelockError
from repro.faults import SITES, FaultSpec, WatchdogConfig
from repro.faults.matrix import (
    MATRIX_MAX_RETRIES,
    MATRIX_WATCHDOG,
    default_matrix,
    run_entry,
)
from repro.workloads.microbench import (
    MicrobenchSpec,
    build_programs,
    make_platform,
    run_microbench,
)


def test_sites_registry_covers_the_issue_taxonomy():
    assert set(SITES) == {
        "drain.drop",
        "drain.delay",
        "snoop.silent",
        "retry.storm",
        "fiq.lose",
        "fiq.delay",
        "cam.stale",
        "arbiter.starve",
        "mem.delay",
    }


def test_unknown_site_rejected():
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=2,
                          iterations=1)
    with pytest.raises(ConfigError, match="unknown fault site"):
        make_platform(spec, faults=(FaultSpec("bus.gremlin"),))


def test_unknown_master_rejected():
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=2,
                          iterations=1)
    with pytest.raises(ConfigError, match="nobody"):
        make_platform(
            spec, faults=(FaultSpec("drain.drop", master="nobody"),)
        )


def test_starvation_needs_explicit_master():
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=2,
                          iterations=1)
    with pytest.raises(ConfigError, match="explicit master"):
        make_platform(spec, faults=(FaultSpec("arbiter.starve", count=None),))


def test_disabled_faults_change_nothing():
    """No specs armed == pristine platform: identical time and stats."""
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=4,
                          iterations=2)
    pristine = run_microbench(spec)
    gated = run_microbench(spec, faults=())
    assert gated.elapsed_ns == pristine.elapsed_ns
    assert gated.stats == pristine.stats


def test_benign_fault_replays_byte_identically():
    """Same seed, same spec -> identical faulted run, twice over."""
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=4,
                          iterations=2)
    fault = FaultSpec("mem.delay", probability=0.5, count=None,
                      extra_cycles=50, seed=3)
    first = run_microbench(spec, faults=(fault,))
    second = run_microbench(spec, faults=(fault,))
    assert first.elapsed_ns == second.elapsed_ns
    assert first.stats == second.stats


def test_benign_fault_slows_the_run_down():
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=4,
                          iterations=2)
    fault = FaultSpec("mem.delay", probability=1.0, count=None, extra_cycles=100)
    pristine = run_microbench(spec)
    faulted = run_microbench(spec, faults=(fault,))
    assert faulted.elapsed_ns > pristine.elapsed_ns


def test_retry_storm_trips_the_bus_ceiling():
    spec = MicrobenchSpec(scenario="wcs", solution="proposed", lines=2,
                          iterations=1)
    platform = make_platform(
        spec,
        max_bus_retries=20,
        faults=(FaultSpec("retry.storm", master="ppc755", count=None),),
    )
    platform.load_programs(build_programs(spec, platform))
    with pytest.raises(LivelockError) as exc_info:
        platform.run(max_events=500_000)
    error = exc_info.value
    assert error.master == "arm920t"
    assert error.retries == 21
    assert error.report is None  # ceiling, not watchdog


def test_watchdog_detection_replays_identically():
    """Liveness faults abort at the same instant on every run."""
    entry = next(e for e in default_matrix() if e.name == "drain-drop")
    first = run_entry(entry)
    second = run_entry(entry)
    assert first.outcome == second.outcome == "watchdog"
    assert first.detail == second.detail
