"""One fuzz case: a sampled configuration, its oracle, and its run.

A :class:`FuzzCase` is a frozen, JSON-round-trippable description of
one experiment — either a ``"trace"`` scenario (N processors with
sampled protocols/geometries replaying a sampled workload) or a
``"deadlock"`` scenario (the Fig 4 interleaving under one of the four
lock strategies).  :func:`run_case` executes it and classifies the
outcome; :func:`allowed_outcomes` is the oracle saying which outcomes
are *expected* for that configuration, so the campaign driver can tell
a reproduction of a known hazard (unwrapped Table 2 pair reading stale
data, ``solution="none"`` wedging) from a genuine simulator bug.

Everything here is deterministic: the same case dict replays the same
simulated instants and the same classification, which is what makes
the shrinker's reproducers trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from ..core.deadlock import SOLUTIONS, run_deadlock_demo
from ..core.platform import FABRIC_NAMES, Platform, PlatformConfig
from ..core.reduction import WrapperPolicy
from ..cpu.presets import preset_generic
from ..errors import (
    ConfigError,
    DeadlockError,
    LivelockError,
    ReproError,
    SimulationError,
)
from ..faults import FaultSpec, WatchdogConfig
from ..verify.checker import CoherenceChecker
from ..verify.model_check import check_pair
from ..workloads.tracegen import (
    TraceAccess,
    false_sharing_traces,
    hotspot_trace,
    lock_contention_traces,
    producer_consumer_trace,
    racy_traces,
)

__all__ = [
    "FUZZ_PROTOCOLS",
    "MODEL_PROTOCOLS",
    "OUTCOMES",
    "FuzzCase",
    "CaseResult",
    "allowed_outcomes",
    "build_workload",
    "run_case",
]

#: protocols the generator may sample (Dragon only pairs with itself).
#: SI is deliberately absent: it exists only as the i486 write-through
#: sub-protocol (``protocol_wt``) and has no integration-table entry,
#: so a coherent platform cannot be built around it.
FUZZ_PROTOCOLS = ("MEI", "MSI", "MESI", "MOESI", "DRAGON")
#: the subset the exhaustive model checker is sound for
MODEL_PROTOCOLS = ("MEI", "MSI", "MESI", "MOESI")
#: every classification :func:`run_case` (or the campaign driver) emits
OUTCOMES = (
    "clean", "violation", "deadlock", "livelock", "hang", "error",
    "crash", "timeout",
)

#: fast thresholds so a wedged deadlock-scenario case aborts quickly
FUZZ_WATCHDOG = WatchdogConfig(
    check_interval_ns=5_000, stall_threshold_ns=60_000, dump_records=16
)
#: event backstop per case: far above any legitimate fuzz workload
DEFAULT_MAX_EVENTS = 300_000


@dataclass(frozen=True)
class FuzzCase:
    """One sampled configuration, JSON-round-trippable."""

    seed: int
    scenario: str = "trace"          # "trace" | "deadlock"
    # -- trace scenario (tuples are per-master; any length >= 2) ----------
    protocols: Tuple[str, ...] = ("MESI", "MESI")
    wrapped: bool = True
    cache_sizes: Tuple[int, ...] = (1024, 1024)
    cache_ways: Tuple[int, ...] = (2, 2)
    workload: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "racy", "n": 20, "seed": 1}
    )
    fault: Optional[Dict[str, Any]] = None
    #: coherence fabric for trace cases ("atomic" | "split" | "directory")
    fabric: str = "atomic"
    # -- deadlock scenario ------------------------------------------------
    solution: str = "none"
    max_events: int = DEFAULT_MAX_EVENTS

    def __post_init__(self):
        if self.scenario not in ("trace", "deadlock"):
            raise ConfigError(f"unknown fuzz scenario {self.scenario!r}")
        if self.scenario == "deadlock" and self.solution not in SOLUTIONS:
            raise ConfigError(f"unknown lock solution {self.solution!r}")
        if self.scenario == "trace":
            if self.fabric not in FABRIC_NAMES:
                raise ConfigError(f"unknown fuzz fabric {self.fabric!r}")
            for name in self.protocols:
                if name not in FUZZ_PROTOCOLS:
                    raise ConfigError(f"unknown fuzz protocol {name!r}")
            if len(self.protocols) < 2:
                raise ConfigError("a trace case needs at least two masters")
            if not (
                len(self.protocols)
                == len(self.cache_sizes)
                == len(self.cache_ways)
            ):
                raise ConfigError(
                    "per-master tuples disagree on master count: "
                    f"{len(self.protocols)} protocols, "
                    f"{len(self.cache_sizes)} cache sizes, "
                    f"{len(self.cache_ways)} cache ways"
                )

    def with_(self, **changes) -> "FuzzCase":
        """A modified copy."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (lists instead of tuples).

        ``fabric`` is emitted only when non-default, so every
        historical case dict (and its JSON reproducer) stays
        byte-identical — the same convention the workload ``procs``
        key follows.
        """
        data = {
            "seed": self.seed,
            "scenario": self.scenario,
            "protocols": list(self.protocols),
            "wrapped": self.wrapped,
            "cache_sizes": list(self.cache_sizes),
            "cache_ways": list(self.cache_ways),
            "workload": self.workload,
            "fault": self.fault,
            "solution": self.solution,
            "max_events": self.max_events,
        }
        if self.fabric != "atomic":
            data["fabric"] = self.fabric
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=data["seed"],
            scenario=data.get("scenario", "trace"),
            protocols=tuple(data.get("protocols", ("MESI", "MESI"))),
            wrapped=data.get("wrapped", True),
            cache_sizes=tuple(data.get("cache_sizes", (1024, 1024))),
            cache_ways=tuple(data.get("cache_ways", (2, 2))),
            workload=data.get("workload", {"kind": "racy", "n": 20, "seed": 1}),
            fault=data.get("fault"),
            fabric=data.get("fabric", "atomic"),
            solution=data.get("solution", "none"),
            max_events=data.get("max_events", DEFAULT_MAX_EVENTS),
        )

    def describe(self) -> str:
        """One-line human rendering for logs and reports."""
        if self.scenario == "deadlock":
            return f"deadlock[{self.solution}] seed={self.seed}"
        mode = "wrapped" if self.wrapped else "UNWRAPPED"
        fault = f" fault={self.fault['site']}" if self.fault else ""
        fabric = f" fabric={self.fabric}" if self.fabric != "atomic" else ""
        return (
            f"{'+'.join(self.protocols)} {mode} "
            f"{self.workload.get('kind', '?')} seed={self.seed}{fault}{fabric}"
        )


@dataclass
class CaseResult:
    """What happened when the case ran, against its oracle."""

    outcome: str
    detail: str
    allowed: Tuple[str, ...]
    elapsed_ns: Optional[int] = None
    violations: int = 0

    @property
    def expected(self) -> bool:
        """True when the outcome is one the oracle allows."""
        return self.outcome in self.allowed

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "outcome": self.outcome,
            "detail": self.detail,
            "allowed": list(self.allowed),
            "expected": self.expected,
            "elapsed_ns": self.elapsed_ns,
            "violations": self.violations,
        }


# -- the oracle -------------------------------------------------------------
def _parallel_kind(workload: Dict[str, Any]) -> bool:
    """Does this workload run one concurrent driver per processor?"""
    return workload.get("kind") not in ("producer-consumer", "explicit-serial")


@lru_cache(maxsize=None)
def _pair_unwrapped_unsafe(p0: str, p1: str) -> bool:
    if p0 in MODEL_PROTOCOLS and p1 in MODEL_PROTOCOLS:
        return not check_pair(p0, p1, wrapped=False).ok
    if p0 == p1:
        return False
    return True


def _unwrapped_unsafe(protocols: Tuple[str, ...]) -> bool:
    """May this mix legitimately violate coherence without wrappers?

    For invalidation pairs the exhaustive model checker answers
    exactly; Dragon/SI mixes are outside its soundness scope, so any
    *heterogeneous* mix involving them is conservatively treated as
    possibly-unsafe, while a homogeneous mix snoops natively and must
    stay coherent.  An N-way mix is unsafe as soon as any pair drawn
    from it is: the incompatible pair's interactions are a subset of
    the system's.
    """
    return any(
        _pair_unwrapped_unsafe(p0, p1)
        for i, p0 in enumerate(protocols)
        for p1 in protocols[i + 1:]
    )


def allowed_outcomes(case: FuzzCase) -> Tuple[str, ...]:
    """The oracle: every outcome this configuration may legitimately show.

    * deadlock scenario — ``solution="none"`` must wedge, everything
      else must complete (a clean "none" run would mean the Fig 4
      reproduction regressed);
    * trace scenario — clean always; stale reads / SWMR breakage when
      the wrappers are off and the pair is (possibly) incompatible;
      any detector firing when a fault is armed.  Concurrent
      multi-master workloads may additionally deadlock even when
      wrapped: the controllers deliberately model the paper's single
      tag/data port, so two masters that simultaneously miss on lines
      dirty in each other's caches each hold their own port (blocking
      the drain the other is waiting for) — the Fig 4 hazard surfacing
      on unsynchronised data traffic rather than on a lock variable.
      Coherence is never allowed to break on a wrapped pair, though:
      a wrapped ``violation`` is always unexpected.
    """
    if case.scenario == "deadlock":
        return ("deadlock",) if case.solution == "none" else ("clean",)
    allowed = {"clean"}
    if case.fault is not None:
        allowed.update(("violation", "deadlock", "livelock", "hang"))
    if not case.wrapped and _unwrapped_unsafe(case.protocols):
        allowed.add("violation")
    if _parallel_kind(case.workload):
        allowed.add("deadlock")
    return tuple(sorted(allowed))


# -- workload construction ---------------------------------------------------
def build_workload(workload: Dict[str, Any]):
    """Materialise a workload dict into replayable traces.

    Returns ``("parallel", {proc: [TraceAccess, ...]})`` for the
    contention kinds (one concurrent driver per processor) or
    ``("serial", [TraceAccess, ...])`` for the serialised kinds (one
    driver issuing the interleaving in order — what the shrinker's
    byte-identical reproducers use).

    The generated kinds honour ``workload["procs"]`` (default 2) so an
    N-master case gets one trace per master.
    """
    kind = workload.get("kind")
    procs = workload.get("procs", 2)
    if kind == "racy":
        return "parallel", racy_traces(
            workload.get("n", 20),
            procs=procs,
            footprint_words=workload.get("footprint_words", 8),
            write_ratio=workload.get("write_ratio", 0.5),
            seed=workload.get("seed", 1),
        )
    if kind == "false-sharing":
        return "parallel", false_sharing_traces(
            workload.get("n", 20),
            procs=procs,
            lines=workload.get("lines", 2),
            seed=workload.get("seed", 1),
        )
    if kind == "lock-contention":
        return "parallel", lock_contention_traces(
            workload.get("n_acquires", 4),
            procs=procs,
            seed=workload.get("seed", 1),
        )
    if kind == "hotspot":
        return "parallel", {
            proc: hotspot_trace(
                workload.get("n", 30),
                footprint_words=workload.get("footprint_words", 32),
                proc=proc,
                seed=workload.get("seed", 1) + proc,
            )
            for proc in range(procs)
        }
    if kind == "producer-consumer":
        return "serial", producer_consumer_trace(workload.get("n_items", 10))
    if kind == "explicit":
        return "parallel", {
            int(proc): [
                TraceAccess(int(proc), op, addr, value)
                for op, addr, value in accesses
            ]
            for proc, accesses in workload["traces"].items()
        }
    if kind == "explicit-serial":
        return "serial", [
            TraceAccess(proc, op, addr, value)
            for proc, op, addr, value in workload["accesses"]
        ]
    raise ConfigError(f"unknown workload kind {kind!r}")


def explicit_workload(workload: Dict[str, Any]) -> Dict[str, Any]:
    """The same workload, frozen into its explicit form.

    Generated kinds are expanded into literal access lists so the
    shrinker can delete individual accesses while the replay stays
    byte-identical.  Already-explicit workloads pass through.
    """
    if workload.get("kind") in ("explicit", "explicit-serial"):
        return workload
    mode, traces = build_workload(workload)
    if mode == "serial":
        return {
            "kind": "explicit-serial",
            "accesses": [[a.proc, a.op, a.addr, a.value] for a in traces],
        }
    return {
        "kind": "explicit",
        "traces": {
            str(proc): [[a.op, a.addr, a.value] for a in traces[proc]]
            for proc in sorted(traces)
        },
    }


# -- execution ---------------------------------------------------------------
def _trace_platform(case: FuzzCase) -> Platform:
    cores = tuple(
        preset_generic(f"p{i}", case.protocols[i]).with_(
            cache_size=case.cache_sizes[i], cache_ways=case.cache_ways[i]
        )
        for i in range(len(case.protocols))
    )
    faults: Tuple[FaultSpec, ...] = ()
    if case.fault is not None:
        faults = (FaultSpec(**case.fault),)
    platform = Platform(
        PlatformConfig(
            cores=cores,
            hardware_coherence=True,
            faults=faults,
            fabric=case.fabric,
        )
    )
    if not case.wrapped:
        for wrapper in platform.wrappers:
            if wrapper is not None:
                wrapper.policy = WrapperPolicy()  # identity: native snooping
    return platform


def _run_trace_case(case: FuzzCase) -> CaseResult:
    allowed = allowed_outcomes(case)
    platform = _trace_platform(case)
    checker = CoherenceChecker(platform, max_violations=64)
    mode, traces = build_workload(case.workload)
    controllers = platform.controllers

    def driver(accesses):
        for access in accesses:
            controller = controllers[access.proc]
            if access.op == "read":
                yield from controller.read(access.addr)
            elif access.op == "swap":
                yield from controller.swap(access.addr, access.value)
            else:
                yield from controller.write(access.addr, access.value)

    drivers: List = []
    if mode == "serial":
        drivers.append(platform.sim.process(driver(traces), name="fuzz-serial"))
    else:
        for proc in sorted(traces):
            drivers.append(
                platform.sim.process(driver(traces[proc]), name=f"fuzz-p{proc}")
            )
    done = platform.sim.all_of(drivers)
    try:
        platform.sim.run(stop_event=done, max_events=case.max_events)
    except DeadlockError as exc:
        return CaseResult("deadlock", str(exc), allowed)
    except LivelockError as exc:
        return CaseResult("livelock", str(exc), allowed)
    except SimulationError as exc:
        return CaseResult("hang", str(exc), allowed)
    except ReproError as exc:
        return CaseResult("error", f"{type(exc).__name__}: {exc}", allowed)
    if not done.triggered:
        return CaseResult("hang", "drivers never completed", allowed)
    checker.check_all_lines()
    if not checker.clean:
        return CaseResult(
            "violation",
            f"{len(checker.violations)} violation(s); first: "
            + str(checker.violations[0]),
            allowed,
            elapsed_ns=platform.sim.now,
            violations=len(checker.violations),
        )
    return CaseResult(
        "clean", checker.summary(), allowed, elapsed_ns=platform.sim.now
    )


def _run_deadlock_case(case: FuzzCase) -> CaseResult:
    allowed = allowed_outcomes(case)
    outcome = run_deadlock_demo(
        case.solution, max_events=case.max_events, watchdog=FUZZ_WATCHDOG
    )
    if outcome.deadlocked:
        return CaseResult("deadlock", outcome.detail, allowed)
    return CaseResult(
        "clean", outcome.detail, allowed, elapsed_ns=outcome.elapsed_ns
    )


def run_case(case: FuzzCase) -> CaseResult:
    """Execute ``case`` and classify the outcome against its oracle.

    Configuration mistakes (an unbuildable platform, a bad workload
    dict) classify as ``error`` — never in any allowed set, so they
    surface as unexpected rather than crashing the campaign.
    """
    try:
        if case.scenario == "deadlock":
            return _run_deadlock_case(case)
        return _run_trace_case(case)
    except ReproError as exc:
        return CaseResult(
            "error", f"{type(exc).__name__}: {exc}", allowed_outcomes(case)
        )
