"""Experiment orchestration: parallel sweeps with on-disk result caching.

The evaluation artefacts (Figures 5-8, the headline numbers, the
ablations) are all produced by sweeps over independent simulator
configurations.  This package turns each sweep into a list of
content-hashable :class:`~repro.exp.jobs.SimJob` objects and hands them
to a :class:`~repro.exp.runner.SweepRunner`, which fans them out over a
``multiprocessing`` worker pool, answers repeats from an on-disk
content-addressed cache, and records a JSON run manifest (per-job wall
time, cache hits, worker utilisation).

Because every job is an independent deterministic simulation and the
runner returns results in submission order, parallel and serial runs
produce byte-identical figure CSV/JSON output.

Entry points: ``python -m repro sweep`` (plus ``--jobs``/``--cache-dir``
on the ``figure`` and ``headlines`` commands) and
``examples/regenerate_results.py --jobs N``.
"""

from .cache import ResultCache, canonical_payload, content_key
from .jobs import MicrobenchJob, SequenceJob, SimJob, job_from_payload
from .runner import JobRecord, SweepRunner, run_jobs

__all__ = [
    "SimJob",
    "MicrobenchJob",
    "SequenceJob",
    "job_from_payload",
    "ResultCache",
    "canonical_payload",
    "content_key",
    "JobRecord",
    "SweepRunner",
    "run_jobs",
]
