"""Tables 2 and 3 as executable sequences."""

import pytest

from repro.workloads import run_sequence, table2_demo, table3_demo
from repro.workloads.sequences import TABLE2_OPS


class TestTable2:
    """MESI (P1) + MEI (P2): the shared-state problem."""

    def test_unwrapped_states_match_paper(self):
        result = table2_demo(wrapped=False)
        observed = [step.states for step in result.steps]
        assert observed == [
            ("E", "I"),   # a: P1 reads
            ("S", "E"),   # b: P2 reads -> P1 downgrades, P2 fills E
            ("S", "M"),   # c: P2 writes silently
            ("S", "M"),   # d: P1 reads its stale S copy
        ]

    def test_unwrapped_reads_stale(self):
        result = table2_demo(wrapped=False)
        assert result.steps[3].stale
        assert result.stale_reads == 1
        assert result.violations  # checker agrees

    def test_wrapped_removes_shared_state(self):
        result = table2_demo(wrapped=True)
        for step in result.steps:
            assert "S" not in step.states  # MEI system: S never appears

    def test_wrapped_reads_fresh(self):
        result = table2_demo(wrapped=True)
        assert result.stale_reads == 0
        assert result.violations == []
        assert result.steps[3].value_read == 101

    def test_wrapped_system_protocol(self):
        assert table2_demo(wrapped=True).system_protocol == "MEI"


class TestTable3:
    """MSI (P1) + MESI (P2): the exclusive-state problem."""

    def test_unwrapped_states_match_paper(self):
        result = table3_demo(wrapped=False)
        observed = [step.states for step in result.steps]
        assert observed == [
            ("S", "I"),   # a: P1 reads (MSI fills S)
            ("S", "E"),   # b: P2 fills E (P1 cannot assert shared)
            ("S", "M"),   # c: silent E -> M
            ("S", "M"),   # d: stale read
        ]

    def test_unwrapped_reads_stale(self):
        result = table3_demo(wrapped=False)
        assert result.stale_reads == 1

    def test_wrapped_removes_exclusive_state(self):
        result = table3_demo(wrapped=True)
        for step in result.steps:
            assert "E" not in step.states  # MSI system: E never appears

    def test_wrapped_reads_fresh(self):
        result = table3_demo(wrapped=True)
        assert result.stale_reads == 0
        assert result.violations == []

    def test_wrapped_system_protocol(self):
        assert table3_demo(wrapped=True).system_protocol == "MSI"


class TestRunSequence:
    def test_render_contains_rows(self):
        text = table2_demo(wrapped=False).render()
        assert "STALE" in text
        assert text.count("\n") >= 5

    def test_custom_ops(self):
        result = run_sequence(
            ("MESI", "MESI"), [(0, "read"), (1, "read")], wrapped=True
        )
        assert result.steps[-1].states == ("S", "S")
        assert result.stale_reads == 0

    def test_wrong_arity_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_sequence(("MESI",), TABLE2_OPS)

    def test_bad_op_rejected(self):
        with pytest.raises(Exception):
            run_sequence(("MESI", "MEI"), [(0, "frobnicate")])

    def test_moesi_homogeneous_supplies_cache_to_cache(self):
        result = run_sequence(
            ("MOESI", "MOESI"),
            [(0, "read"), (0, "write"), (1, "read"), (1, "read")],
            wrapped=True,
        )
        # After P1's read of P0's dirty line: P0 owns, P1 shares.
        assert result.steps[2].states == ("O", "S")
        assert result.stale_reads == 0
        assert result.violations == []
