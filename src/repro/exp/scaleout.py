"""Scale-out study: N masters under the three bus service disciplines.

The paper evaluates two-master platforms; the wrapper methodology
itself never assumes two.  This experiment measures what actually
limits an N-master build of it: the shared bus.  For each master count
and each NORMAL-band service discipline (FCFS, static per-master
priority, round-robin — cf. arXiv:1004.3560's service-discipline
comparison on a shared-bus multiprocessor) it runs a fixed contended
false-sharing workload over a mixed-protocol platform (MESI / MOESI /
MSI / MEI cycling across the masters, every one behind its reduction
wrapper) and records:

* ``elapsed_ns`` — simulated completion time of the whole workload;
* ``bus_txns`` — completed bus tenures (coherence traffic volume);
* ``grant_spread`` — max/min per-master grant counts: 1.0 is perfect
  fairness, large values mean some master is being starved.

Everything measured is *simulated* and therefore deterministic: the
committed ``BENCH_scaleout.json`` is a golden file, and the CI smoke
job compares against it exactly (no wall-clock tolerance needed).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..core.platform import Platform, PlatformConfig
from ..cpu.presets import preset_generic
from ..workloads.tracegen import false_sharing_traces, replay_parallel

__all__ = [
    "BENCH_FILE",
    "DISCIPLINES",
    "MASTER_COUNTS",
    "run_point",
    "run_suite",
    "render_comparison",
    "check_regression",
    "load_results",
]

#: canonical result file name (at the repository root)
BENCH_FILE = "BENCH_scaleout.json"

DISCIPLINES = ("fcfs", "priority", "round-robin")
MASTER_COUNTS = (2, 4, 8, 16)
QUICK_MASTER_COUNTS = (2, 4, 8)

#: protocols cycled across the masters — a genuinely mixed platform
_PROTOCOL_CYCLE = ("MESI", "MOESI", "MSI", "MEI")


def _platform(n_masters: int, discipline: str) -> Platform:
    cores = tuple(
        preset_generic(f"p{i}", _PROTOCOL_CYCLE[i % len(_PROTOCOL_CYCLE)])
        for i in range(n_masters)
    )
    # "window" drains: an N-master platform must push snoop data in the
    # post-ARTRY window or contended dirty lines cross-deadlock (the
    # paper-faithful "retry-first" port model wedges beyond two busy
    # masters — that hazard is the deadlock demo's subject, not ours).
    return Platform(
        PlatformConfig(
            cores=cores,
            hardware_coherence=True,
            arbitration=discipline,
            drain_policy="window",
        )
    )


def run_point(
    n_masters: int, discipline: str, accesses_per_master: int = 40
) -> Dict[str, Any]:
    """One (master count, discipline) measurement."""
    platform = _platform(n_masters, discipline)
    traces = false_sharing_traces(
        accesses_per_master, procs=n_masters, lines=2, seed=11
    )
    result = replay_parallel(platform, traces)
    counts = platform.bus.arbiter.grants_by_master
    spread = (
        max(counts.values()) / min(counts.values()) if counts else 0.0
    )
    return {
        "masters": n_masters,
        "discipline": discipline,
        "elapsed_ns": result.elapsed_ns,
        "bus_txns": result.bus_txns,
        "grant_spread": round(spread, 3),
    }


def run_suite(
    quick: bool = False,
    master_counts: Optional[Sequence[int]] = None,
    accesses_per_master: int = 40,
) -> Dict[str, Any]:
    """The full sweep; returns the result document.

    ``quick`` drops the 16-master column (CI smoke); the per-point
    workload itself is fixed, so the surviving points stay comparable
    to a committed full-mode baseline.
    """
    counts = tuple(
        master_counts
        if master_counts is not None
        else (QUICK_MASTER_COUNTS if quick else MASTER_COUNTS)
    )
    points: List[Dict[str, Any]] = []
    for discipline in DISCIPLINES:
        for n in counts:
            points.append(run_point(n, discipline, accesses_per_master))
    return {
        "schema": 1,
        "suite": "scaleout",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "params": {
            "master_counts": list(counts),
            "accesses_per_master": accesses_per_master,
            "protocol_cycle": list(_PROTOCOL_CYCLE),
        },
        "points": points,
    }


def _index(document: Dict[str, Any]) -> Dict[tuple, Dict[str, Any]]:
    return {
        (p["discipline"], p["masters"]): p
        for p in document.get("points", [])
    }


def render_comparison(
    current: Dict[str, Any], baseline: Optional[Dict[str, Any]] = None
) -> str:
    """The scaling figure, as an aligned text table per discipline."""
    lines = [
        f"scaleout suite (quick={current.get('quick')}, "
        f"py {current.get('python')})",
        f"  {'discipline':<12} {'masters':>7} {'elapsed_ns':>12} "
        f"{'bus_txns':>9} {'spread':>7}",
    ]
    base = _index(baseline) if baseline else {}
    for point in current.get("points", []):
        key = (point["discipline"], point["masters"])
        suffix = ""
        if key in base:
            ratio = (
                point["elapsed_ns"] / base[key]["elapsed_ns"]
                if base[key]["elapsed_ns"]
                else 0.0
            )
            suffix = f"   {ratio:.2f}x baseline time"
        lines.append(
            f"  {point['discipline']:<12} {point['masters']:>7} "
            f"{point['elapsed_ns']:>12,} {point['bus_txns']:>9,} "
            f"{point['grant_spread']:>7.2f}{suffix}"
        )
    return "\n".join(lines)


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.0,
) -> List[str]:
    """Points where ``current`` differs from the baseline.

    The metrics are simulated quantities, so the default tolerance is
    exact: any drift in completion time or traffic volume on a shared
    point is a behaviour change someone must have intended (and should
    re-baseline deliberately).
    """
    failures: List[str] = []
    base = _index(baseline)
    for point in current.get("points", []):
        key = (point["discipline"], point["masters"])
        if key not in base:
            continue
        for metric in ("elapsed_ns", "bus_txns"):
            got, want = point[metric], base[key][metric]
            if want and abs(got - want) > tolerance * want:
                failures.append(
                    f"{key[0]}@{key[1]} masters: {metric} {got:,} != "
                    f"baseline {want:,}"
                )
    return failures


def load_results(path: str) -> Optional[Dict[str, Any]]:
    """Parse a previously written result file (None when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
