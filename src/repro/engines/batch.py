"""The batch engine: trace-driven functional replay, statistics only.

Executes the *same coherence model* as the event kernel — the protocol
FSM tables, the wrapper conversions of the reduction algebra, the bus
snoop-window/ARTRY/drain semantics, LRU victim selection — but as a
direct functional evaluation with no event kernel at all: no
generators, no time heap, no arbitration, no tracing.  The cost per
access drops from ~30 fired kernel events to a handful of dict
operations, which is where the order-of-magnitude speedup comes from
(see ``docs/engines.md`` for the full argument and its limits).

Ingestion is vectorised over numpy when it is importable: address
decomposition (set index / tag / word offset / line base) and region
classification (cacheable / write-through) for the whole trace are
computed as whole-array operations before the sequential replay loop
runs over plain machine integers.  The replay loop itself is
inherently sequential — every access's outcome depends on the cache
and coherence state left by the previous one — so it cannot be a
vector operation; without numpy a scalar ingestion fallback keeps the
engine available everywhere.

Faithfulness contract (enforced by ``tests/engines/test_equivalence.py``):
on any serialised trace, every counter except the timing-only
``bus.busy*`` keys matches the exact engine, as does the final
per-master line-state occupancy.  What the batch engine does *not*
model: simulated time, concurrent drivers (port contention, upgrade
races), devices, fault injection, and non-coherent masters.
"""

from __future__ import annotations

import bisect
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..bus.types import BusOp
from ..cache.line import State
from ..cache.protocols import make_protocol
from ..cache.protocols.base import SnoopOp, WriteAction
from ..core.platform import PlatformConfig, build_memory_map
from ..core.reduction import SharedMode, WrapperPolicy, reduce_protocols
from ..core.wrapper import _BUS_TO_SNOOP
from ..errors import ConfigError, IntegrationError, ProtocolError
from ..mem.map import WritePolicy
from .interfaces import EngineCapabilities, EngineRunResult, ISimEngine
from .registry import register_engine

try:  # numpy accelerates ingestion; the model itself is pure Python
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["BatchEngine", "HAS_NUMPY"]

HAS_NUMPY = _np is not None

_WORD_MASK = 0xFFFF_FFFF
_DIRTY = (State.MODIFIED, State.OWNED)

# Interned stat-key strings: the bus bumps run once per transaction, so
# the "bus.op.<x>" concatenation is hoisted out of the hot loop.
_OP_KEYS = {op: "bus.op." + op.value for op in BusOp}


class _Line:
    """One resident line: the functional mirror of CacheLine."""

    __slots__ = ("tag", "state", "data", "protocol", "lru")

    def __init__(self, tag, state, data, protocol, lru):
        self.tag = tag
        self.state = state
        self.data = data
        self.protocol = protocol
        self.lru = lru


class _Master:
    """One master's cache: geometry, policy, and line storage."""

    __slots__ = (
        "name", "enabled", "protocol", "protocol_wt", "convert",
        "shared_mode", "allow_supply", "offset_bits", "tag_shift",
        "set_mask", "line_mask", "line_bytes", "line_words", "ways",
        "n_sets", "sets", "index", "clock",
        "key_hits", "key_read_misses", "key_write_misses", "key_fills",
        "key_bus_master", "snoop_ops",
    )

    def __init__(self, cfg, policy):
        geom = cfg.geometry()
        self.name = cfg.name
        self.enabled = cfg.cache_enabled
        self.protocol = make_protocol(cfg.protocol)
        self.protocol_wt = (
            make_protocol(cfg.protocol_wt) if cfg.protocol_wt else None
        )
        self.convert = policy.convert_read_to_write
        self.shared_mode = policy.shared_mode
        self.allow_supply = policy.allow_supply
        self.offset_bits = geom._offset_bits
        self.tag_shift = geom._offset_bits + geom._index_bits
        self.set_mask = geom.n_sets - 1
        self.line_mask = ~(geom.line_bytes - 1)
        self.line_bytes = geom.line_bytes
        self.line_words = geom.line_words
        self.ways = geom.ways
        self.n_sets = geom.n_sets
        self.sets: List[List[Optional[_Line]]] = [
            [None] * geom.ways for _ in range(geom.n_sets)
        ]
        self.index: List[Dict[int, Tuple[int, _Line]]] = [
            {} for _ in range(geom.n_sets)
        ]
        self.clock = 0
        self.key_hits = f"{cfg.name}.hits"
        self.key_read_misses = f"{cfg.name}.read_misses"
        self.key_write_misses = f"{cfg.name}.write_misses"
        self.key_fills = f"{cfg.name}.fills"
        self.key_bus_master = f"bus.master.{cfg.name}"
        # This master's view of each bus op, with the wrapper's
        # read-to-write conversion already applied.
        self.snoop_ops = {}
        for bus_op, snoop_op in _BUS_TO_SNOOP.items():
            if self.convert and (
                snoop_op is SnoopOp.READ or snoop_op is SnoopOp.READ_EXCL
            ):
                snoop_op = SnoopOp.WRITE
            self.snoop_ops[bus_op] = snoop_op

    def probe(self, addr: int):
        """(line, set index, tag) for ``addr``; line None on miss."""
        set_i = (addr >> self.offset_bits) & self.set_mask
        tag = addr >> self.tag_shift
        entry = self.index[set_i].get(tag)
        if entry is None:
            return None, set_i, tag
        return entry[1], set_i, tag


class _BatchModel:
    """One run's worth of functional-replay state."""

    def __init__(self, config: PlatformConfig):
        if config.faults:
            raise ConfigError("the batch engine does not model fault injection")
        if config.fabric != "atomic":
            raise ConfigError(
                "the batch engine replays the atomic snoopy bus only; "
                f"fabric {config.fabric!r} needs the exact event kernel"
            )
        if not all(cfg.coherent for cfg in config.cores):
            raise ConfigError(
                "the batch engine supports coherent masters only; "
                "non-coherent cores need the snoop-logic/interrupt "
                "machinery of the event kernel"
            )
        self.config = config
        self.map = build_memory_map(config)
        self.snooping = config.hardware_coherence
        if self.snooping:
            policies = reduce_protocols(
                [cfg.protocol for cfg in config.cores]
            ).policies
        else:
            policies = [WrapperPolicy()] * len(config.cores)
        self.masters = [
            _Master(cfg, policy)
            for cfg, policy in zip(config.cores, policies)
        ]
        self.mem: Dict[int, int] = {}
        self.stats: Dict[str, int] = {}
        # Memoised FSM tables, keyed by protocol instance: snoop and
        # write-hit outcomes are pure functions of (state, op)/(state),
        # so each distinct transition is computed once per run.
        self._snoop_cache: Dict[tuple, object] = {}
        self._fill_cache: Dict[tuple, State] = {}
        # Eager FSM tables (protocol id -> keyed outcome) so the replay
        # and snoop loops resolve a transition with two dict probes.
        self.write_hit_tables: Dict[int, Dict[State, tuple]] = {}
        self.snoop_tables: Dict[int, Dict[tuple, object]] = {}
        for m in self.masters:
            for protocol in (m.protocol, m.protocol_wt):
                if protocol is None or id(protocol) in self.write_hit_tables:
                    continue
                table: Dict[State, tuple] = {}
                snoops: Dict[SnoopOp, Dict[State, object]] = {
                    op: {} for op in SnoopOp
                }
                for state in protocol.states:
                    try:
                        table[state] = protocol.write_hit(state)
                    except ProtocolError:
                        # Unreachable for this protocol's lines; a hit
                        # in such a state re-raises through the
                        # fallback path, matching the exact engine.
                        pass
                    for op in SnoopOp:
                        try:
                            snoops[op][state] = protocol.snoop(state, op)
                        except ProtocolError:
                            pass
                self.write_hit_tables[id(protocol)] = table
                self.snoop_tables[id(protocol)] = snoops

    # -- stats ----------------------------------------------------------
    def bump(self, key: str, amount: int = 1) -> None:
        stats = self.stats
        stats[key] = stats.get(key, 0) + amount

    # -- memoised protocol tables ---------------------------------------
    def _snoop_outcome(self, protocol, state, op):
        table = self.snoop_tables.get(id(protocol))
        if table is not None:
            out = table[op].get(state)
            if out is not None:
                return out
        key = (id(protocol), state, op)
        out = self._snoop_cache.get(key)
        if out is None:
            out = protocol.snoop(state, op)
            self._snoop_cache[key] = out
        return out

    def _write_hit_outcome(self, protocol, state):
        outcome = self.write_hit_tables[id(protocol)].get(state)
        if outcome is None:
            # Let the protocol raise its own error for a foreign state.
            outcome = protocol.write_hit(state)
        return outcome

    def _fill_state(self, protocol, exclusive, shared):
        key = (id(protocol), exclusive, shared)
        state = self._fill_cache.get(key)
        if state is None:
            state = protocol.fill_state(exclusive, shared)
            self._fill_cache[key] = state
        return state

    # -- the bus ---------------------------------------------------------
    def txn(self, op, addr, master, data=None, line_words=0):
        """One bus tenure: snoop window, ARTRY/drain loop, data phase.

        Returns ``(shared, data)`` — the sampled shared signal and the
        data-phase payload — mirroring the exact bus's BusResult.
        """
        stats = self.stats
        for key in ("bus.txns", _OP_KEYS[op], master.key_bus_master):
            stats[key] = stats.get(key, 0) + 1
        supplier_data = None
        if self.snooping:
            snoop_tables = self.snoop_tables
            while True:
                shared = False
                supplier_data = None
                drains = []
                for snooper in self.masters:
                    if snooper is master:
                        continue
                    set_i = (addr >> snooper.offset_bits) & snooper.set_mask
                    tag = addr >> snooper.tag_shift
                    entry = snooper.index[set_i].get(tag)
                    if entry is None:
                        continue
                    line = entry[1]
                    snoop_op = snooper.snoop_ops[op]
                    out = snoop_tables[id(line.protocol)][snoop_op].get(
                        line.state
                    )
                    if out is None:
                        out = self._snoop_outcome(
                            line.protocol, line.state, snoop_op
                        )
                    if out.apply_update and op is BusOp.UPDATE and data is not None:
                        offset = (addr & (snooper.line_bytes - 1)) >> 2
                        line.data[offset] = data
                    if out.drain:
                        # ARTRY: commit deferred to the drain push.
                        drains.append((snooper, out.next_state))
                        continue
                    if out.supply:
                        if not snooper.allow_supply:
                            raise IntegrationError(
                                f"{snooper.name}: protocol attempted "
                                "cache-to-cache supply but the wrapper "
                                "policy forbids it (reduction bug)"
                            )
                        supplier_data = list(line.data)
                        shared = True
                        self._apply_snoop_state(snooper, line, set_i, tag, out.next_state)
                        continue
                    if out.assert_shared:
                        shared = True
                    self._apply_snoop_state(snooper, line, set_i, tag, out.next_state)
                if drains:
                    stats["bus.retries"] = stats.get("bus.retries", 0) + 1
                    for snooper, next_state in drains:
                        self._drain(snooper, addr, next_state)
                    # The master re-arbitrates and the address phase
                    # re-snoops everyone against the post-drain states.
                    continue
                break
        else:
            shared = False
        if supplier_data is not None:
            stats["bus.c2c_supplies"] = stats.get("bus.c2c_supplies", 0) + 1
            return shared, supplier_data
        return shared, self._data_phase(op, addr, data, line_words)

    def _data_phase(self, op, addr, data, line_words):
        mem = self.mem
        if op is BusOp.READ:
            return mem.get(addr, 0)
        if op is BusOp.WRITE:
            mem[addr] = data & _WORD_MASK
            return None
        if op is BusOp.SWAP:
            old = mem.get(addr, 0)
            mem[addr] = data & _WORD_MASK
            return old
        if op is BusOp.READ_LINE or op is BusOp.READ_LINE_EXCL:
            return [mem.get(addr + 4 * i, 0) for i in range(line_words)]
        if op is BusOp.WRITE_LINE:
            for i, value in enumerate(data):
                mem[addr + 4 * i] = value & _WORD_MASK
            return None
        # INVALIDATE / UPDATE: address-only as far as memory is concerned.
        return None

    def _apply_snoop_state(self, snooper, line, set_i, tag, next_state):
        if next_state is State.INVALID:
            way, _line = snooper.index[set_i].pop(tag)
            snooper.sets[set_i][way] = None
        else:
            line.state = next_state

    def _drain(self, snooper, addr, next_state):
        """Snoop push at DRAIN priority: write back, enter next_state."""
        base = addr & snooper.line_mask
        line, set_i, tag = snooper.probe(base)
        if line is None:
            return
        if line.state not in _DIRTY:
            self._apply_snoop_state(snooper, line, set_i, tag, next_state)
            return
        self.txn(
            BusOp.WRITE_LINE, base, snooper,
            data=line.data, line_words=snooper.line_words,
        )
        self._apply_snoop_state(snooper, line, set_i, tag, next_state)
        self.bump(snooper.name + ".drains")

    # -- processor side ---------------------------------------------------
    # The read/write *hit* fast paths are inlined into the replay loop
    # in BatchEngine.run; the methods here carry the miss, uncached and
    # non-trivial write-hit tails.
    def uncached_read(self, m, addr):
        _shared, value = self.txn(BusOp.READ, addr, m)
        self.bump(m.name + ".uncached_reads")
        return value

    def uncached_write(self, m, addr, value):
        self.txn(BusOp.WRITE, addr, m, data=value)
        self.bump(m.name + ".uncached_writes")

    def read_miss(self, m, addr, set_i, tag, offset, wt):
        self.bump(m.key_read_misses)
        line = self._fill(m, addr, set_i, tag, wt, exclusive=False)
        return line.data[offset]

    def write_miss(self, m, addr, set_i, tag, offset, value, wt):
        self.bump(m.key_write_misses)
        protocol = self._protocol_for(m, wt)
        if State.MODIFIED not in protocol.states:
            # Write-through, no-allocate: the word goes straight out.
            self.txn(BusOp.WRITE, addr, m, data=value)
            self.bump(m.name + ".write_throughs")
            return
        if getattr(protocol, "update_based", False):
            # Update protocols have no RWITM: fill shared, then write
            # (which broadcasts when sharers exist); the write counts
            # as a hit on the freshly filled line, like the exact
            # controller's fill-then-write-hit sequence.
            line = self._fill(m, addr, set_i, tag, wt, exclusive=False)
            self.bump(m.key_hits)
            new_state, action = self._write_hit_outcome(line.protocol, line.state)
            if action is WriteAction.NONE:
                line.state = new_state
                line.data[offset] = value
            else:
                self.write_hit_action(m, addr, line, offset, value,
                                      new_state, action)
            return
        line = self._fill(m, addr, set_i, tag, wt, exclusive=True)
        line.data[offset] = value
        if line.state is not State.MODIFIED:
            line.state = State.MODIFIED

    def swap(self, m, addr, value, cacheable):
        if cacheable:
            raise ProtocolError(
                f"swap at 0x{addr:08x}: atomic exchange is only defined "
                "for uncached addresses (lock variables are never cached)"
            )
        _shared, old = self.txn(BusOp.SWAP, addr, m, data=value)
        return old

    def write_hit_action(self, m, addr, line, offset, value, new_state, action):
        """The non-silent write-hit tails (hit already counted)."""
        if action is WriteAction.WRITE_THROUGH:
            line.data[offset] = value
            self.txn(BusOp.WRITE, addr, m, data=value)
            self.bump(m.name + ".write_throughs")
            return
        if action is WriteAction.UPDATE:
            # Dragon broadcast: the raw (unfiltered) shared signal picks
            # between Sm (sharers remain) and M (nobody listened).
            shared, _data = self.txn(BusOp.UPDATE, addr, m, data=value)
            line.data[offset] = value
            line.state = State.OWNED if shared else State.MODIFIED
            self.bump(m.name + ".updates")
            return
        # UPGRADE: address-only invalidate.  Serialised replay has no
        # competing RWITM in arbitration, so the race arm of the exact
        # controller (upgrade_races) is unreachable by construction.
        base = addr & m.line_mask
        self.txn(BusOp.INVALIDATE, base, m)
        line.state = new_state
        line.data[offset] = value
        self.bump(m.name + ".upgrades")

    def _fill(self, m, addr, set_i, tag, wt, exclusive):
        protocol = self._protocol_for(m, wt)
        base = addr & m.line_mask
        ways = m.sets[set_i]
        way = None
        for w, resident in enumerate(ways):
            if resident is None:
                way = w
                break
        if way is None:
            way = min(range(m.ways), key=lambda w: ways[w].lru)
            victim = ways[way]
            victim_base = (victim.tag << m.tag_shift) | (set_i << m.offset_bits)
            if victim.state in _DIRTY:
                self.txn(
                    BusOp.WRITE_LINE, victim_base, m,
                    data=victim.data, line_words=m.line_words,
                )
                self.bump(m.name + ".writebacks")
            del m.index[set_i][victim.tag]
            ways[way] = None
            self.bump(m.name + ".evictions")
        op = BusOp.READ_LINE_EXCL if exclusive else BusOp.READ_LINE
        shared, data = self.txn(op, base, m, line_words=m.line_words)
        if m.shared_mode is SharedMode.ALWAYS:
            shared = True
        elif m.shared_mode is SharedMode.NEVER:
            shared = False
        state = self._fill_state(protocol, exclusive, shared)
        m.clock += 1
        line = _Line(tag, state, list(data), protocol, m.clock)
        ways[way] = line
        m.index[set_i][tag] = (way, line)
        self.bump(m.key_fills)
        return line

    def _protocol_for(self, m, wt):
        if wt and m.protocol_wt is not None:
            return m.protocol_wt
        return m.protocol

    # -- result extraction -------------------------------------------------
    def line_state_occupancy(self) -> Dict[str, Dict[str, int]]:
        occupancy = {}
        for m in self.masters:
            counts: Dict[str, int] = {}
            for ways in m.sets:
                for line in ways:
                    if line is not None:
                        key = line.state.value
                        counts[key] = counts.get(key, 0) + 1
            occupancy[m.name] = counts
        return occupancy


def _ingest(model: _BatchModel, accesses: Sequence):
    """Decompose the whole trace into per-access machine integers.

    Returns parallel lists ``(procs, ops, addrs, values, set_is, tags,
    offsets, cacheables, wts)`` — ``ops`` coded 0=read / 1=write /
    2=swap.  Vectorised over numpy when available; the scalar fallback
    computes the identical lists.
    """
    n = len(accesses)
    procs = [a.proc for a in accesses]
    op_names = [a.op for a in accesses]
    addrs = [a.addr for a in accesses]
    values = [a.value for a in accesses]
    op_code = {"read": 0, "write": 1, "swap": 2}
    ops = [op_code[name] for name in op_names]
    n_masters = len(model.masters)
    if any(p < 0 or p >= n_masters for p in procs):
        raise ConfigError("trace references a processor the config lacks")

    regions = sorted(model.map, key=lambda r: r.base)
    bases = [r.base for r in regions]
    ends = [r.end for r in regions]
    cacheable_by_region = [r.cacheable for r in regions]
    wt_by_region = [
        r.write_policy is WritePolicy.WRITE_THROUGH for r in regions
    ]

    if _np is not None and n:
        a = _np.asarray(addrs, dtype=_np.int64)
        p = _np.asarray(procs, dtype=_np.int64)
        region_i = _np.searchsorted(_np.asarray(bases, dtype=_np.int64), a, side="right") - 1
        in_range = (region_i >= 0) & (
            a < _np.asarray(ends, dtype=_np.int64)[_np.clip(region_i, 0, None)]
        )
        if not bool(in_range.all()):
            bad = int(a[~in_range][0])
            raise ConfigError(f"trace access at unmapped address 0x{bad:08x}")
        region_cacheable = _np.asarray(cacheable_by_region, dtype=bool)[region_i]
        wts = _np.asarray(wt_by_region, dtype=bool)[region_i].tolist()
        set_is = _np.zeros(n, dtype=_np.int64)
        tags = _np.zeros(n, dtype=_np.int64)
        offsets = _np.zeros(n, dtype=_np.int64)
        cach = _np.zeros(n, dtype=bool)
        for index, m in enumerate(model.masters):
            mask = p == index
            if not bool(mask.any()):
                continue
            am = a[mask]
            set_is[mask] = (am >> m.offset_bits) & m.set_mask
            tags[mask] = am >> m.tag_shift
            offsets[mask] = (am & (m.line_bytes - 1)) >> 2
            cach[mask] = region_cacheable[mask] if m.enabled else False
        return (
            procs, ops, addrs, values,
            set_is.tolist(), tags.tolist(), offsets.tolist(),
            cach.tolist(), wts,
        )

    # Scalar fallback: identical decomposition without numpy.
    set_is = [0] * n
    tags = [0] * n
    offsets = [0] * n
    cach = [False] * n
    wts = [False] * n
    for i in range(n):
        addr = addrs[i]
        r = bisect.bisect_right(bases, addr) - 1
        if r < 0 or addr >= ends[r]:
            raise ConfigError(f"trace access at unmapped address 0x{addr:08x}")
        m = model.masters[procs[i]]
        set_is[i] = (addr >> m.offset_bits) & m.set_mask
        tags[i] = addr >> m.tag_shift
        offsets[i] = (addr & (m.line_bytes - 1)) >> 2
        cach[i] = m.enabled and cacheable_by_region[r]
        wts[i] = wt_by_region[r]
    return procs, ops, addrs, values, set_is, tags, offsets, cach, wts


@register_engine
class BatchEngine(ISimEngine):
    """Statistics-only functional replay (no event kernel)."""

    name = "batch"
    version = 1

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities(
            trace_exact=False, timing=False, concurrent=False, native=False
        )

    def available(self) -> bool:
        return True

    def run(
        self, config: PlatformConfig, accesses: Sequence
    ) -> EngineRunResult:
        model = _BatchModel(config)
        procs, ops, addrs, vals, set_is, tags, offsets, cach, wts = _ingest(
            model, accesses
        )
        masters = model.masters
        # Everything the hit fast path touches, bound to locals: the
        # common case (a read or silent-write hit) resolves in a couple
        # of dict probes with no method calls at all.
        wh_tables = model.write_hit_tables
        hit_counts = [0] * len(masters)
        read_miss = model.read_miss
        write_miss = model.write_miss
        write_hit_action = model.write_hit_action
        write_hit_outcome = model._write_hit_outcome
        uncached_read = model.uncached_read
        uncached_write = model.uncached_write
        swap = model.swap
        silent = WriteAction.NONE
        out: List[Optional[int]] = []
        append = out.append
        # Wall time is the engine's reported metric; the batch engine
        # models no simulated time at all (elapsed_ns stays 0).
        start = time.perf_counter()  # repro: lint-ok[determinism]
        for p, op, addr, val, set_i, tag, offset, ca, wt in zip(
            procs, ops, addrs, vals, set_is, tags, offsets, cach, wts
        ):
            m = masters[p]
            if ca and op != 2:
                entry = m.index[set_i].get(tag)
                if entry is not None:
                    line = entry[1]
                    clock = m.clock + 1
                    m.clock = clock
                    line.lru = clock
                    hit_counts[p] += 1
                    if op == 0:
                        append(line.data[offset])
                        continue
                    outcome = wh_tables[id(line.protocol)].get(line.state)
                    if outcome is None:
                        outcome = write_hit_outcome(line.protocol, line.state)
                    new_state, action = outcome
                    if action is silent:
                        line.state = new_state
                        line.data[offset] = val
                    else:
                        write_hit_action(m, addr, line, offset, val,
                                         new_state, action)
                    append(None)
                    continue
                if op == 0:
                    append(read_miss(m, addr, set_i, tag, offset, wt))
                else:
                    write_miss(m, addr, set_i, tag, offset, val, wt)
                    append(None)
                continue
            if op == 2:
                append(swap(m, addr, val, ca))
            elif op == 0:
                append(uncached_read(m, addr))
            else:
                uncached_write(m, addr, val)
                append(None)
        wall = time.perf_counter() - start  # repro: lint-ok[determinism]
        for m, hits in zip(masters, hit_counts):
            if hits:
                model.bump(m.key_hits, hits)
        return EngineRunResult(
            engine=self.name,
            stats=dict(model.stats),
            accesses=len(accesses),
            events=0,
            elapsed_ns=0,
            wall_s=wall,
            line_states=model.line_state_occupancy(),
            values=out,
        )
