"""Figure 5: worst-case scenario (both tasks hammer the same block).

Regenerates the WCS curves: execution-time ratio against the
cache-disabled baseline for software vs proposed solutions, over the
paper's sweep (1..32 accessed cache lines; exec_time 1, 2, 4).

Paper shape: both cached solutions far below 1.0; proposed at least as
good as software; the improvement over cache-disabled grows with
exec_time (the paper quotes 57.66 % at exec_time = 4 — our uncached
baseline is costlier per access, so we measure a larger improvement;
see EXPERIMENTS.md).
"""

from conftest import report, run_once

from repro.analysis import figure5_wcs

LINE_COUNTS = (1, 2, 4, 8, 16, 32)
EXEC_TIMES = (1, 2, 4)
ITERATIONS = 8


def test_figure5_wcs(benchmark):
    figure = run_once(
        benchmark,
        figure5_wcs,
        line_counts=LINE_COUNTS,
        exec_times=EXEC_TIMES,
        iterations=ITERATIONS,
    )
    report(benchmark, "Figure 5 - Worst case results", figure.render())
    for exec_time in EXEC_TIMES:
        for lines in LINE_COUNTS:
            proposed = figure.get(f"proposed et={exec_time}", lines)
            software = figure.get(f"software et={exec_time}", lines)
            # Caching wins over disabled everywhere.
            assert proposed < 1.0 and software < 1.0
            # Proposed tracks software within the paper's small margin
            # (the paper reports proposed ahead by >= 2.51 %; we land
            # within a few percent either side, same ordering trend).
            assert proposed < software * 1.02
    # Improvement over the disabled baseline grows with exec_time.
    assert figure.get("proposed et=4", 32) < figure.get("proposed et=1", 32)
