"""Cross-fabric faithfulness: the split bus is coherence-identical.

The split-transaction bus pipelines *occupancy*, not semantics: every
coherence commit still lands at address-phase end in grant order, so on
any serialised trace every counter except the timing-only ``bus.busy*``
keys and the fabric-specific ``fabric.*`` keys must match the atomic
bus exactly, as must the final per-master line-state occupancy and
every per-access value.  This suite runs that comparison over all five
generated workload families crossed with all six protocols (the same
sweep the batch engine's faithfulness suite uses), plus heterogeneous
wrapper mixes.

The directory fabric consults only recorded sharers, which changes the
ARTRY/drain interleaving — its counters legitimately differ — so its
contract here is semantic: a clean :class:`CoherenceChecker` on the
contended workloads, on every arbitration discipline.  The 16-master
mixed-protocol acceptance run at the bottom covers both alternative
fabrics at scale.
"""

import pytest

from repro.core.platform import Platform, PlatformConfig
from repro.cpu.presets import preset_generic, preset_intel486
from repro.engines import get_engine, serialize_workload
from repro.verify.checker import CoherenceChecker
from repro.workloads.tracegen import false_sharing_traces, replay_parallel

#: counters a fabric may legitimately move: channel occupancy timing
#: and the fabric's own ``fabric.`` namespace
TIMING_PREFIXES = ("bus.busy", "fabric.")

PROTOCOLS = ("MEI", "MSI", "MESI", "MOESI", "DRAGON")

FAMILIES = {
    "racy": {"kind": "racy", "n": 120, "footprint_words": 16, "seed": 11},
    "false-sharing": {"kind": "false-sharing", "n": 120, "lines": 3,
                      "seed": 5},
    "lock-contention": {"kind": "lock-contention", "n_acquires": 10,
                        "seed": 3},
    "hotspot": {"kind": "hotspot", "n": 150, "footprint_words": 64,
                "seed": 7},
    "producer-consumer": {"kind": "producer-consumer", "n_items": 30},
}

_PROTOCOL_CYCLE = ("MESI", "MOESI", "MSI", "MEI")


def _strip_timing(stats):
    return {
        k: v for k, v in stats.items()
        if not any(k.startswith(p) for p in TIMING_PREFIXES)
    }


def _pair_config(p0, p1):
    cores = (
        preset_generic("p0", p0, cache_size=1024).with_(cache_ways=2),
        preset_generic("p1", p1, cache_size=1024).with_(cache_ways=2),
    )
    return PlatformConfig(cores=cores, hardware_coherence=True)


def assert_split_matches_atomic(config, workload):
    accesses = serialize_workload(workload)
    atomic = get_engine("exact").run(config, accesses)
    split = get_engine("exact").run(config.with_(fabric="split"), accesses)
    assert split.accesses == atomic.accesses == len(accesses)
    assert _strip_timing(split.stats) == _strip_timing(atomic.stats)
    assert split.line_states == atomic.line_states
    assert split.values == atomic.values


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_family_protocol_sweep(protocol, family):
    assert_split_matches_atomic(
        _pair_config(protocol, protocol), FAMILIES[family]
    )


@pytest.mark.parametrize(
    "pair", [("MESI", "MEI"), ("MOESI", "MSI"), ("MOESI", "MEI")]
)
def test_heterogeneous_mixes_through_the_wrappers(pair):
    assert_split_matches_atomic(
        _pair_config(*pair),
        {"kind": "false-sharing", "n": 140, "lines": 4, "seed": 9},
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_i486_split_writeback_writethrough(family):
    # The sixth protocol: SI, entering through the i486's protocol_wt.
    config = PlatformConfig(
        cores=(
            preset_intel486("i486").with_(cache_size=1024, cache_ways=2),
            preset_generic("p1", "MESI", cache_size=1024).with_(cache_ways=2),
        ),
        hardware_coherence=True,
    )
    assert_split_matches_atomic(config, FAMILIES[family])


def _mixed_platform(n_masters, fabric, discipline):
    cores = tuple(
        preset_generic(f"p{i}", _PROTOCOL_CYCLE[i % len(_PROTOCOL_CYCLE)])
        for i in range(n_masters)
    )
    return Platform(
        PlatformConfig(
            cores=cores,
            hardware_coherence=True,
            arbitration=discipline,
            drain_policy="window",
            fabric=fabric,
        )
    )


@pytest.mark.parametrize("discipline", ("fcfs", "priority", "round-robin"))
def test_directory_contended_runs_are_coherent(discipline):
    platform = _mixed_platform(4, "directory", discipline)
    checker = CoherenceChecker(platform)
    traces = false_sharing_traces(60, procs=4, lines=2, seed=11)
    replay_parallel(platform, traces)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


@pytest.mark.parametrize("fabric", ("split", "directory"))
@pytest.mark.parametrize("discipline", ("fcfs", "priority", "round-robin"))
def test_sixteen_master_acceptance(fabric, discipline):
    # The acceptance bar: a 16-master mixed-protocol contended
    # false-sharing workload completes on both alternative fabrics
    # under every arbitration discipline with a clean checker.
    platform = _mixed_platform(16, fabric, discipline)
    checker = CoherenceChecker(platform)
    traces = false_sharing_traces(40, procs=16, lines=2, seed=11)
    result = replay_parallel(platform, traces)
    assert result.elapsed_ns > 0
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]


def test_window_drain_redirty_race_is_refused():
    # Regression for the lost-update race on "window" drains: a
    # port-free drain captures line content at address-phase end, the
    # CPU re-dirties the line before the drain's data phase commits,
    # and the commit used to invalidate the fresh store.  The fix
    # snapshots content and refuses the state flip, counting
    # ``drain_redirties``.  This configuration hits the race
    # deterministically; without the refusal it reads stale data.
    platform = _mixed_platform(4, "atomic", "priority")
    checker = CoherenceChecker(platform)
    traces = false_sharing_traces(40, procs=4, lines=2, seed=11)
    replay_parallel(platform, traces)
    checker.check_all_lines()
    assert checker.clean, checker.violations[:3]
    redirties = sum(
        count
        for key, count in platform.stats.as_dict().items()
        if key.endswith("drain_redirties")
    )
    assert redirties >= 1
