"""Fabric study: the three coherence fabrics at N masters.

The scale-out study varies the *service discipline* on one snoopy bus;
this one varies the *interconnect itself*.  For each fabric (atomic
snoopy ASB, split-transaction bus, directory) and each master count it
runs the same fixed contended false-sharing workload over a
mixed-protocol platform (MESI / MOESI / MSI / MEI cycling across the
masters, every one behind its reduction wrapper, round-robin
arbitration) and records:

* ``elapsed_ns`` — simulated completion time of the whole workload;
* ``bus_txns`` — completed tenures (coherence traffic volume; atomic
  and split match exactly — the split bus pipelines occupancy, not
  semantics — while the directory's differs because point-to-point
  forwarding changes the ARTRY/drain interleaving);
* ``busy_ticks`` — total channel occupancy;
* ``grant_spread`` — max/min per-master grant counts.

The headline is the snoopy-vs-directory scaling gap: one broadcast bus
serialises every address phase, so contended completion time grows
steeply with masters, while the directory's per-home banks let
disjoint lines proceed concurrently.  Everything measured is
*simulated* and therefore deterministic: the committed
``BENCH_fabrics.json`` is a golden file, and the CI smoke job compares
against it exactly.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..core.platform import Platform, PlatformConfig
from ..cpu.presets import preset_generic
from ..workloads.tracegen import false_sharing_traces, replay_parallel

__all__ = [
    "BENCH_FILE",
    "FABRICS",
    "MASTER_COUNTS",
    "run_point",
    "run_suite",
    "render_comparison",
    "check_regression",
    "load_results",
]

#: canonical result file name (at the repository root)
BENCH_FILE = "BENCH_fabrics.json"

FABRICS = ("atomic", "split", "directory")
MASTER_COUNTS = (2, 4, 8, 16)
QUICK_MASTER_COUNTS = (2, 4, 8)

#: protocols cycled across the masters — a genuinely mixed platform
_PROTOCOL_CYCLE = ("MESI", "MOESI", "MSI", "MEI")


def _platform(n_masters: int, fabric: str) -> Platform:
    cores = tuple(
        preset_generic(f"p{i}", _PROTOCOL_CYCLE[i % len(_PROTOCOL_CYCLE)])
        for i in range(n_masters)
    )
    # Round-robin + "window" drains, as in the scale-out study: an
    # N-master platform must push snoop data in the post-ARTRY window
    # or contended dirty lines cross-deadlock.
    return Platform(
        PlatformConfig(
            cores=cores,
            hardware_coherence=True,
            arbitration="round-robin",
            drain_policy="window",
            fabric=fabric,
        )
    )


def run_point(
    n_masters: int, fabric: str, accesses_per_master: int = 40
) -> Dict[str, Any]:
    """One (master count, fabric) measurement."""
    platform = _platform(n_masters, fabric)
    traces = false_sharing_traces(
        accesses_per_master, procs=n_masters, lines=2, seed=11
    )
    result = replay_parallel(platform, traces)
    counts = platform.bus.arbiter.grants_by_master
    spread = (
        max(counts.values()) / min(counts.values()) if counts else 0.0
    )
    return {
        "masters": n_masters,
        "fabric": fabric,
        "elapsed_ns": result.elapsed_ns,
        "bus_txns": result.bus_txns,
        "busy_ticks": platform.stats.get("bus.busy_ticks"),
        "grant_spread": round(spread, 3),
    }


def run_suite(
    quick: bool = False,
    master_counts: Optional[Sequence[int]] = None,
    accesses_per_master: int = 40,
) -> Dict[str, Any]:
    """The full sweep; returns the result document.

    ``quick`` drops the 16-master column (CI smoke); the per-point
    workload itself is fixed, so the surviving points stay comparable
    to a committed full-mode baseline.
    """
    counts = tuple(
        master_counts
        if master_counts is not None
        else (QUICK_MASTER_COUNTS if quick else MASTER_COUNTS)
    )
    points: List[Dict[str, Any]] = []
    for fabric in FABRICS:
        for n in counts:
            points.append(run_point(n, fabric, accesses_per_master))
    return {
        "schema": 1,
        "suite": "fabrics",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "params": {
            "master_counts": list(counts),
            "accesses_per_master": accesses_per_master,
            "protocol_cycle": list(_PROTOCOL_CYCLE),
            "arbitration": "round-robin",
        },
        "points": points,
    }


def _index(document: Dict[str, Any]) -> Dict[tuple, Dict[str, Any]]:
    return {
        (p["fabric"], p["masters"]): p
        for p in document.get("points", [])
    }


def _headline(document: Dict[str, Any]) -> Optional[str]:
    """The snoopy-vs-directory gap at the largest shared master count."""
    index = _index(document)
    masters = sorted(
        {p["masters"] for p in document.get("points", [])}, reverse=True
    )
    for n in masters:
        snoopy = index.get(("atomic", n))
        directory = index.get(("directory", n))
        if snoopy and directory and directory["elapsed_ns"]:
            ratio = snoopy["elapsed_ns"] / directory["elapsed_ns"]
            return (
                f"headline: at {n} masters the directory completes the "
                f"contended workload {ratio:.2f}x faster than the "
                f"snoopy bus ({directory['elapsed_ns']:,} ns vs "
                f"{snoopy['elapsed_ns']:,} ns)"
            )
    return None


def render_comparison(
    current: Dict[str, Any], baseline: Optional[Dict[str, Any]] = None
) -> str:
    """The fabric figure, as an aligned text table per fabric."""
    lines = [
        f"fabrics suite (quick={current.get('quick')}, "
        f"py {current.get('python')})",
        f"  {'fabric':<10} {'masters':>7} {'elapsed_ns':>12} "
        f"{'bus_txns':>9} {'busy_ticks':>11} {'spread':>7}",
    ]
    base = _index(baseline) if baseline else {}
    for point in current.get("points", []):
        key = (point["fabric"], point["masters"])
        suffix = ""
        if key in base:
            ratio = (
                point["elapsed_ns"] / base[key]["elapsed_ns"]
                if base[key]["elapsed_ns"]
                else 0.0
            )
            suffix = f"   {ratio:.2f}x baseline time"
        lines.append(
            f"  {point['fabric']:<10} {point['masters']:>7} "
            f"{point['elapsed_ns']:>12,} {point['bus_txns']:>9,} "
            f"{point['busy_ticks']:>11,} "
            f"{point['grant_spread']:>7.2f}{suffix}"
        )
    headline = _headline(current)
    if headline:
        lines.append(f"  {headline}")
    return "\n".join(lines)


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.0,
) -> List[str]:
    """Points where ``current`` differs from the baseline.

    The metrics are simulated quantities, so the default tolerance is
    exact: any drift in completion time or traffic volume on a shared
    point is a behaviour change someone must have intended (and should
    re-baseline deliberately).
    """
    failures: List[str] = []
    base = _index(baseline)
    for point in current.get("points", []):
        key = (point["fabric"], point["masters"])
        if key not in base:
            continue
        for metric in ("elapsed_ns", "bus_txns"):
            got, want = point[metric], base[key][metric]
            if want and abs(got - want) > tolerance * want:
                failures.append(
                    f"{key[0]}@{key[1]} masters: {metric} {got:,} != "
                    f"baseline {want:,}"
                )
    return failures


def load_results(path: str) -> Optional[Dict[str, Any]]:
    """Parse a previously written result file (None when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
