"""Negative integration tests: the wrapper's absence must be visible.

The positive matrix (test_coherence_matrix) proves wrapped platforms
stay coherent; these tests prove the *checker and model are strong
enough to catch the bugs the wrapper prevents* — identity-policy
platforms on the incompatible pairs produce stale reads and SWMR
violations on the paper's own sequences.
"""

import pytest

from repro.core import SHARED_BASE, Platform, PlatformConfig
from repro.core.reduction import WrapperPolicy
from repro.cpu import preset_generic
from repro.verify import CoherenceChecker

#: the protocol pairs the paper shows to be broken without wrappers
BROKEN_PAIRS = [("MESI", "MEI"), ("MSI", "MESI"), ("MSI", "MEI"), ("MOESI", "MEI")]


def unwrapped_platform(p1, p2):
    platform = Platform(
        PlatformConfig(
            cores=(preset_generic("p0", p1), preset_generic("p1", p2)),
        )
    )
    for wrapper in platform.wrappers:
        wrapper.policy = WrapperPolicy()  # identity: break the integration
    checker = CoherenceChecker(platform)
    return platform, checker


def run_ops(platform, ops):
    controllers = platform.controllers

    def driver():
        for proc, op, addr, value in ops:
            if op == "read":
                yield from controllers[proc].read(addr)
            else:
                yield from controllers[proc].write(addr, value)

    platform.sim.process(driver())
    platform.sim.run(detect_deadlock=False)


KILLER = [
    (0, "read", SHARED_BASE, 0),
    (1, "read", SHARED_BASE, 0),
    (1, "write", SHARED_BASE, 7),
    (0, "read", SHARED_BASE, 0),
]


@pytest.mark.parametrize("p1,p2", BROKEN_PAIRS)
def test_killer_sequence_caught(p1, p2):
    platform, checker = unwrapped_platform(p1, p2)
    run_ops(platform, KILLER)
    assert not checker.clean, f"{p1}+{p2} unwrapped should corrupt"
    assert any("stale read" in v.detail for v in checker.violations)


@pytest.mark.parametrize("p1,p2", BROKEN_PAIRS)
def test_swmr_violation_also_caught(p1, p2):
    platform, checker = unwrapped_platform(p1, p2)
    run_ops(platform, KILLER)
    checker.check_all_lines()
    assert any(
        "M/E copy coexists" in v.detail or "differs from memory" in v.detail
        for v in checker.violations
    )


def test_homogeneous_pairs_survive_identity_policies():
    """Control: identity wrappers are exactly right for homogeneous
    platforms, so the same sequence stays clean there."""
    for protocol in ("MEI", "MSI", "MESI", "MOESI"):
        platform, checker = unwrapped_platform(protocol, protocol)
        run_ops(platform, KILLER)
        checker.check_all_lines()
        assert checker.clean, (protocol, checker.violations[:2])


def test_wrapped_control_for_broken_pairs():
    """Control: the same pairs with their real policies stay clean."""
    for p1, p2 in BROKEN_PAIRS:
        platform = Platform(
            PlatformConfig(
                cores=(preset_generic("p0", p1), preset_generic("p1", p2)),
            )
        )
        checker = CoherenceChecker(platform)
        run_ops(platform, KILLER)
        checker.check_all_lines()
        assert checker.clean, (p1, p2, checker.violations[:2])
