"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems define narrower
types below it; modules re-export the ones relevant to their public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Errors raised by the event-driven simulation kernel."""


class DeadlockError(SimulationError):
    """The simulation can make no further progress.

    Raised when the event queue empties while processes are still waiting,
    or when a watchdog detects that no instruction has retired for longer
    than its threshold (the paper's *hardware deadlock*, Section 3/Fig 4).

    ``report`` carries the watchdog's structured diagnostic dump
    (:class:`repro.faults.WatchdogReport`) when the watchdog raised it;
    None for the bare queue-exhaustion detection.
    """

    def __init__(self, detail: str, report=None):
        super().__init__(detail)
        self.report = report


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class MemoryError_(ReproError):
    """Errors from the memory subsystem (bad address, unmapped region)."""


class BusError(ReproError):
    """Protocol violations or misuse of the shared bus model."""


class LivelockError(BusError):
    """A master is spinning without forward progress.

    Raised by the bus when a transaction exceeds its ARTRY retry
    ceiling, or by the watchdog when events keep firing while no master
    retires a mainline instruction or completes a bus transaction.

    Attributes
    ----------
    master / address / retries:
        Identify the spinning transaction when the bounded-retry monitor
        raised it (None for a watchdog-detected livelock).
    report:
        The watchdog's structured diagnostic dump
        (:class:`repro.faults.WatchdogReport`), when available.
    """

    def __init__(
        self,
        detail: str,
        master=None,
        address=None,
        retries=None,
        report=None,
    ):
        super().__init__(detail)
        self.master = master
        self.address = address
        self.retries = retries
        self.report = report


class ProtocolError(ReproError):
    """An illegal cache-coherence state transition was requested."""


class IntegrationError(ReproError):
    """A heterogeneous platform could not be integrated coherently."""


class CoherenceViolation(ReproError):
    """The runtime coherence checker observed an invariant violation.

    Attributes
    ----------
    address:
        Word-aligned byte address of the offending line or word.
    detail:
        Human-readable description of the violated invariant.
    """

    def __init__(self, address: int, detail: str):
        super().__init__(f"coherence violation @0x{address:08x}: {detail}")
        self.address = address
        self.detail = detail


class IsaError(ReproError):
    """Errors from the tiny RISC ISA: bad operands, unknown opcodes."""


class AssemblerError(IsaError):
    """Errors raised while assembling a program (unknown label, etc.)."""


class ExecutionError(ReproError):
    """A core trapped at run time (bad memory access, halt violation)."""
