"""Tests for the NIC receive-ring model."""

import pytest

from repro.core import SCRATCH_BASE, SHARED_BASE, Platform, PlatformConfig
from repro.cpu import preset_generic
from repro.errors import ConfigError
from repro.io import attach_nic
from repro.verify import CoherenceChecker

RING = SCRATCH_BASE + 0x200        # descriptors: always-uncacheable scratch
PAYLOAD = SHARED_BASE + 0x4000     # payloads: ordinary shared memory


def make_platform():
    platform = Platform(
        PlatformConfig(
            cores=(preset_generic("cpu", "MESI"), preset_generic("dsp", "MEI"))
        )
    )
    nic = attach_nic(platform, ring_base=RING, payload_base=PAYLOAD)
    return platform, nic


def drive(platform, generator):
    proc = platform.sim.process(generator)
    platform.sim.run(detect_deadlock=False)
    return proc.value


class TestDelivery:
    def test_single_packet_lands_in_slot0(self):
        platform, nic = make_platform()
        nic.push_packet([0xAA, 0xBB, 0xCC])
        platform.sim.run(detect_deadlock=False)
        assert nic.packets_delivered == 1
        assert platform.memory.peek(nic.descriptor_addr(0)) == 3
        assert platform.memory.peek(nic.payload_addr(0)) == 0xAA
        assert platform.memory.peek(nic.payload_addr(0) + 8) == 0xCC

    def test_packets_fill_slots_round_robin(self):
        platform, nic = make_platform()
        for i in range(3):
            nic.push_packet([100 + i])
        platform.sim.run(detect_deadlock=False)
        assert nic.packets_delivered == 3
        for i in range(3):
            assert platform.memory.peek(nic.payload_addr(i)) == 100 + i

    def test_backpressure_waits_for_consumer(self):
        platform, nic = make_platform()
        # 5 packets into 4 slots: the 5th must wait for slot 0 to free.
        for i in range(5):
            nic.push_packet([i])
        controller = platform.controllers[0]

        def consumer():
            # Let the first four land, then free slot 0.
            yield platform.sim.timeout(20000)
            assert nic.packets_delivered == 4
            yield from controller.write(nic.descriptor_addr(0), 0)

        drive(platform, consumer())
        platform.sim.run(detect_deadlock=False)
        assert nic.packets_delivered == 5
        assert platform.memory.peek(nic.payload_addr(0)) == 4  # reused slot

    def test_oversize_packet_rejected(self):
        _platform, nic = make_platform()
        with pytest.raises(ConfigError):
            nic.push_packet([0] * 17)  # 68 bytes > 64-byte slot

    def test_bad_slot_geometry_rejected(self):
        platform = Platform(
            PlatformConfig(cores=(preset_generic("cpu", "MESI"),))
        )
        with pytest.raises(ConfigError):
            attach_nic(
                platform, ring_base=RING, payload_base=PAYLOAD, slot_bytes=48
            )


class TestCoherence:
    def test_consumer_with_stale_cache_sees_new_packet(self):
        """A consumer that cached the previous packet in the same slot
        must observe the NIC's overwrite — the DMA write invalidates."""
        platform, nic = make_platform()
        checker = CoherenceChecker(platform)
        controller = platform.controllers[0]

        def scenario():
            nic.push_packet([111])
            # Wait for delivery, read (and cache) the payload.
            while platform.memory.peek(nic.descriptor_addr(0)) == 0:
                yield platform.sim.timeout(500)
            first = yield from controller.read(nic.payload_addr(0))
            # Free the slot and push a second packet into slot 1..3 and
            # around to slot 0 again.
            yield from controller.write(nic.descriptor_addr(0), 0)
            for value in (222, 333, 444, 555):
                nic.push_packet([value])
            # Free slots as they fill so the ring wraps to slot 0.
            for slot in (1, 2, 3):
                while platform.memory.peek(nic.descriptor_addr(slot)) == 0:
                    yield platform.sim.timeout(500)
                yield from controller.write(nic.descriptor_addr(slot), 0)
            while platform.memory.peek(nic.descriptor_addr(0)) == 0:
                yield platform.sim.timeout(500)
            second = yield from controller.read(nic.payload_addr(0))
            return first, second

        first, second = drive(platform, scenario())
        assert first == 111
        assert second == 555  # NOT the stale 111
        checker.check_all_lines()
        assert checker.clean
