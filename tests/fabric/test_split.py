"""Split-transaction bus: pipelining, the in-flight window, ordering."""

from repro.bus import BusOp, FixedPriorityArbiter, Transaction
from repro.core.platform import Platform, PlatformConfig
from repro.cpu.presets import preset_generic
from repro.fabric import SplitBus
from repro.mem import MainMemory, MemoryController, MemoryMap, Region
from repro.sim import Clock, Simulator
from repro.verify.checker import CoherenceChecker
from repro.workloads.tracegen import false_sharing_traces, replay_parallel


def make_split(max_inflight=SplitBus.DEFAULT_MAX_INFLIGHT):
    sim = Simulator()
    memory = MainMemory()
    memory_map = MemoryMap([Region("ram", 0, 1 << 20)])
    bus = SplitBus(
        sim,
        Clock.from_mhz(50),
        MemoryController(memory, memory_map),
        arbiter=FixedPriorityArbiter(sim),
        max_inflight=max_inflight,
    )
    return sim, bus


class TestPipelining:
    def test_transact_returns_at_address_phase_end(self):
        # One uncontended line read: arb(1) + addr(1) on the address
        # bus; the 8-cycle data tenure retires in background.
        sim, bus = make_split()
        proc = sim.process(bus.transact(Transaction(BusOp.READ_LINE, 0x0, "m")))
        sim.run(until=2 * 20 + 1, detect_deadlock=False)
        assert proc.triggered  # master resumed before the data phase
        assert bus.snapshot()["outstanding_data_tenures"] == 1
        sim.run(detect_deadlock=False)
        assert bus.snapshot()["outstanding_data_tenures"] == 0

    def test_back_to_back_tenures_overlap(self):
        # N line reads on the atomic bus cost N full tenures; on the
        # split bus the address phases pipeline against data tenures,
        # so total elapsed time shrinks while total occupancy (address
        # spans + data spans) exceeds the elapsed window.
        sim, bus = make_split()

        def master(name, addr):
            yield from bus.transact(Transaction(BusOp.READ_LINE, addr, name))

        for i in range(4):
            sim.process(master(f"m{i}", 0x100 * i))
        sim.run(detect_deadlock=False)
        assert bus.completions == 4
        assert bus.stats.get("fabric.split.data_tenures") == 4
        assert bus.stats.get("bus.busy_ticks") > sim.now

    def test_data_tenures_retire_in_address_order(self):
        sim, bus = make_split()
        order = []

        def master(name, addr):
            yield from bus.transact(Transaction(BusOp.READ_LINE, addr, name))

        # Track retirement order through the chained completion events.
        original = bus._data_tenure

        def tracking(txn, cycles, predecessor, done):
            yield from original(txn, cycles, predecessor, done)
            order.append(txn.master)

        bus._data_tenure = tracking
        for i in range(4):
            sim.process(master(f"m{i}", 0x100 * i))
        sim.run(detect_deadlock=False)
        assert order == ["m0", "m1", "m2", "m3"]


class TestInflightWindow:
    def test_window_bound_is_respected_and_stalls_are_counted(self):
        sim, bus = make_split(max_inflight=1)
        peak = []

        def master(name, addr):
            yield from bus.transact(Transaction(BusOp.READ_LINE, addr, name))
            peak.append(bus.snapshot()["outstanding_data_tenures"])

        for i in range(4):
            sim.process(master(f"m{i}", 0x100 * i))
        sim.run(detect_deadlock=False)
        assert bus.completions == 4
        assert max(peak) <= 1
        assert bus.stats.get("fabric.split.window_stalls") >= 1

    def test_wide_window_never_stalls_this_workload(self):
        sim, bus = make_split(max_inflight=16)

        def master(name, addr):
            yield from bus.transact(Transaction(BusOp.READ_LINE, addr, name))

        for i in range(4):
            sim.process(master(f"m{i}", 0x100 * i))
        sim.run(detect_deadlock=False)
        assert bus.stats.get("fabric.split.window_stalls") == 0


class TestCoherenceOnSplit:
    def test_contended_false_sharing_is_coherent(self):
        cores = tuple(
            preset_generic(f"p{i}", proto)
            for i, proto in enumerate(("MESI", "MOESI", "MSI", "MEI"))
        )
        platform = Platform(
            PlatformConfig(
                cores=cores,
                hardware_coherence=True,
                drain_policy="window",
                fabric="split",
            )
        )
        checker = CoherenceChecker(platform)
        traces = false_sharing_traces(60, procs=4, lines=2, seed=11)
        replay_parallel(platform, traces)
        checker.check_all_lines()
        assert checker.clean, checker.violations[:3]
