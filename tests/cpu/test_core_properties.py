"""Property tests: the core against a reference ISA interpreter.

Hypothesis generates random straight-line arithmetic programs; a tiny
pure-Python reference interpreter computes the architectural result,
and the simulated core must agree register for register.
"""

from hypothesis import given, settings, strategies as st

from repro.bus import AsbBus
from repro.cache import CacheController, CacheGeometry, make_protocol
from repro.cpu import Assembler, Core
from repro.cpu.isa import REG_MASK
from repro.mem import MainMemory, MemoryController, MemoryMap, Region
from repro.sim import Clock, Simulator

_ALU_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "MUL", "ADDI", "SUBI", "SHL", "SHR")

alu_instr = st.tuples(
    st.sampled_from(_ALU_OPS),
    st.integers(min_value=1, max_value=7),   # rd (avoid r0)
    st.integers(min_value=0, max_value=7),   # ra
    st.integers(min_value=0, max_value=7),   # rb
    st.integers(min_value=0, max_value=31),  # imm (shift-safe range)
)

init_values = st.lists(
    st.integers(min_value=0, max_value=REG_MASK), min_size=8, max_size=8
)


def reference_execute(inits, instrs):
    regs = [0] * 16
    for index, value in enumerate(inits):
        regs[index] = value & REG_MASK
    regs[0] = 0
    for op, rd, ra, rb, imm in instrs:
        a, b = regs[ra], regs[rb]
        if op == "ADD":
            regs[rd] = (a + b) & REG_MASK
        elif op == "SUB":
            regs[rd] = (a - b) & REG_MASK
        elif op == "AND":
            regs[rd] = a & b
        elif op == "OR":
            regs[rd] = a | b
        elif op == "XOR":
            regs[rd] = a ^ b
        elif op == "MUL":
            regs[rd] = (a * b) & REG_MASK
        elif op == "ADDI":
            regs[rd] = (a + imm) & REG_MASK
        elif op == "SUBI":
            regs[rd] = (a - imm) & REG_MASK
        elif op == "SHL":
            regs[rd] = (a << imm) & REG_MASK
        elif op == "SHR":
            regs[rd] = a >> imm
        regs[0] = 0
    return regs


def simulate_execute(inits, instrs):
    sim = Simulator()
    memory_map = MemoryMap([Region("ram", 0, 0x1000)])
    bus = AsbBus(
        sim, Clock.from_mhz(50), MemoryController(MainMemory(), memory_map)
    )
    cache = CacheController(
        "c", sim, bus, memory_map, CacheGeometry(256, 32, 2), make_protocol("MEI")
    )
    core = Core("c", sim, Clock.from_mhz(50), cache)
    asm = Assembler()
    for index, value in enumerate(inits):
        asm.li(index, value)
    for op, rd, ra, rb, imm in instrs:
        from repro.cpu.isa import Instr

        asm.emit(Instr(op, rd=rd, ra=ra, rb=rb, imm=imm))
    asm.halt()
    core.load_program(asm.assemble())
    core.start()
    sim.run()
    return core.regs


@settings(max_examples=60, deadline=None)
@given(inits=init_values, instrs=st.lists(alu_instr, max_size=25))
def test_property_alu_matches_reference(inits, instrs):
    assert simulate_execute(inits, instrs) == reference_execute(inits, instrs)


@settings(max_examples=30, deadline=None)
@given(
    inits=init_values,
    instrs=st.lists(alu_instr, max_size=15),
    store_reg=st.integers(min_value=1, max_value=7),
)
def test_property_store_load_roundtrip(inits, instrs, store_reg):
    """Any computed value stores to memory and loads back unchanged."""
    reference = reference_execute(inits, instrs)
    sim = Simulator()
    memory_map = MemoryMap([Region("ram", 0, 0x1000)])
    bus = AsbBus(
        sim, Clock.from_mhz(50), MemoryController(MainMemory(), memory_map)
    )
    cache = CacheController(
        "c", sim, bus, memory_map, CacheGeometry(256, 32, 2), make_protocol("MESI")
    )
    core = Core("c", sim, Clock.from_mhz(50), cache)
    asm = Assembler()
    for index, value in enumerate(inits):
        asm.li(index, value)
    from repro.cpu.isa import Instr

    for op, rd, ra, rb, imm in instrs:
        asm.emit(Instr(op, rd=rd, ra=ra, rb=rb, imm=imm))
    asm.li(15, 0x100)
    asm.st(store_reg, 15)
    asm.li(store_reg, 0)      # clobber
    asm.ld(store_reg, 15)     # reload
    asm.halt()
    core.load_program(asm.assemble())
    core.start()
    sim.run()
    assert core.regs[store_reg] == reference[store_reg]
