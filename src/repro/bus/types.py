"""Bus transaction vocabulary.

The shared ASB-like bus carries five kinds of transaction:

========== ===================================================================
READ        single uncached word read
WRITE       single uncached word write
READ_LINE   burst line fill (8 words by default — Table 4's 13-cycle burst)
UPDATE      word broadcast for update-based protocols (Dragon extension);
            sharers patch their copies in place, memory is not written
READ_LINE_EXCL  burst fill with intent to modify (RWITM / BusRdX)
WRITE_LINE  burst write-back of a dirty line
INVALIDATE  address-only upgrade (S -> M without a data transfer)
SWAP        atomic read-modify-write of one uncached word (lock primitive)
========== ===================================================================

Snoopers answer each address phase with a :class:`SnoopReply`:

* ``OK`` — no involvement (possibly after invalidating their copy),
* ``SHARED`` — they retain a copy; the shared signal is asserted,
* ``SUPPLY`` — they will source the data cache-to-cache (MOESI owner),
* ``RETRY`` — the master must back off (ARTRY) until ``completion``
  triggers; the snooper drains its dirty copy in the meantime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Any, List, Optional, Sequence, Union

from ..errors import BusError

__all__ = [
    "BusOp",
    "Priority",
    "Transaction",
    "SnoopAction",
    "SnoopReply",
    "BusResult",
]


class BusOp(Enum):
    """The transaction kinds carried by the shared bus."""

    READ = "read"
    WRITE = "write"
    READ_LINE = "read-line"
    READ_LINE_EXCL = "read-line-excl"
    WRITE_LINE = "write-line"
    INVALIDATE = "invalidate"
    SWAP = "swap"
    UPDATE = "update"

    @property
    def is_burst(self) -> bool:
        """True for line-granular (burst) transactions."""
        return self in (BusOp.READ_LINE, BusOp.READ_LINE_EXCL, BusOp.WRITE_LINE)

    @property
    def is_read(self) -> bool:
        """True when the master receives data."""
        return self in (BusOp.READ, BusOp.READ_LINE, BusOp.READ_LINE_EXCL, BusOp.SWAP)

    @property
    def writes_memory(self) -> bool:
        """True when the transaction updates main memory."""
        return self in (BusOp.WRITE, BusOp.WRITE_LINE, BusOp.SWAP)


class Priority(IntEnum):
    """Arbitration levels; numerically lower wins.

    ``DRAIN`` models the paper's snoop-push path: after ARTRY the arbiter
    immediately hands the bus to the snooping processor (BOFF/ARTRY
    handshake), so drains beat everything.  ``RETRY`` puts backed-off
    masters ahead of fresh requests, bounding retry starvation.
    """

    DRAIN = 0
    RETRY = 1
    NORMAL = 2


@dataclass(slots=True)
class Transaction:
    """One bus transaction as issued by a master.

    ``data`` is a single word for WRITE/SWAP and a word list for
    WRITE_LINE.  ``line_words`` matters only for burst ops.
    """

    op: BusOp
    addr: int
    master: str
    data: Union[int, Sequence[int], None] = None
    line_words: int = 8
    retries: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.addr < 0 or self.addr % 4:
            raise BusError(f"bad transaction address 0x{self.addr:x}")
        if self.op is BusOp.WRITE_LINE:
            if self.data is None or len(list(self.data)) != self.line_words:
                raise BusError("WRITE_LINE needs exactly line_words data words")
        if self.op in (BusOp.WRITE, BusOp.SWAP, BusOp.UPDATE) and not isinstance(self.data, int):
            raise BusError(f"{self.op.value} needs a single data word")
        if self.op.is_burst and self.addr % (4 * self.line_words):
            raise BusError(
                f"burst address 0x{self.addr:08x} not aligned to "
                f"{4 * self.line_words}-byte line"
            )

    def describe(self) -> str:
        """Short human-readable rendering for traces."""
        return f"{self.master}:{self.op.value}@0x{self.addr:08x}"


class SnoopAction(Enum):
    """What a snooper decided at the address phase."""

    OK = "ok"
    SHARED = "shared"
    SUPPLY = "supply"
    RETRY = "retry"


@dataclass(frozen=True, slots=True)
class SnoopReply:
    """A snooper's answer to one address phase.

    ``completion`` (RETRY only) triggers once the snooper has drained the
    offending line and the master may retry.  ``supply_data`` (SUPPLY
    only) carries the line sourced cache-to-cache.
    """

    action: SnoopAction
    completion: Any = None
    supply_data: Optional[List[int]] = None

    def __post_init__(self):
        if self.action is SnoopAction.RETRY and self.completion is None:
            raise BusError("RETRY snoop reply needs a completion event")
        if self.action is SnoopAction.SUPPLY and self.supply_data is None:
            raise BusError("SUPPLY snoop reply needs data")


# Singleton "no involvement" reply shared by every snooper.
SnoopReply.OK = SnoopReply(SnoopAction.OK)  # type: ignore[attr-defined]


@dataclass(frozen=True, slots=True)
class BusResult:
    """Outcome of a completed transaction, as seen by the master."""

    data: Union[int, List[int], None]
    shared: bool
    retries: int
    start_time: int
    end_time: int
    supplied: bool = False

    @property
    def latency(self) -> int:
        """Ticks between issue and completion, including retries."""
        return self.end_time - self.start_time
