#!/usr/bin/env python
"""Campaign-service gate: dedup, load shedding and cache replay.

Run from the repository root (the package must be importable, e.g.
``PYTHONPATH=src python benchmarks/bench_service.py``).  Without flags
it runs the full saturation study (overlapping clients, a starved
fleet under a probe flood, a cache-sharing replay), prints the
comparison against the committed ``BENCH_service.json`` baseline, and
rewrites that file.  Only deterministic admission counters are
compared — wall-clock throughput is recorded for humans, never gated
on — so CI uses ``--smoke`` (3 concurrent clients submitting the same
sweep+fuzz campaign; hard assertions on dedup and a clean drain) or
``--quick --check --output /tmp/...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.bench import (  # noqa: E402
    BENCH_FILE,
    check_regression,
    load_results,
    render_comparison,
    run_smoke,
    run_suite,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate only: concurrent overlapping clients, "
                             "assert dedup + clean drain, no baseline I/O")
    parser.add_argument("--quick", action="store_true",
                        help="smaller probe flood (CI smoke)")
    parser.add_argument("--baseline", default=os.path.join(REPO_ROOT, BENCH_FILE),
                        help="baseline JSON to compare against")
    parser.add_argument("--output", default=None,
                        help="where to write results (default: the baseline path)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write a result file")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when checked counters drift")
    args = parser.parse_args(argv)

    if args.smoke:
        failures = run_smoke()
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL {failure}", file=sys.stderr)
            return 1
        print("service smoke: dedup exact, every unique job simulated "
              "once, clean drain")
        return 0

    baseline = load_results(args.baseline)
    current = run_suite(quick=args.quick)
    print(render_comparison(current, baseline))

    if not args.no_write:
        output = args.output or args.baseline
        with open(output, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {output}")

    if args.check and baseline is not None:
        failures = check_regression(current, baseline)
        if failures:
            for failure in failures:
                print(f"SERVICE DRIFT {failure}", file=sys.stderr)
            return 1
        print("all checked counters match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
