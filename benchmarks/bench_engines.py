"""Cross-engine comparison: the same workload through every engine.

Runs the reference workload (two MESI masters, hotspot mix) through
each registered engine and tabulates throughput plus agreement with
the exact engine — the table EXPERIMENTS.md quotes.  Doubles as an
end-to-end faithfulness run: the batch engine must reproduce the exact
engine's counters, final line states and load values, and the compiled
engine (native build or pure-Python fallback) must be byte-identical
to exact.
"""

from __future__ import annotations

import time

from conftest import report, run_once

from repro.engines import (
    available_engines,
    get_engine,
    reference_config,
    reference_workload,
)

#: timing-only counters the statistics-only engines do not model
TIMING_KEYS = ("bus.busy",)

N_ACCESSES = 5_000
REPEATS = 3


def _comparable(stats):
    return {
        k: v for k, v in stats.items()
        if not any(k.startswith(p) for p in TIMING_KEYS)
    }


def _run_all():
    config = reference_config()
    accesses = reference_workload(n=N_ACCESSES)
    results = {}
    walls = {}
    for name in available_engines():
        engine = get_engine(name)
        best = None
        for _ in range(REPEATS):
            result = engine.run(config, accesses)
            best = result.wall_s if best is None else min(best, result.wall_s)
        results[name] = result
        walls[name] = best
    return accesses, results, walls


def _render(accesses, results, walls):
    exact = results["exact"]
    lines = [
        f"{'engine':<10} {'native':<7} {'accesses/s':>12} "
        f"{'speedup':>8} {'agrees with exact':>18}"
    ]
    for name, result in results.items():
        caps = get_engine(name).capabilities()
        agree = (
            _comparable(result.stats) == _comparable(exact.stats)
            and result.line_states == exact.line_states
            and result.values == exact.values
        )
        lines.append(
            f"{name:<10} {str(caps.native).lower():<7} "
            f"{len(accesses) / walls[name]:>12,.0f} "
            f"{walls['exact'] / walls[name]:>7.1f}x "
            f"{'yes' if agree else 'NO':>18}"
        )
    return "\n".join(lines)


def test_engine_comparison(benchmark):
    accesses, results, walls = run_once(benchmark, _run_all)
    report(benchmark, "Cross-engine comparison (reference workload)",
           _render(accesses, results, walls))
    exact = results["exact"]
    for name, result in results.items():
        assert _comparable(result.stats) == _comparable(exact.stats), name
        assert result.line_states == exact.line_states, name
        assert result.values == exact.values, name
    # The compiled engine *is* the exact kernel: byte-identical stats,
    # including the timing-only counters the batch engine skips.
    assert results["compiled"].stats == exact.stats
    assert results["compiled"].elapsed_ns == exact.elapsed_ns
    # The fast path must actually be fast.
    assert walls["batch"] < walls["exact"]
