"""The hardware lock register (Section 3, solution 2; ref [17]).

A tiny bus slave holding lock bits.  Acquisition is read-side
test-and-set: a read returns the previous value (0 = you got the lock)
and atomically sets the bit; writing 0 releases.  Because the lock
never lives in any cache, the Fig 4 hardware deadlock cannot involve
it.

The paper's device has a single 1-bit register ("the system can have
only one lock"); :class:`LockRegister` defaults to that but accepts
``n_locks`` for the natural generalisation (one word per lock), which
the ablation benchmarks exercise.
"""

from __future__ import annotations

from ..errors import BusError
from ..mem.controller import Device

__all__ = ["LockRegister"]


class LockRegister(Device):
    """Bus-attached test-and-set lock bits (uncacheable by construction)."""

    access_cycles = 1

    def __init__(self, base: int, n_locks: int = 1):
        if n_locks < 1:
            raise BusError("LockRegister needs at least one lock")
        self.base = base
        self.n_locks = n_locks
        self._bits = [0] * n_locks
        self.acquisitions = 0
        self.rejections = 0
        self.releases = 0

    def _index(self, addr: int) -> int:
        offset = addr - self.base
        index = offset // 4
        if offset % 4 or not 0 <= index < self.n_locks:
            raise BusError(f"lock register: bad address 0x{addr:08x}")
        return index

    def read_word(self, addr: int) -> int:
        """Test-and-set: returns the old value and sets the bit."""
        index = self._index(addr)
        old = self._bits[index]
        self._bits[index] = 1
        if old == 0:
            self.acquisitions += 1
        else:
            self.rejections += 1
        return old

    def write_word(self, addr: int, value: int) -> None:
        """Write 0 to release (any non-zero write sets, for symmetry)."""
        index = self._index(addr)
        if value == 0 and self._bits[index]:
            self.releases += 1
        self._bits[index] = 1 if value else 0

    def is_held(self, index: int = 0) -> bool:
        """True when lock ``index`` is currently taken."""
        return bool(self._bits[index])

    def lock_addr(self, index: int = 0) -> int:
        """Bus address of lock ``index``."""
        if not 0 <= index < self.n_locks:
            raise BusError(f"lock register: no lock {index}")
        return self.base + 4 * index
