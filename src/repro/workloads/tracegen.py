"""Synthetic memory-trace workloads.

Beyond the paper's lock-structured microbenchmarks, library users often
want to drive a platform with raw access traces (e.g. to study hit
rates, sharing patterns or bus utilisation).  This module provides:

* :class:`TraceAccess` / :func:`replay_trace` — run any access sequence
  through a platform's cache controllers (no programs needed);
* generators for common patterns: :func:`sequential_trace`,
  :func:`strided_trace`, :func:`random_trace` (uniform) and
  :func:`hotspot_trace` (90/10-style skew), plus
  :func:`producer_consumer_trace` for two-processor sharing;
* multi-master stress generators for :func:`replay_parallel`:
  :func:`racy_traces` (unsynchronised writers on a shared footprint),
  :func:`false_sharing_traces` (private words packed into shared
  lines) and :func:`lock_contention_traces` (atomic swaps hammering
  one uncached lock word);
* :class:`TraceResult` with the hit/miss/traffic numbers extracted
  from the run.

All generators are seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.platform import LOCK_BASE, SHARED_BASE, Platform
from ..errors import ConfigError

__all__ = [
    "TraceAccess",
    "TraceResult",
    "replay_trace",
    "replay_parallel",
    "sequential_trace",
    "strided_trace",
    "random_trace",
    "hotspot_trace",
    "producer_consumer_trace",
    "racy_traces",
    "false_sharing_traces",
    "lock_contention_traces",
]


@dataclass(frozen=True)
class TraceAccess:
    """One access: which processor, read or write, where, what."""

    proc: int
    op: str          # "read" | "write" | "swap"
    addr: int
    value: int = 0

    def __post_init__(self):
        if self.op not in ("read", "write", "swap"):
            raise ConfigError(f"bad trace op {self.op!r}")


@dataclass
class TraceResult:
    """Counters extracted from a replayed trace."""

    accesses: int
    elapsed_ns: int
    hits: int
    read_misses: int
    write_misses: int
    fills: int
    writebacks: int
    bus_txns: int
    values: List[Optional[int]] = field(default_factory=list)

    @property
    def misses(self) -> int:
        """Total demand misses."""
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache-visible accesses that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def replay_trace(platform: Platform, trace: Sequence[TraceAccess]) -> TraceResult:
    """Drive ``trace`` through the platform, one access at a time.

    Accesses are issued in order: each completes before the next begins
    (a serialised trace replay, suitable for locality studies; for
    contention studies use per-processor traces and
    :func:`replay_parallel`).
    """
    controllers = platform.controllers
    values: List[Optional[int]] = []

    def driver():
        for access in trace:
            controller = controllers[access.proc]
            if access.op == "read":
                value = yield from controller.read(access.addr)
                values.append(value)
            elif access.op == "swap":
                old = yield from controller.swap(access.addr, access.value)
                values.append(old)
            else:
                yield from controller.write(access.addr, access.value)
                values.append(None)

    platform.sim.process(driver())
    platform.sim.run(detect_deadlock=False)
    return _collect(platform, len(trace), values)


def replay_parallel(
    platform: Platform, traces: Dict[int, Sequence[TraceAccess]]
) -> TraceResult:
    """Replay one trace per processor concurrently (contention study)."""
    controllers = platform.controllers

    def driver(accesses):
        for access in accesses:
            controller = controllers[access.proc]
            if access.op == "read":
                yield from controller.read(access.addr)
            elif access.op == "swap":
                yield from controller.swap(access.addr, access.value)
            else:
                yield from controller.write(access.addr, access.value)

    for proc, accesses in traces.items():
        for access in accesses:
            if access.proc != proc:
                raise ConfigError("trace assigned to the wrong processor")
        platform.sim.process(driver(accesses), name=f"trace-p{proc}")
    platform.sim.run(detect_deadlock=False)
    total = sum(len(t) for t in traces.values())
    return _collect(platform, total, [])


def _collect(platform: Platform, n_accesses: int, values) -> TraceResult:
    stats = platform.stats
    names = [cfg.name for cfg in platform.config.cores]
    return TraceResult(
        accesses=n_accesses,
        elapsed_ns=platform.sim.now,
        hits=sum(stats.get(f"{n}.hits") for n in names),
        read_misses=sum(stats.get(f"{n}.read_misses") for n in names),
        write_misses=sum(stats.get(f"{n}.write_misses") for n in names),
        fills=sum(stats.get(f"{n}.fills") for n in names),
        writebacks=sum(stats.get(f"{n}.writebacks") for n in names),
        bus_txns=stats.get("bus.txns"),
        values=values,
    )


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------
def sequential_trace(
    n: int, proc: int = 0, base: int = SHARED_BASE, write_every: int = 4
) -> List[TraceAccess]:
    """Walk ``n`` consecutive words, writing every ``write_every``-th."""
    trace = []
    for i in range(n):
        addr = base + 4 * i
        if write_every and i % write_every == write_every - 1:
            trace.append(TraceAccess(proc, "write", addr, value=i))
        else:
            trace.append(TraceAccess(proc, "read", addr))
    return trace


def strided_trace(
    n: int, stride_bytes: int, proc: int = 0, base: int = SHARED_BASE
) -> List[TraceAccess]:
    """``n`` reads with a fixed stride (cache-geometry stress)."""
    if stride_bytes % 4:
        raise ConfigError("stride must be word-aligned")
    return [
        TraceAccess(proc, "read", base + i * stride_bytes) for i in range(n)
    ]


def random_trace(
    n: int,
    footprint_words: int,
    proc: int = 0,
    base: int = SHARED_BASE,
    write_ratio: float = 0.3,
    seed: int = 1,
) -> List[TraceAccess]:
    """Uniform random accesses over ``footprint_words`` words."""
    rng = random.Random(seed)
    trace = []
    for i in range(n):
        addr = base + 4 * rng.randrange(footprint_words)
        if rng.random() < write_ratio:
            trace.append(TraceAccess(proc, "write", addr, value=i))
        else:
            trace.append(TraceAccess(proc, "read", addr))
    return trace


def hotspot_trace(
    n: int,
    footprint_words: int,
    proc: int = 0,
    base: int = SHARED_BASE,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    seed: int = 1,
) -> List[TraceAccess]:
    """90/10-style skew: most accesses hit a small hot set."""
    if not 0 < hot_fraction < 1:
        raise ConfigError("hot_fraction must be in (0, 1)")
    rng = random.Random(seed)
    hot_words = max(1, int(footprint_words * hot_fraction))
    trace = []
    for i in range(n):
        if rng.random() < hot_probability:
            word = rng.randrange(hot_words)
        else:
            word = hot_words + rng.randrange(max(1, footprint_words - hot_words))
        addr = base + 4 * word
        if rng.random() < 0.3:
            trace.append(TraceAccess(proc, "write", addr, value=i))
        else:
            trace.append(TraceAccess(proc, "read", addr))
    return trace


def producer_consumer_trace(
    n_items: int,
    producer: int = 0,
    consumer: int = 1,
    base: int = SHARED_BASE,
) -> List[TraceAccess]:
    """Producer writes each word, consumer reads it back (serialised)."""
    trace = []
    for i in range(n_items):
        addr = base + 4 * i
        trace.append(TraceAccess(producer, "write", addr, value=i + 1))
        trace.append(TraceAccess(consumer, "read", addr))
    return trace


# ---------------------------------------------------------------------------
# multi-master generators (for replay_parallel)
# ---------------------------------------------------------------------------
def _unique_value(proc: int, i: int) -> int:
    """A store value that identifies its writer and position."""
    return (proc + 1) * 1_000_000 + i


def racy_traces(
    n: int,
    procs: int = 2,
    footprint_words: int = 8,
    base: int = SHARED_BASE,
    write_ratio: float = 0.5,
    seed: int = 1,
) -> Dict[int, List[TraceAccess]]:
    """Unsynchronised processors hammering one small shared footprint.

    Every processor reads and writes the *same* few words with no
    ordering discipline — the canonical workload for exposing stale
    reads on software-disciplined (unwrapped) protocol pairs, and for
    proving their absence on coherent ones.  Store values encode
    ``(proc, i)`` so any stale value names its writer.
    """
    if procs < 1:
        raise ConfigError(f"procs must be >= 1, got {procs}")
    traces: Dict[int, List[TraceAccess]] = {}
    for proc in range(procs):
        rng = random.Random(f"{seed}:{proc}")
        trace = []
        for i in range(n):
            addr = base + 4 * rng.randrange(footprint_words)
            if rng.random() < write_ratio:
                trace.append(
                    TraceAccess(proc, "write", addr, value=_unique_value(proc, i))
                )
            else:
                trace.append(TraceAccess(proc, "read", addr))
        traces[proc] = trace
    return traces


def false_sharing_traces(
    n: int,
    procs: int = 2,
    base: int = SHARED_BASE,
    line_bytes: int = 32,
    lines: int = 2,
    seed: int = 1,
) -> Dict[int, List[TraceAccess]]:
    """Private per-processor words packed into *shared* cache lines.

    Processor ``p`` only ever touches word ``p mod words-per-line`` of
    its line group, so there is no true data sharing — but because the
    words share lines, every write invalidates (or updates) the other
    processors' copies.  The workload stresses line-granular coherence
    actions while the value check stays trivially satisfiable: each
    word has a single writer.

    When the processors fit one line (``4 * procs <= line_bytes``) the
    layout is the classic one word per processor per line.  Beyond
    that, each logical line becomes a *group* of adjacent lines — word
    slots fill the first line, overflow processors continue in the
    next — so arbitrarily many masters contend without any word ever
    having two writers.
    """
    words_per_line = line_bytes // 4
    if words_per_line < 1:
        raise ConfigError(f"a {line_bytes}-byte line holds no whole word")
    group_lines = -(-procs // words_per_line)  # ceil
    traces: Dict[int, List[TraceAccess]] = {}
    for proc in range(procs):
        rng = random.Random(f"{seed}:{proc}")
        trace = []
        for i in range(n):
            line = rng.randrange(lines)
            addr = (
                base
                + (line * group_lines + proc // words_per_line) * line_bytes
                + 4 * (proc % words_per_line)
            )
            if rng.random() < 0.7:
                trace.append(
                    TraceAccess(proc, "write", addr, value=_unique_value(proc, i))
                )
            else:
                trace.append(TraceAccess(proc, "read", addr))
        traces[proc] = trace
    return traces


def lock_contention_traces(
    n_acquires: int,
    procs: int = 2,
    lock_addr: int = LOCK_BASE,
    scratch_base: int = SHARED_BASE,
    seed: int = 1,
) -> Dict[int, List[TraceAccess]]:
    """Atomic swaps hammering one uncached lock word.

    Each processor repeatedly test-and-sets ``lock_addr`` (an atomic
    swap — which is only architecturally legal on *uncached* regions,
    hence the default of ``LOCK_BASE``), touches a private scratch
    word while "holding" the lock, then stores 0 to release.  Traces
    are open-loop (no data-dependent spinning), so this measures raw
    swap/bus contention rather than lock fairness.
    """
    if procs < 1:
        raise ConfigError(f"procs must be >= 1, got {procs}")
    traces: Dict[int, List[TraceAccess]] = {}
    for proc in range(procs):
        rng = random.Random(f"{seed}:{proc}")
        trace = []
        scratch = scratch_base + 4 * proc
        for i in range(n_acquires):
            trace.append(TraceAccess(proc, "swap", lock_addr, value=proc + 1))
            for _ in range(rng.randrange(1, 4)):  # critical-section work
                trace.append(
                    TraceAccess(proc, "write", scratch, value=_unique_value(proc, i))
                )
                trace.append(TraceAccess(proc, "read", scratch))
            trace.append(TraceAccess(proc, "write", lock_addr, value=0))
        traces[proc] = trace
    return traces
