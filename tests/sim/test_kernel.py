"""Unit tests for the event-driven kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.triggered
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_callback_after_trigger_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_callbacks_run_in_order(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(1))
        event.add_callback(lambda e: seen.append(2))
        event.succeed()
        sim.run()
        assert seen == [1, 2]


class TestTimeout:
    def test_fires_at_delay(self, sim):
        fired = []

        def proc():
            yield sim.timeout(25)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [25]

    def test_zero_delay_fires_now(self, sim):
        fired = []

        def proc():
            yield sim.timeout(0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_value_passthrough(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(5, value="hello")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["hello"]


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_processes_interleave_by_time(self, sim):
        order = []

        def worker(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(worker(10, "b"))
        sim.process(worker(5, "a"))
        sim.process(worker(20, "c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_tick_ordering_is_schedule_order(self, sim):
        order = []

        def worker(tag):
            yield sim.timeout(5)
            order.append(tag)

        for tag in ("x", "y", "z"):
            sim.process(worker(tag))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_process_waits_on_event(self, sim):
        gate = sim.event()
        seen = []

        def waiter():
            value = yield gate
            seen.append((sim.now, value))

        def opener():
            yield sim.timeout(30)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert seen == [(30, "open")]

    def test_fork_join_via_process_event(self, sim):
        def child():
            yield sim.timeout(10)
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates_to_waiter(self, sim):
        def failing():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught boom"

    def test_unhandled_exception_escapes_run(self, sim):
        def failing():
            yield sim.timeout(1)
            raise RuntimeError("unwatched")

        sim.process(failing())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_interrupt_wakes_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(5)
            p.interrupt("wake")

        sim.process(interrupter())
        sim.run()
        assert log == [(5, "wake")]

    def test_interrupt_dead_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        p.interrupt("late")  # must not raise

    def test_interrupt_before_start_cancels_bootstrap(self, sim):
        """Interrupting before the bootstrap fired must not start the body.

        Regression: the bootstrap callback used to stay attached, so the
        generator was started *after* the Interrupt was delivered, and
        its first yielded event resumed the finished generator a second
        time ("event triggered twice").
        """
        log = []

        def victim():
            log.append("started")
            yield sim.timeout(10)

        p = sim.process(victim())
        p.interrupt("early")
        p.add_callback(lambda _e: None)  # observe the failure
        sim.run()
        assert log == []
        assert p.triggered and not p.ok
        assert isinstance(p.value, Interrupt)
        assert p.value.cause == "early"

    def test_interrupt_before_start_no_double_resume(self, sim):
        """The old crash path: catchable-interrupt victim, early interrupt."""
        log = []

        def victim():
            try:
                yield sim.timeout(10)
                log.append("slept")
            except Interrupt:
                log.append("interrupted")
                yield sim.timeout(5)
                log.append("resumed")

        p = sim.process(victim())
        p.interrupt("early")
        p.add_callback(lambda _e: None)
        sim.run()  # used to raise SimulationError("event triggered twice")
        assert "slept" not in log

    def test_is_alive_lifecycle(self, sim):
        def proc():
            yield sim.timeout(5)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        def worker(n):
            yield sim.timeout(n)
            return n

        procs = [sim.process(worker(n)) for n in (3, 1, 2)]
        done = []

        def joiner():
            values = yield sim.all_of(procs)
            done.append((sim.now, values))

        sim.process(joiner())
        sim.run()
        assert done == [(3, [3, 1, 2])]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def joiner():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(joiner())
        sim.run()
        assert done == [0]

    def test_any_of_returns_first(self, sim):
        def worker(n):
            yield sim.timeout(n)
            return n

        procs = [sim.process(worker(n)) for n in (30, 10, 20)]
        got = []

        def racer():
            index, value = yield sim.any_of(procs)
            got.append((sim.now, index, value))

        sim.process(racer())
        sim.run()
        assert got == [(10, 1, 10)]

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestRun:
    def test_run_until_stops_clock(self, sim):
        def endless():
            while True:
                yield sim.timeout(10)

        sim.process(endless(), daemon=True)
        assert sim.run(until=35) == 35
        assert sim.now == 35

    def test_run_until_does_not_fire_later_events(self, sim):
        fired = []

        def late():
            yield sim.timeout(100)
            fired.append(sim.now)

        sim.process(late(), daemon=True)
        sim.run(until=50)
        assert fired == []

    def test_stop_event_halts_run(self, sim):
        stop = sim.event()
        ticks = []

        def ticker():
            while True:
                yield sim.timeout(10)
                ticks.append(sim.now)
                if sim.now >= 30:
                    stop.succeed()

        sim.process(ticker(), daemon=True)
        sim.run(stop_event=stop)
        assert ticks[-1] == 30

    def test_max_events_guard(self, sim):
        def endless():
            while True:
                yield sim.timeout(1)

        sim.process(endless(), daemon=True)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_deadlock_detection(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        sim.process(stuck(), name="stuck-one")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        assert "stuck-one" in str(excinfo.value)

    def test_daemon_processes_do_not_deadlock(self, sim):
        def service():
            yield sim.event()

        sim.process(service(), daemon=True)

        def worker():
            yield sim.timeout(5)

        sim.process(worker())
        sim.run()  # must not raise

    def test_detect_deadlock_opt_out(self, sim):
        def stuck():
            yield sim.event()

        sim.process(stuck())
        sim.run(detect_deadlock=False)  # must not raise

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_reports_next_time(self, sim):
        sim.timeout(42)
        assert sim.peek() == 42

    def test_determinism_across_runs(self):
        def build():
            sim = Simulator()
            order = []

            def worker(tag, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    order.append((sim.now, tag))

            sim.process(worker("a", 7))
            sim.process(worker("b", 5))
            sim.run()
            return order

        assert build() == build()


class TestSlots:
    """Kernel event types must stay slotted (no per-instance __dict__).

    Regression: AnyOf omitted __slots__, silently reintroducing a
    __dict__ on every instance of the hottest combinator.
    """

    def test_kernel_event_types_have_no_dict(self, sim):
        def gen():
            yield sim.timeout(1)

        instances = [
            sim.event(),
            sim.timeout(3),
            sim.process(gen()),
            AllOf(sim, [sim.event()]),
            AnyOf(sim, [sim.event()]),
        ]
        for instance in instances:
            assert not hasattr(instance, "__dict__"), type(instance).__name__

    def test_event_subclasses_declare_slots(self):
        from repro.sim import kernel

        for cls in (kernel.Event, kernel.Timeout, kernel.Process,
                    kernel.AllOf, kernel.AnyOf):
            assert "__slots__" in cls.__dict__, cls.__name__


class TestCombinatorFailure:
    def test_all_of_propagates_child_failure(self, sim):
        bad = sim.event()
        slow = sim.timeout(5)
        caught = []

        def joiner():
            try:
                yield sim.all_of([slow, bad])
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        def failer():
            yield sim.timeout(2)
            bad.fail(RuntimeError("boom"))

        sim.process(joiner())
        sim.process(failer(), daemon=True)
        sim.run()
        # Fails as soon as the child fails -- no waiting for the rest.
        assert caught == [(2, "boom")]

    def test_all_of_failure_only_raised_once(self, sim):
        first, second = sim.event(), sim.event()
        caught = []

        def joiner():
            try:
                yield sim.all_of([first, second])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield sim.timeout(1)
            first.fail(RuntimeError("first"))
            second.fail(RuntimeError("second"))

        sim.process(joiner())
        sim.process(failer(), daemon=True)
        sim.run()
        assert caught == ["first"]

    def test_any_of_propagates_child_failure(self, sim):
        bad = sim.event()
        slow = sim.timeout(50)
        caught = []

        def racer():
            try:
                yield sim.any_of([slow, bad])
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        def failer():
            yield sim.timeout(3)
            bad.fail(ValueError("lost"))

        sim.process(racer())
        sim.process(failer(), daemon=True)
        sim.run()
        assert caught == [(3, "lost")]

    def test_any_of_success_beats_later_failure(self, sim):
        bad = sim.event()
        fast = sim.timeout(1)
        got = []

        def racer():
            got.append((yield sim.any_of([fast, bad])))

        def failer():
            yield sim.timeout(10)
            bad.fail(RuntimeError("too late"))

        sim.process(racer())
        sim.process(failer(), daemon=True)
        sim.run()
        assert got == [(0, None)]


class TestRunUntilBoundaries:
    def test_until_exactly_on_event_fires_it(self, sim):
        fired = []

        def proc():
            yield sim.timeout(10)
            fired.append(sim.now)

        sim.process(proc(), daemon=True)
        assert sim.run(until=10) == 10
        assert fired == [10]

    def test_until_between_events_advances_clock_only(self, sim):
        fired = []

        def proc():
            yield sim.timeout(10)
            fired.append(sim.now)
            yield sim.timeout(10)
            fired.append(sim.now)

        sim.process(proc(), daemon=True)
        assert sim.run(until=15) == 15
        assert fired == [10]
        assert sim.run(until=25) == 25
        assert fired == [10, 20]

    def test_until_fires_zero_delay_chain_at_boundary(self, sim):
        log = []

        def proc():
            yield sim.timeout(10)
            ev = sim.event()
            ev.succeed("x")
            log.append((sim.now, (yield ev)))

        sim.process(proc(), daemon=True)
        sim.run(until=10)
        assert log == [(10, "x")]

    def test_until_before_any_event(self, sim):
        fired = []

        def proc():
            yield sim.timeout(100)
            fired.append(sim.now)

        sim.process(proc(), daemon=True)
        assert sim.run(until=5) == 5
        assert sim.now == 5
        assert fired == []
