"""Unit tests for the snooping cache controller."""

import pytest

from repro.bus import AsbBus, BusOp, Priority, Transaction
from repro.cache import (
    CacheController,
    CacheGeometry,
    SnoopDecision,
    SnoopOp,
    State,
    make_protocol,
)
from repro.errors import ProtocolError
from repro.mem import (
    MainMemory,
    MemoryController,
    MemoryMap,
    Region,
    WritePolicy,
)
from repro.sim import Clock, Simulator

CACHED = 0x0000_0000
UNCACHED = 0x0010_0000
WT = 0x0020_0000


def make_setup(protocol="MESI", protocol_wt=None, ways=2, size=1024):
    sim = Simulator()
    memory = MainMemory()
    memory_map = MemoryMap(
        [
            Region("ram", CACHED, 0x10_0000),
            Region("io", UNCACHED, 0x1000, cacheable=False),
            Region("wt", WT, 0x1000, write_policy=WritePolicy.WRITE_THROUGH),
        ]
    )
    bus = AsbBus(sim, Clock.from_mhz(50), MemoryController(memory, memory_map))
    controller = CacheController(
        name="cpu0",
        sim=sim,
        bus=bus,
        memory_map=memory_map,
        geometry=CacheGeometry(size, 32, ways),
        protocol=make_protocol(protocol),
        protocol_wt=make_protocol(protocol_wt) if protocol_wt else None,
    )
    return sim, memory, bus, controller


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    return proc.value


class TestReads:
    def test_miss_fills_exclusive_when_unshared(self):
        sim, memory, _bus, controller = make_setup()
        memory.load(0x100, [42])
        value = run(sim, controller.read(0x100))
        assert value == 42
        assert controller.line_state(0x100) is State.EXCLUSIVE

    def test_second_read_hits(self):
        sim, memory, bus, controller = make_setup()
        memory.load(0x100, [42])
        run(sim, controller.read(0x100))
        txns_before = bus.stats.get("bus.txns")
        value = run(sim, controller.read(0x104))
        assert value == 0
        assert bus.stats.get("bus.txns") == txns_before

    def test_msi_fill_is_shared_state(self):
        sim, _memory, _bus, controller = make_setup(protocol="MSI")
        run(sim, controller.read(0x100))
        assert controller.line_state(0x100) is State.SHARED

    def test_uncached_read_bypasses_cache(self):
        sim, memory, _bus, controller = make_setup()
        memory.load(UNCACHED, [7])
        value = run(sim, controller.read(UNCACHED))
        assert value == 7
        assert controller.line_state(UNCACHED) is State.INVALID

    def test_cache_disabled_goes_uncached(self):
        sim, memory, bus, controller = make_setup()
        controller.enabled = False
        memory.load(0x100, [5])
        assert run(sim, controller.read(0x100)) == 5
        assert controller.array.occupancy() == 0
        assert bus.stats.get("cpu0.uncached_reads") == 1


class TestWrites:
    def test_write_miss_fills_modified(self):
        sim, _memory, bus, controller = make_setup()
        run(sim, controller.write(0x100, 9))
        assert controller.line_state(0x100) is State.MODIFIED
        assert bus.stats.get("bus.op.read-line-excl") == 1

    def test_write_hit_on_exclusive_is_silent(self):
        sim, _memory, bus, controller = make_setup()
        run(sim, controller.read(0x100))
        txns = bus.stats.get("bus.txns")
        run(sim, controller.write(0x100, 9))
        assert controller.line_state(0x100) is State.MODIFIED
        assert bus.stats.get("bus.txns") == txns  # silent E -> M

    def test_write_back_visible_after_flush(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 9))
        run(sim, controller.flush_line(0x100))
        assert memory.peek(0x100) == 9
        assert controller.line_state(0x100) is State.INVALID

    def test_write_through_region_stays_shared(self):
        sim, memory, _bus, controller = make_setup(protocol_wt="SI")
        run(sim, controller.read(WT))
        run(sim, controller.write(WT, 3))
        assert controller.line_state(WT) is State.SHARED
        assert memory.peek(WT) == 3  # wrote through immediately

    def test_write_through_miss_does_not_allocate(self):
        sim, memory, _bus, controller = make_setup(protocol_wt="SI")
        run(sim, controller.write(WT, 3))
        assert controller.line_state(WT) is State.INVALID
        assert memory.peek(WT) == 3

    def test_shared_write_pays_upgrade(self):
        sim, _memory, bus, controller = make_setup(protocol="MSI")
        run(sim, controller.read(0x100))  # MSI: fills S
        run(sim, controller.write(0x100, 1))
        assert controller.line_state(0x100) is State.MODIFIED
        assert bus.stats.get("bus.op.invalidate") == 1


class TestEviction:
    def test_clean_eviction_no_writeback(self):
        sim, _memory, bus, controller = make_setup(size=64, ways=1)  # 2 sets
        run(sim, controller.read(0x000))
        run(sim, controller.read(0x040))  # same set, evicts clean 0x000
        assert bus.stats.get("cpu0.writebacks") == 0
        assert controller.line_state(0x000) is State.INVALID

    def test_dirty_eviction_writes_back(self):
        sim, memory, bus, controller = make_setup(size=64, ways=1)
        run(sim, controller.write(0x000, 77))
        run(sim, controller.read(0x040))
        assert bus.stats.get("cpu0.writebacks") == 1
        assert memory.peek(0x000) == 77

    def test_eviction_notifies_listeners(self):
        sim, _memory, _bus, controller = make_setup(size=64, ways=1)
        removed = []
        controller.remove_listeners.append(removed.append)
        run(sim, controller.read(0x000))
        run(sim, controller.read(0x040))
        assert removed == [0x000]


class TestCacheOps:
    def test_flush_clean_line_no_bus(self):
        sim, _memory, bus, controller = make_setup()
        run(sim, controller.read(0x100))
        txns = bus.stats.get("bus.txns")
        run(sim, controller.flush_line(0x100))
        assert bus.stats.get("bus.txns") == txns
        assert controller.line_state(0x100) is State.INVALID

    def test_flush_missing_line_is_noop(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.flush_line(0x500))

    def test_invalidate_discards_dirty_data(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 9))
        controller.invalidate_line(0x100)
        assert controller.line_state(0x100) is State.INVALID
        assert memory.peek(0x100) == 0  # write lost on purpose

    def test_writeback_line_keeps_clean_copy(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 9))
        run(sim, controller.writeback_line(0x100))
        assert memory.peek(0x100) == 9
        assert controller.line_state(0x100) is State.EXCLUSIVE

    def test_swap_requires_uncached(self):
        sim, _memory, _bus, controller = make_setup()
        with pytest.raises(ProtocolError):
            run(sim, controller.swap(0x100, 1))

    def test_swap_on_uncached(self):
        sim, memory, _bus, controller = make_setup()
        memory.load(UNCACHED, [4])
        old = run(sim, controller.swap(UNCACHED, 1))
        assert old == 4
        assert memory.peek(UNCACHED) == 1

    def test_cached_addresses(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.read(0x100))
        run(sim, controller.read(0x200))
        assert sorted(controller.cached_addresses()) == [0x100, 0x200]


class TestSnoopDecision:
    def test_miss(self):
        _sim, _memory, _bus, controller = make_setup()
        decision = controller.snoop_decision(SnoopOp.READ, 0x100)
        assert decision.kind == SnoopDecision.MISS

    def test_clean_read_commits_shared(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.read(0x100))  # E
        decision = controller.snoop_decision(SnoopOp.READ, 0x100)
        assert decision.kind == SnoopDecision.OK
        assert decision.assert_shared
        assert controller.line_state(0x100) is State.SHARED

    def test_dirty_read_defers_commit(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 1))  # M
        decision = controller.snoop_decision(SnoopOp.READ, 0x100)
        assert decision.kind == SnoopDecision.DRAIN
        assert decision.drain_next_state is State.SHARED
        assert controller.line_state(0x100) is State.MODIFIED  # unchanged

    def test_write_snoop_invalidates(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.read(0x100))
        decision = controller.snoop_decision(SnoopOp.WRITE, 0x104)
        assert decision.kind == SnoopDecision.OK
        assert controller.line_state(0x100) is State.INVALID

    def test_moesi_supply(self):
        sim, memory, _bus, controller = make_setup(protocol="MOESI")
        memory.load(0x100, [11])
        run(sim, controller.read(0x100))
        run(sim, controller.write(0x100, 12))
        decision = controller.snoop_decision(SnoopOp.READ, 0x100)
        assert decision.kind == SnoopDecision.SUPPLY
        assert decision.supply_data[0] == 12
        assert controller.line_state(0x100) is State.OWNED


class TestDrainLine:
    def test_drain_pushes_and_changes_state(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 5))
        run(sim, controller.drain_line(0x100, State.SHARED))
        assert memory.peek(0x100) == 5
        assert controller.line_state(0x100) is State.SHARED

    def test_drain_to_invalid_removes(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 5))
        run(sim, controller.drain_line(0x100, State.INVALID))
        assert memory.peek(0x100) == 5
        assert controller.line_state(0x100) is State.INVALID

    def test_drain_clean_line_skips_bus(self):
        sim, _memory, bus, controller = make_setup()
        run(sim, controller.read(0x100))  # E (clean)
        txns = bus.stats.get("bus.txns")
        run(sim, controller.drain_line(0x100, State.SHARED))
        assert bus.stats.get("bus.txns") == txns
        assert controller.line_state(0x100) is State.SHARED

    def test_drain_missing_line_is_noop(self):
        sim, _memory, _bus, controller = make_setup()
        run(sim, controller.drain_line(0x700, State.INVALID))

    def test_drain_captures_latest_data(self):
        sim, memory, _bus, controller = make_setup()
        run(sim, controller.write(0x100, 5))
        run(sim, controller.write(0x104, 6))
        run(sim, controller.drain_line(0x100, State.INVALID))
        assert memory.peek(0x100) == 5
        assert memory.peek(0x104) == 6
