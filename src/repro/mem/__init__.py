"""Memory subsystem: map, sparse main memory, controller, devices."""

from .controller import Device, MemoryController, MemoryTiming
from .map import MemoryMap, Region, WritePolicy
from .memory import WORD_BYTES, WORD_MASK, MainMemory, check_word_aligned

__all__ = [
    "MemoryMap",
    "Region",
    "WritePolicy",
    "MainMemory",
    "MemoryController",
    "MemoryTiming",
    "Device",
    "WORD_BYTES",
    "WORD_MASK",
    "check_word_aligned",
]
