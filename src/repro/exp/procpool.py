"""A crash-proof process pool: timeouts, kill-and-requeue, streaming.

:mod:`multiprocessing.Pool` has two failure modes that matter to long
campaigns: a *hung* worker stalls ``map`` forever, and a *crashed*
worker (segfault, ``os._exit``, OOM kill) poisons the pool.  Both lose
every in-flight result.  :class:`ResilientPool` exists so one bad job
costs exactly one job:

* each worker owns a private task queue and holds **one** job at a
  time, so the parent always knows which job a dead or wedged worker
  was running;
* a job past its deadline gets its worker killed and is **requeued**
  (bounded attempts, capped exponential backoff) or reported as
  ``"timeout"``;
* a worker that dies mid-job is replaced and the job is requeued the
  same way, ending in ``"crash"`` when the attempts run out;
* an exception *raised* by the job function is deterministic, so it is
  reported once as ``"error"`` (traceback text attached), not retried;
* results stream back **unordered** as they complete, so callers can
  persist each one immediately — a SIGINT then loses nothing that
  already finished;
* a worker orphaned by a parent ``kill -9`` (which tears down no
  children) notices the reparenting within a second and exits on its
  own — no leaked fleet idling forever.

The pool has two modes sharing one engine:

* **batch** — :meth:`map_unordered` runs a fixed item list to
  completion (the sweep runner and fuzz campaigns use this); every
  item yields exactly one :class:`PoolResult`;
* **persistent** — :meth:`start` boots a long-lived worker fleet,
  :meth:`submit` feeds it one item at a time, :meth:`poll` drives one
  monitor iteration and returns at most one terminal result, and
  :meth:`close` tears the fleet down — ``close(drain=True)`` finishes
  every in-flight and queued job first (graceful drain), the default
  ``drain=False`` is the kill-oriented teardown batch mode always had.
  The campaign service's worker bridge is built on this mode.

Requeue backoff is **deterministic**: attempt ``k`` of a job waits
``min(backoff_s * 2**(k-1), backoff_cap_s)`` seconds before it becomes
runnable again — no jitter, no randomness — so a replayed schedule of
submissions produces the same retry timeline.

The pool is deliberately dumb about scheduling (first idle worker
wins) and smart about accounting: every submitted item eventually
yields exactly one :class:`PoolResult`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["PoolResult", "ResilientPool"]

#: how long the parent blocks on the result queue per monitor iteration
_POLL_S = 0.02


@dataclass
class PoolResult:
    """Terminal outcome of one submitted item."""

    index: int
    #: "ok" | "error" (job fn raised) | "timeout" | "crash"
    status: str
    #: the job's return value when ok; a diagnostic string otherwise
    value: Any
    wall_s: float
    pid: Optional[int]
    attempts: int
    #: the pool's attempt ceiling this job ran under (diagnostic)
    max_attempts: int = 1
    #: total deterministic backoff delay scheduled across requeues
    backoff_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the job function returned normally."""
        return self.status == "ok"


def _worker_main(
    fn: Callable[[Any], Any], task_queue, result_queue, owner_pid: int
) -> None:
    """Worker loop: one task at a time, sentinel ``None`` stops it.

    ``owner_pid`` is the pool owner's pid *captured in the parent
    before the fork* — reading ``os.getppid()`` here instead would
    race: a child first scheduled after its parent already died
    records init's pid and can never notice the orphaning.
    """
    # A forked worker inherits the parent's signal plumbing.  When the
    # parent is an asyncio process with ``add_signal_handler`` installed
    # (the campaign service), SIGTERM delivery is a byte written to a
    # wakeup socketpair — *shared* across fork.  Left as-is, killing a
    # hung worker with terminate() would inject a phantom SIGTERM into
    # the parent's event loop (graceful-draining the whole service) and
    # the worker itself would swallow the signal instead of dying.
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    pid = os.getpid()
    while True:
        # Block in short slices so a worker orphaned by a parent
        # ``kill -9`` (which tears down no children) notices the
        # reparenting and exits instead of idling forever.
        try:
            task = task_queue.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() != owner_pid:
                break
            continue
        if task is None:
            break
        index, item = task
        start = time.perf_counter()
        try:
            value = fn(item)
        except KeyboardInterrupt:  # parent is shutting down; don't report
            break
        except BaseException:
            result_queue.put(
                (pid, index, "error", traceback.format_exc(),
                 time.perf_counter() - start)
            )
        else:
            result_queue.put(
                (pid, index, "ok", value, time.perf_counter() - start)
            )


class _Worker:
    """One worker process plus the parent-side view of its assignment."""

    __slots__ = ("process", "task_queue", "current", "assigned_at")

    def __init__(self, fn, result_queue):
        self.task_queue = multiprocessing.Queue()
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(fn, self.task_queue, result_queue, os.getpid()),
            daemon=True,
        )
        self.process.start()
        self.current: Optional[Tuple[int, Any, int]] = None  # (index, item, attempt)
        self.assigned_at = 0.0

    def assign(self, job: Tuple[int, Any, int]) -> None:
        index, item, _attempt = job
        self.current = job
        self.assigned_at = time.monotonic()
        self.task_queue.put((index, item))

    @property
    def idle(self) -> bool:
        return self.current is None and self.process.is_alive()

    def stop(self) -> None:
        """Best-effort graceful stop; escalate to terminate."""
        if self.process.is_alive():
            try:
                self.task_queue.put_nowait(None)
            except Exception:
                pass
        self.process.join(timeout=0.2)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.task_queue.close()


class ResilientPool:
    """Run ``fn`` over items in worker subprocesses, surviving the workers.

    ``timeout_s`` is the per-attempt deadline (None = no deadline);
    ``max_attempts`` bounds how often a hung or crashed job is requeued
    before it is reported as ``"timeout"`` / ``"crash"``;
    ``backoff_s`` seeds the capped exponential requeue delay
    (attempt ``k`` waits ``min(backoff_s * 2**(k-1), backoff_cap_s)``).

    Batch mode (:meth:`map_unordered`) is self-contained.  Persistent
    mode is ``start()`` + ``submit()`` + ``poll()`` + ``close()``;
    ``submit`` may be called from a different thread than the one
    driving ``poll`` (the service's HTTP loop submits while the worker
    bridge polls) — shared accounting is lock-protected.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int = 1,
        timeout_s: Optional[float] = None,
        max_attempts: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.fn = fn
        self.workers = int(workers)
        self.timeout_s = timeout_s
        self.max_attempts = int(max_attempts)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: terminal non-ok outcomes observed across the pool's lifetime
        self.failures: List[PoolResult] = []
        # -- engine state (persistent + batch share it) --------------------
        self._lock = threading.Lock()
        self._result_queue: Any = None
        self._pool: List[_Worker] = []
        self._ready: List[Tuple[int, Any, int]] = []  # LIFO, retries first
        self._retries: List[Tuple[float, Tuple[int, Any, int]]] = []
        self._done: set = set()
        self._backoff_spent: Dict[int, float] = {}
        self._outstanding = 0
        self._next_index = 0
        self._started = False
        self._replaced_workers = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`close`."""
        return self._started

    @property
    def outstanding(self) -> int:
        """Submitted items that have not yet reached a terminal result."""
        return self._outstanding

    @property
    def queued(self) -> int:
        """Submitted items waiting for a worker (ready + backing off)."""
        with self._lock:
            return len(self._ready) + len(self._retries)

    @property
    def replaced_workers(self) -> int:
        """Workers killed-and-replaced (crash or timeout) so far."""
        return self._replaced_workers

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic requeue delay before attempt ``attempt + 1``."""
        return min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_cap_s)

    def start(self, n_workers: Optional[int] = None) -> None:
        """Boot the worker fleet (idempotent)."""
        if self._started:
            return
        self._result_queue = multiprocessing.Queue()
        self._pool = [
            _Worker(self.fn, self._result_queue)
            for _ in range(n_workers if n_workers is not None else self.workers)
        ]
        self._started = True

    def submit(self, item: Any) -> int:
        """Queue one item; returns its pool index (submission order).

        Legal before :meth:`start` — the item waits in the ready queue
        until a fleet exists (recovery replays submissions this way).
        """
        with self._lock:
            index = self._next_index
            self._next_index += 1
            self._outstanding += 1
            self._ready.insert(0, (index, item, 1))
        return index

    def close(
        self, drain: bool = False, timeout_s: Optional[float] = None
    ) -> List[PoolResult]:
        """Tear the fleet down; with ``drain=True`` finish all work first.

        Draining polls until every outstanding job reached a terminal
        result (collected and returned), or ``timeout_s`` elapsed —
        whatever is still running then is abandoned with the workers.
        The default is the kill-oriented teardown: workers are stopped
        where they stand and outstanding jobs are simply dropped.
        """
        drained: List[PoolResult] = []
        if drain and self._started:
            deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
            while self._outstanding:
                if deadline is not None and time.monotonic() > deadline:
                    break
                result = self.poll()
                if result is not None:
                    drained.append(result)
        for worker in self._pool:
            worker.stop()
        self._pool = []
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None
        self._started = False
        return drained

    # -- execution -----------------------------------------------------------
    def map_unordered(self, items: Sequence[Any]) -> Iterator[PoolResult]:
        """Yield one :class:`PoolResult` per item, in completion order."""
        items = list(items)
        if not items:
            return
        self.start(n_workers=min(self.workers, len(items)))
        try:
            for item in items:
                self.submit(item)
            while self._outstanding:
                result = self.poll()
                if result is not None:
                    yield result
        finally:
            self.close()

    def poll(self, timeout: float = _POLL_S) -> Optional[PoolResult]:
        """One monitor iteration: assign, reap, wait up to ``timeout``.

        Returns a terminal :class:`PoolResult` when one completed, else
        None.  Call repeatedly; each submitted item produces exactly
        one result across calls.
        """
        now = time.monotonic()
        with self._lock:
            for due, job in list(self._retries):
                if due <= now:
                    self._retries.remove((due, job))
                    self._ready.append(job)  # retries jump the line
            for worker in self._pool:
                if worker.idle and self._ready:
                    worker.assign(self._ready.pop())
        result = self._poll_queue(timeout)
        if result is not None:
            if result.index in self._done:
                return None  # stale duplicate from a timed-out attempt
            self._done.add(result.index)
            with self._lock:
                self._outstanding -= 1
            if not result.ok:
                self.failures.append(result)
            return result
        return self._reap_workers(time.monotonic())

    def _reap_workers(self, now: float) -> Optional[PoolResult]:
        """Detect crashed/overdue workers; at most one terminal result."""
        for slot, worker in enumerate(self._pool):
            if worker.current is None:
                if not worker.process.is_alive():
                    # An idle worker died (e.g. an external kill):
                    # replace it so capacity is not lost.
                    worker.stop()
                    self._pool[slot] = _Worker(self.fn, self._result_queue)
                    self._replaced_workers += 1
                continue
            recovered = self._reap(worker, now)
            if recovered is None:
                continue
            self._pool[slot] = _Worker(self.fn, self._result_queue)
            self._replaced_workers += 1
            job, status = recovered
            index, item, attempt = job
            if index in self._done:
                continue
            if attempt < self.max_attempts:
                delay = self.backoff_delay(attempt)
                with self._lock:
                    self._backoff_spent[index] = (
                        self._backoff_spent.get(index, 0.0) + delay
                    )
                    self._retries.append((now + delay, (index, item, attempt + 1)))
                continue
            self._done.add(index)
            with self._lock:
                self._outstanding -= 1
                backoff_spent = self._backoff_spent.get(index, 0.0)
            failure = PoolResult(
                index=index,
                status=status,
                value=(
                    f"job {status} after {attempt} attempt(s)"
                    + (f" (deadline {self.timeout_s}s)"
                       if status == "timeout" else "")
                ),
                wall_s=now - worker.assigned_at,
                pid=None,
                attempts=attempt,
                max_attempts=self.max_attempts,
                backoff_s=backoff_spent,
            )
            self.failures.append(failure)
            return failure
        return None

    # -- monitoring ----------------------------------------------------------
    def _poll_queue(self, timeout: float) -> Optional[PoolResult]:
        """One bounded wait on the result queue; releases the sender."""
        try:
            pid, index, status, value, wall_s = self._result_queue.get(
                timeout=timeout
            )
        except Exception:  # queue.Empty (raised lazily via multiprocessing)
            return None
        attempts = 1
        for worker in self._pool:
            if worker.process.pid == pid and worker.current is not None:
                if worker.current[0] == index:
                    attempts = worker.current[2]
                    worker.current = None
                break
        with self._lock:
            backoff_spent = self._backoff_spent.get(index, 0.0)
        return PoolResult(
            index=index, status=status, value=value,
            wall_s=wall_s, pid=pid, attempts=attempts,
            max_attempts=self.max_attempts, backoff_s=backoff_spent,
        )

    def _reap(self, worker: _Worker, now: float):
        """Detect a crashed or overdue busy worker; (job, status) or None.

        The caller replaces the worker and decides requeue-vs-report.
        """
        if not worker.process.is_alive():
            job = worker.current
            worker.stop()
            return job, "crash"
        if (
            self.timeout_s is not None
            and now - worker.assigned_at > self.timeout_s
        ):
            job = worker.current
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - kill escalation
                worker.process.kill()
                worker.process.join(timeout=1.0)
            return job, "timeout"
        return None

    # -- introspection -------------------------------------------------------
    def worker_snapshot(self) -> List[Dict[str, Any]]:
        """Parent-side view of every worker (for /stats and watchdogs)."""
        snapshot = []
        now = time.monotonic()
        for worker in self._pool:
            current = worker.current
            snapshot.append(
                {
                    "pid": worker.process.pid,
                    "alive": worker.process.is_alive(),
                    "index": current[0] if current is not None else None,
                    "attempt": current[2] if current is not None else None,
                    "busy_s": (
                        round(now - worker.assigned_at, 6)
                        if current is not None else 0.0
                    ),
                }
            )
        return snapshot

    def active_indices(self) -> List[int]:
        """Pool indices currently assigned to a live worker."""
        return [
            worker.current[0]
            for worker in self._pool
            if worker.current is not None and worker.process.is_alive()
        ]
