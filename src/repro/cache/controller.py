"""The snooping cache controller.

Glue between a processor core, a :class:`~repro.cache.array.CacheArray`,
a coherence-protocol FSM and the shared bus:

* **processor side** — ``read`` / ``write`` / ``swap`` plus the cache
  management operations software coherence needs (``flush_line`` ==
  DCBF-style drain, ``invalidate_line`` == DCBI, ``writeback_line`` ==
  DCBST);
* **snoop side** — :meth:`snoop_decision` evaluates a snooped operation
  against the native FSM and either commits the transition immediately
  (the bus is held, so this is race-free) or reports that a drain is
  required, which the wrapper then schedules;
* **drain side** — :meth:`drain_line` performs the snoop push at DRAIN
  bus priority.

A single FIFO :class:`~repro.sim.Mutex` (the *port lock*) serialises
processor-side operations and drains.  This models the single tag/data
port of the real controllers and — deliberately — reproduces the
paper's Fig 4 hardware deadlock: a drain cannot proceed while the
processor's own transaction is mid-flight (including backed off after
ARTRY), which is exactly the "retries instead of draining" behaviour
described in Section 3.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..bus.asb import AsbBus
from ..bus.types import BusOp, Priority, Transaction
from ..errors import ProtocolError
from ..mem.map import MemoryMap, WritePolicy
from ..sim import Mutex, Simulator, Stats, Tracer
from .array import CacheArray, CacheGeometry
from .line import CacheLine, State
from .protocols.base import CoherenceProtocol, SnoopOp, WriteAction

__all__ = ["CacheController", "SnoopDecision"]


class SnoopDecision:
    """Outcome of evaluating one snooped operation (see snoop_decision)."""

    __slots__ = ("kind", "assert_shared", "supply_data", "drain_next_state")

    MISS = "miss"
    OK = "ok"
    SUPPLY = "supply"
    DRAIN = "drain"

    def __init__(
        self,
        kind: str,
        assert_shared: bool = False,
        supply_data: Optional[List[int]] = None,
        drain_next_state: Optional[State] = None,
    ):
        self.kind = kind
        self.assert_shared = assert_shared
        self.supply_data = supply_data
        self.drain_next_state = drain_next_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SnoopDecision {self.kind}>"


class CacheController:
    """One processor's data cache plus its coherence machinery."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        bus: AsbBus,
        memory_map: MemoryMap,
        geometry: CacheGeometry,
        protocol: Optional[CoherenceProtocol],
        protocol_wt: Optional[CoherenceProtocol] = None,
        tracer: Optional[Tracer] = None,
        stats: Optional[Stats] = None,
        enabled: bool = True,
        coherent: bool = True,
        drain_needs_port: bool = True,
    ):
        self.name = name
        self.sim = sim
        self.bus = bus
        self.map = memory_map
        self.geom = geometry
        self.array = CacheArray(geometry)
        self.protocol = protocol
        self.protocol_wt = protocol_wt
        self.tracer = tracer or bus.tracer
        self.stats = stats or bus.stats
        # Cached channel guards: disabled-channel emits cost only an
        # attribute load on the hot processor-access path.
        self._trace_mem = self.tracer.channel("mem")
        self._trace_cache = self.tracer.channel("cache")
        # Hot stat keys, interned once instead of one f-string per access.
        self._stat_hits = f"{name}.hits"
        self._stat_read_misses = f"{name}.read_misses"
        self._stat_write_misses = f"{name}.write_misses"
        self._stat_fills = f"{name}.fills"
        self.enabled = enabled
        #: whether this cache participates in bus snooping (False models
        #: the ARM920T: a write-back cache with no coherence hardware)
        self.coherent = coherent
        #: shared-signal filter installed by the wrapper (policy side)
        self.shared_filter: Callable[[bool], bool] = lambda actual: actual
        #: listeners for TAG CAM mirroring: f(line_base_addr)
        self.install_listeners: List[Callable[[int], None]] = []
        self.remove_listeners: List[Callable[[int], None]] = []
        self.port = Mutex(sim, name=f"{name}.port")
        #: True models the paper's controllers, where a snoop push
        #: queues behind the processor's own (possibly backed-off)
        #: transaction on the single tag/data port — the Fig 4
        #: ingredient.  False models a dedicated snoop machine that
        #: pushes in the post-ARTRY window of opportunity regardless of
        #: the port holder (how N-master shared-bus parts avoid the
        #: cross-drain deadlock).
        self.drain_needs_port = drain_needs_port

    # ------------------------------------------------------------------
    # processor side
    # ------------------------------------------------------------------
    def read(self, addr: int) -> Generator:
        """Load one word (generator; yields until the value is ready).

        Uncached accesses bypass the cache array (and therefore the
        port lock): the bus interface handles them while the tag/data
        port stays available to snoop pushes.
        """
        region = self.map.find(addr)
        if not (self.enabled and region.cacheable):
            value = yield from self._uncached_read(addr)
        else:
            yield self.port.acquire()
            try:
                # The paper's retry-first semantics (Section 3): the
                # processor transaction legitimately keeps the tag/data
                # port across its bus tenure, and a concurrent snoop
                # push ARTRYs and backs off.  The wait-cycle lint rule
                # proves the drain-policy bypass keeps this acyclic.
                # repro: lint-ok[hold-across-yield]
                value = yield from self._cached_read(addr, region)
            finally:
                self.port.release()
        trace = self._trace_mem
        if trace.enabled:
            trace.emit(self.sim.now, self.name, "load", addr=addr, value=value)
        return value

    def write(self, addr: int, value: int) -> Generator:
        """Store one word (generator); uncached stores skip the port."""
        region = self.map.find(addr)
        if not (self.enabled and region.cacheable):
            device = self._local_device(addr)
            if device is not None:
                device.write_word(addr, value)
            else:
                yield from self._transact(
                    Transaction(BusOp.WRITE, addr, self.name, data=value)
                )
                self.stats.bump(f"{self.name}.uncached_writes")
        else:
            yield self.port.acquire()
            try:
                # Retry-first port hold, as in read above.
                # repro: lint-ok[hold-across-yield]
                yield from self._cached_write(addr, value, region)
            finally:
                self.port.release()
        trace = self._trace_mem
        if trace.enabled:
            trace.emit(self.sim.now, self.name, "store", addr=addr, value=value)

    def swap(self, addr: int, value: int) -> Generator:
        """Atomic exchange on an *uncached* word (the lock primitive)."""
        region = self.map.find(addr)
        if self.enabled and region.cacheable:
            raise ProtocolError(
                f"swap at 0x{addr:08x}: atomic exchange is only defined for "
                "uncached addresses (lock variables are never cached)"
            )
        result = yield from self._transact(
            Transaction(BusOp.SWAP, addr, self.name, data=value)
        )
        trace = self._trace_mem
        if trace.enabled:
            trace.emit(self.sim.now, self.name, "swap", addr=addr, value=value, old=result.data)
        return result.data

    def flush_line(self, addr: int, priority: Priority = Priority.NORMAL) -> Generator:
        """DCBF: write back if dirty, then invalidate (software coherence)."""
        yield self.port.acquire()
        try:
            # Retry-first port hold, as in read above.
            # repro: lint-ok[hold-across-yield]
            yield from self._flush_locked(addr, priority)
        finally:
            self.port.release()

    def writeback_line(self, addr: int) -> Generator:
        """DCBST: push a dirty line to memory but keep it (clean)."""
        yield self.port.acquire()
        try:
            line = self.array.lookup(addr)
            if line is not None and line.is_dirty:
                base = self.geom.line_base(addr)

                def commit(_result):
                    if line.is_valid:
                        self._set_state(base, line, State.EXCLUSIVE, "dcbst")

                # Retry-first port hold, as in read above.
                # repro: lint-ok[hold-across-yield]
                yield from self._transact(
                    Transaction(
                        BusOp.WRITE_LINE, base, self.name,
                        data=line.data, line_words=self.geom.line_words,
                    ),
                    commit=commit,
                )
                self.stats.bump(f"{self.name}.writebacks")
        finally:
            self.port.release()

    def invalidate_line(self, addr: int) -> None:
        """DCBI: drop the line without writing it back (instant)."""
        base = self.geom.line_base(addr)
        if self.array.remove(base) is not None:
            self._notify_remove(base, "dcbi")

    def line_state(self, addr: int) -> State:
        """Current coherence state of the line holding ``addr``."""
        line = self.array.lookup(self.geom.line_base(addr))
        return line.state if line is not None else State.INVALID

    def cached_addresses(self, predicate=None) -> List[int]:
        """Valid line base addresses (optionally filtered by predicate)."""
        return self.array.flush_iter(predicate)

    # ------------------------------------------------------------------
    # snoop side (called with the bus held; synchronous)
    # ------------------------------------------------------------------
    def snoop_decision(self, op: SnoopOp, addr: int, data=None) -> SnoopDecision:
        """Evaluate and (unless a drain is needed) commit a snooped op.

        ``data`` carries the broadcast word for UPDATE operations
        (update-based protocols patch their copy in place).
        """
        base = self.geom.line_base(addr)
        line = self.array.lookup(base)
        if line is None:
            return SnoopDecision(SnoopDecision.MISS)
        outcome = line.protocol.snoop(line.state, op)
        if outcome.apply_update and data is not None:
            line.data[self.geom.word_offset(addr)] = data
        if outcome.drain:
            # Commit is deferred to drain_line(); the master sees ARTRY.
            return SnoopDecision(SnoopDecision.DRAIN, drain_next_state=outcome.next_state)
        if outcome.supply:
            data = list(line.data)
            self._apply_snoop_state(base, line, outcome.next_state)
            return SnoopDecision(
                SnoopDecision.SUPPLY,
                assert_shared=outcome.assert_shared,
                supply_data=data,
            )
        self._apply_snoop_state(base, line, outcome.next_state)
        return SnoopDecision(SnoopDecision.OK, assert_shared=outcome.assert_shared)

    # ------------------------------------------------------------------
    # drain side (scheduled by the wrapper or the snoop-logic ISR)
    # ------------------------------------------------------------------
    def drain_line(self, addr: int, next_state: State) -> Generator:
        """Snoop push: write the dirty line back, then enter next_state.

        Runs at DRAIN bus priority (the ARTRY/BOFF handover).  Tolerates
        the line having been cleaned, replaced or invalidated since the
        snoop — the push then degenerates to the bare state change.

        With ``drain_needs_port`` (the default) the push waits for the
        tag/data port, which the processor's own in-flight transaction
        may hold; with it off, the push proceeds immediately — the
        dedicated-snoop-machine behaviour (safe because snoop-side state
        commits never took the port either, and the port holder is
        parked waiting on the bus the drain is about to use).
        """
        base = self.geom.line_base(addr)
        if not self.drain_needs_port:
            yield from self._drain_push(base, next_state)
            return
        yield self.port.acquire()
        try:
            # Retry-first drain: the push queues behind the port on
            # purpose; the bypass branch above is what keeps the
            # port/drain-completion waits-for graph acyclic.
            # repro: lint-ok[hold-across-yield]
            yield from self._drain_push(base, next_state)
        finally:
            self.port.release()

    def _drain_push(self, base: int, next_state: State) -> Generator:
        line = self.array.lookup(base)
        if line is None:
            return
        if not line.is_dirty:
            self._apply_snoop_state(base, line, next_state)
            return

        # With the port-free ("window") policy the processor can store
        # into this line while the push is on the bus — the write-back
        # then carries stale content.  Snapshot what we intend to drain;
        # the commit refuses to clean a line that changed under it, so
        # the requester's next snoop sees a dirty hit and forces another
        # push with the fresh content.  (With drain_needs_port the port
        # serialises processor stores against the push and the snapshot
        # always matches.)
        snapshot = tuple(line.data)

        def commit(_result):
            if not line.is_valid:
                return
            if tuple(line.data) != snapshot:
                self.stats.bump(f"{self.name}.drain_redirties")
                return
            self._apply_snoop_state(base, line, next_state)

        yield from self._transact(
            Transaction(
                BusOp.WRITE_LINE, base, self.name,
                data=line.data, line_words=self.geom.line_words,
            ),
            priority=Priority.DRAIN,
            commit=commit,
        )
        self.stats.bump(f"{self.name}.drains")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _uncached_read(self, addr: int) -> Generator:
        device = self._local_device(addr)
        if device is not None:
            # Tightly-coupled register (coprocessor-style): no bus tenure.
            return device.read_word(addr)
        result = yield from self._transact(Transaction(BusOp.READ, addr, self.name))
        self.stats.bump(f"{self.name}.uncached_reads")
        return result.data

    def _local_device(self, addr: int):
        device = self.map.find(addr).device
        if device is not None and getattr(device, "local_master", None) == self.name:
            return device
        return None

    def _cached_read(self, addr: int, region) -> Generator:
        line = self.array.lookup(addr, touch=True)
        if line is not None:
            self.stats.bump(self._stat_hits)
            return line.data[self.geom.word_offset(addr)]
        self.stats.bump(self._stat_read_misses)
        line = yield from self._fill(addr, region, exclusive=False)
        return line.data[self.geom.word_offset(addr)]

    def _cached_write(self, addr: int, value: int, region) -> Generator:
        offset = self.geom.word_offset(addr)
        line = self.array.lookup(addr, touch=True)
        if line is not None:
            yield from self._write_hit(addr, line, offset, value)
            return
        self.stats.bump(self._stat_write_misses)
        protocol = self._protocol_for(region)
        if State.MODIFIED not in protocol.states:
            # Write-through, no-allocate: the word goes straight out.
            yield from self._transact(Transaction(BusOp.WRITE, addr, self.name, data=value))
            self.stats.bump(f"{self.name}.write_throughs")
            return
        if getattr(protocol, "update_based", False):
            # Update protocols have no RWITM: fill shared, then write
            # (which broadcasts when sharers exist).
            line = yield from self._fill(addr, region, exclusive=False)
            yield from self._write_hit(addr, line, offset, value)
            return
        line = yield from self._fill(addr, region, exclusive=True)
        line.data[offset] = value
        if line.state is not State.MODIFIED:  # defensive; RWITM fills M
            line.state = State.MODIFIED

    def _write_hit(self, addr: int, line: CacheLine, offset: int, value: int) -> Generator:
        self.stats.bump(self._stat_hits)
        new_state, action = line.protocol.write_hit(line.state)
        if action is WriteAction.NONE:
            base = self.geom.line_base(addr)
            if line.state is not new_state:
                self._set_state(base, line, new_state, "write-hit")
            line.data[offset] = value
            return
        if action is WriteAction.WRITE_THROUGH:
            line.data[offset] = value
            yield from self._transact(Transaction(BusOp.WRITE, addr, self.name, data=value))
            self.stats.bump(f"{self.name}.write_throughs")
            return
        if action is WriteAction.UPDATE:
            # Dragon-style broadcast: patch sharers, then settle between
            # Sm (sharers remain) and M (nobody listened).
            yield from self._broadcast_update(addr, line, offset, value)
            return
        # UPGRADE: address-only invalidate; commit while the bus is held.
        base = self.geom.line_base(addr)
        upgraded = []

        def commit(_result):
            if line.is_valid:
                self._set_state(base, line, new_state, "upgrade")
                line.data[offset] = value
                upgraded.append(True)

        yield from self._transact(
            Transaction(BusOp.INVALIDATE, base, self.name),
            commit=commit,
            # A competing invalidate can snatch our line while this
            # request sits in arbitration; broadcasting the upgrade
            # anyway would kill the race winner's dirty line without a
            # write-back (lost data).  Cancel at grant time instead —
            # the hardware's lost-upgrade-to-RWITM conversion.
            validate=lambda: line.is_valid,
        )
        self.stats.bump(f"{self.name}.upgrades")
        if not upgraded:
            # The line was snatched (invalidated by a competing RWITM)
            # between our decision and our bus grant: redo as a miss.
            self.stats.bump(f"{self.name}.upgrade_races")
            region = self.map.find(addr)
            line = yield from self._fill(addr, region, exclusive=True)
            line.data[offset] = value

    def _broadcast_update(self, addr: int, line: CacheLine, offset: int, value: int) -> Generator:
        base = self.geom.line_base(addr)
        done = []

        def commit(result):
            if line.is_valid:
                line.data[offset] = value
                final = State.OWNED if result.shared else State.MODIFIED
                if line.state is not final:
                    self._set_state(base, line, final, "update")
                done.append(True)

        yield from self._transact(
            Transaction(BusOp.UPDATE, addr, self.name, data=value), commit=commit
        )
        self.stats.bump(f"{self.name}.updates")
        if not done:
            # The line vanished (snooped away) mid-broadcast: redo as a
            # plain miss-and-write.
            region = self.map.find(addr)
            yield from self._cached_write(addr, value, region)

    def _fill(self, addr: int, region, exclusive: bool) -> Generator:
        """Fetch the line for ``addr``; returns the installed CacheLine."""
        protocol = self._protocol_for(region)
        base = self.geom.line_base(addr)
        way, victim, victim_addr = self.array.victim_for(base)
        if victim is not None:
            yield from self._evict(victim, victim_addr, way)
        op = BusOp.READ_LINE_EXCL if exclusive else BusOp.READ_LINE
        installed: List[CacheLine] = []

        def commit(result):
            shared = self.shared_filter(result.shared)
            state = protocol.fill_state(exclusive, shared)
            line = self.array.install(base, way, result.data, state, protocol)
            installed.append(line)
            self._notify_install(base)
            trace = self._trace_cache
            if trace.enabled:
                trace.emit(
                    self.sim.now, self.name, "fill",
                    addr=base, state=str(state), shared=shared, excl=exclusive,
                )

        yield from self._transact(
            Transaction(op, base, self.name, line_words=self.geom.line_words),
            commit=commit,
        )
        self.stats.bump(self._stat_fills)
        return installed[0]

    def _evict(self, victim: CacheLine, victim_addr: int, way: int) -> Generator:
        """Retire the victim occupying ``way``.

        Dirty victims stay valid (and snoopable) until the write-back
        commits, so no master can slip in a read of stale memory between
        the eviction decision and the memory update.
        """
        if victim.is_dirty:
            def commit(_result):
                if victim.is_valid:
                    victim.state = State.INVALID
                    self._set_removed(victim_addr, way)
                    self._notify_remove(victim_addr, "evict")

            yield from self._transact(
                Transaction(
                    BusOp.WRITE_LINE, victim_addr, self.name,
                    data=victim.data, line_words=self.geom.line_words,
                ),
                commit=commit,
            )
            self.stats.bump(f"{self.name}.writebacks")
            if victim.is_valid:
                # A concurrent drain beat us to the state change; the way
                # may already be empty — make sure it is.
                self._set_removed(victim_addr, way)
        else:
            victim.state = State.INVALID
            self._set_removed(victim_addr, way)
            self._notify_remove(victim_addr, "evict")
        self.stats.bump(f"{self.name}.evictions")

    def _set_removed(self, victim_addr: int, way: int) -> None:
        self.array.release_way(victim_addr, way)

    def _flush_locked(self, addr: int, priority: Priority) -> Generator:
        base = self.geom.line_base(addr)
        line = self.array.lookup(base)
        if line is None:
            return
        if line.is_dirty:
            def commit(_result):
                if line.is_valid:
                    line.state = State.INVALID
                    self.array.remove(base)
                    self._notify_remove(base, "dcbf")

            yield from self._transact(
                Transaction(
                    BusOp.WRITE_LINE, base, self.name,
                    data=line.data, line_words=self.geom.line_words,
                ),
                priority=priority,
                commit=commit,
            )
            self.stats.bump(f"{self.name}.writebacks")
        else:
            self.array.remove(base)
            self._notify_remove(base, "dcbf")
        self.stats.bump(f"{self.name}.flushes")

    def _apply_snoop_state(self, base: int, line: CacheLine, next_state: State) -> None:
        if next_state is State.INVALID:
            self.array.remove(base)
            self._notify_remove(base, "snoop")
        elif line.state is not next_state:
            self._set_state(base, line, next_state, "snoop")

    def _set_state(self, base: int, line: CacheLine, state: State, cause: str) -> None:
        trace = self._trace_cache
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, "state",
                addr=base, frm=str(line.state), to=str(state), cause=cause,
            )
        line.state = state

    def _notify_install(self, base: int) -> None:
        for listener in self.install_listeners:
            listener(base)

    def _notify_remove(self, base: int, cause: str) -> None:
        trace = self._trace_cache
        if trace.enabled:
            trace.emit(self.sim.now, self.name, "invalidate", addr=base, cause=cause)
        for listener in self.remove_listeners:
            listener(base)

    def _protocol_for(self, region) -> CoherenceProtocol:
        if (
            self.protocol_wt is not None
            and region.write_policy is WritePolicy.WRITE_THROUGH
        ):
            return self.protocol_wt
        if self.protocol is None:
            raise ProtocolError(f"{self.name}: cache enabled but no protocol configured")
        return self.protocol

    def _transact(
        self,
        txn: Transaction,
        priority: Priority = Priority.NORMAL,
        commit=None,
        validate=None,
    ):
        return self.bus.transact(
            txn, priority=priority, commit=commit, validate=validate
        )
