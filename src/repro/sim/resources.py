"""Synchronization primitives for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import SimulationError
from .kernel import Event, Simulator

__all__ = ["Mutex"]


class Mutex:
    """A FIFO mutual-exclusion lock for processes.

    Models a single-ported resource (e.g. a cache's tag/data port shared
    by the processor side and the snoop-push machinery).  FIFO ordering
    matters: a drain queued behind a spinning core must win the port the
    moment the core releases it, or drains starve.

    Usage inside a process::

        yield mutex.acquire()
        try:
            ...
        finally:
            mutex.release()
    """

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._holder: Optional[Event] = None
        self._waiters: Deque[Event] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._holder is not None

    @property
    def waiting(self) -> int:
        """Number of queued acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """An event that fires when the caller holds the lock."""
        grant = self.sim.event()
        if self._holder is None:
            self._holder = grant
            self.acquisitions += 1
            grant.succeed()
        else:
            self.contentions += 1
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release the lock, handing it to the next queued acquirer."""
        if self._holder is None:
            raise SimulationError(f"release of unheld mutex {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self._holder = nxt
            self.acquisitions += 1
            nxt.succeed()
        else:
            self._holder = None
