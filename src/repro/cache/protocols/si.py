"""The SI protocol: write-through lines (Intel486 style).

The Write-back Enhanced Intel486 defines lines as write-back or
write-through at allocation time; only write-through lines can be
Shared, and they are never dirty — every write goes to the bus.
Section 3: "the protocol for write-through lines is the SI protocol
while the protocol for write-back lines is the MEI protocol" (once the
wrapper has removed E and M sharing).
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ProtocolError
from ..line import State
from .base import CoherenceProtocol, SnoopOp, SnoopOutcome, WriteAction

__all__ = ["SIProtocol"]


class SIProtocol(CoherenceProtocol):
    """Shared / Invalid: write-through, never dirty."""

    name = "SI"
    states = frozenset({State.SHARED, State.INVALID})
    uses_shared_signal = False
    supports_supply = False

    def fill_state(self, exclusive: bool, shared: bool) -> State:
        if exclusive:
            raise ProtocolError("SI lines cannot be fetched exclusively")
        return State.SHARED

    def write_hit(self, state: State) -> Tuple[State, WriteAction]:
        self._check(state)
        if state is State.SHARED:
            return State.SHARED, WriteAction.WRITE_THROUGH
        raise ProtocolError(f"SI write hit in state {state}")

    def snoop(self, state: State, op: SnoopOp) -> SnoopOutcome:
        self._check(state)
        if state is State.INVALID:
            return self._snoop_invalid()
        if op is SnoopOp.READ:
            return SnoopOutcome(State.SHARED, assert_shared=True)
        return SnoopOutcome(State.INVALID)
