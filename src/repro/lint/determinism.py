"""``determinism`` — sources of run-to-run nondeterminism in sim logic.

The simulator's contract (PR 2's golden trace, the parallel sweep
cache's content-addressed keys) is that identical inputs produce
byte-identical traces and results.  Four code shapes break that promise
without failing any functional test:

* **iterating a set** (or frozenset) — Python set order depends on hash
  seeding and insertion history; when the loop body schedules events,
  appends to a queue, or builds a report, the output order floats.
  Membership tests and ``sorted(the_set)`` are fine; bare ``for``/
  comprehension iteration is not.
* **``id()`` as an ordering key** — CPython ids are allocation
  addresses; ``sorted(..., key=id)`` differs between runs.  Using
  ``id()`` as a *dict key* (identity maps) is deterministic and allowed.
* **module-level ``random``** — the global RNG is shared, seedable from
  anywhere, and unseeded by default.  Sim logic must use a
  ``random.Random(seed)`` instance.
* **wall-clock reads** — ``time.time()`` and friends inside sim logic
  leak host timing into results.  (The experiment harness under
  ``exp/`` measures wall time on purpose and is exempt.)

Set-typed symbols are recognised syntactically: a name or ``self``
attribute is set-typed when any assignment in the module binds it to a
set display, a set comprehension, or a ``set()``/``frozenset()`` call,
or annotates it as ``Set``/``FrozenSet``/``set``/``frozenset``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from .core import AstRule, Finding, ModuleSource, register

__all__ = ["DeterminismRule"]

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_SET_ANNOTATIONS = {"Set", "FrozenSet", "set", "frozenset", "MutableSet", "AbstractSet"}

_ORDERING_FUNCS = {"sorted", "min", "max"}


def _attr_pair(node: ast.AST):
    """(``base``, ``attr``) for a one-level attribute like ``time.time``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """True for set displays, set comprehensions and set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: ast.AST) -> bool:
    """True when an annotation names a set type (``Set[int]`` etc.)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: keep it to the simple "Set[...]" shape.
        return node.value.split("[")[0].strip() in _SET_ANNOTATIONS
    return False


def _symbol(node: ast.AST):
    """A stable key for a name or ``self.attr`` target, else None."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return ("self", node.attr)
    return None


def _collect_set_symbols(tree: ast.Module) -> Set[tuple]:
    """Symbols bound or annotated as sets anywhere in the module."""
    symbols: Set[tuple] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                key = _symbol(target)
                if key is not None:
                    symbols.add(key)
        elif isinstance(node, ast.AnnAssign):
            key = _symbol(node.target)
            if key is None:
                continue
            if _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                symbols.add(key)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _annotation_is_set(node.annotation):
                symbols.add(("name", node.arg))
    return symbols


@register
class DeterminismRule(AstRule):
    """Forbid nondeterministic iteration, ordering, randomness, clocks."""

    id = "determinism"
    description = (
        "no set iteration, id()-based ordering, global random, or "
        "wall-clock reads in simulator logic"
    )
    exempt_paths = ("exp/", "lint/", "service/")

    def visit_module(self, module: ModuleSource) -> Iterable[Finding]:
        set_symbols = _collect_set_symbols(module.tree)
        for node in ast.walk(module.tree):
            yield from self._check_iteration(module, node, set_symbols)
            yield from self._check_ordering_key(module, node)
            yield from self._check_random(module, node)
            yield from self._check_clock(module, node)

    # -- set iteration -----------------------------------------------------
    def _check_iteration(self, module, node, set_symbols) -> Iterable[Finding]:
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # A comprehension consumed directly by sorted() is fine: the
            # sort imposes the order the set lacks.
            parent = module.parents.get(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "frozenset", "set")
                and node in parent.args
            ):
                return
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it) or _symbol(it) in set_symbols:
                yield self.finding(
                    module.path,
                    it.lineno,
                    "iteration over a set is order-nondeterministic; "
                    "iterate sorted(...) or an ordered container",
                )

    # -- id() in ordering --------------------------------------------------
    def _check_ordering_key(self, module, node) -> Iterable[Finding]:
        if not (isinstance(node, ast.Call)):
            return
        is_sort_call = (
            isinstance(node.func, ast.Name) and node.func.id in _ORDERING_FUNCS
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if not is_sort_call:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            for sub in ast.walk(keyword.value):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ) or (isinstance(sub, ast.Name) and sub.id == "id"
                      and not isinstance(sub.ctx, ast.Store)):
                    yield self.finding(
                        module.path,
                        node.lineno,
                        "id() in a sort key orders by allocation address "
                        "(varies run to run); use a stable key",
                    )
                    return

    # -- global random -----------------------------------------------------
    def _check_random(self, module, node) -> Iterable[Finding]:
        pair = _attr_pair(node)
        if pair is None or pair[0] != "random":
            return
        if pair[1] in ("Random", "SystemRandom"):
            return  # instantiating a seeded instance is the approved path
        # Only flag uses, not e.g. assignments shadowing the module.
        if isinstance(node.ctx, ast.Load):
            yield self.finding(
                module.path,
                node.lineno,
                f"random.{pair[1]} uses the unseeded global RNG; "
                "use a random.Random(seed) instance",
            )

    # -- wall clock --------------------------------------------------------
    def _check_clock(self, module, node) -> Iterable[Finding]:
        pair = _attr_pair(node)
        if pair in _WALL_CLOCK and isinstance(node.ctx, ast.Load):
            yield self.finding(
                module.path,
                node.lineno,
                f"wall-clock read {pair[0]}.{pair[1]} in simulator logic; "
                "derive timing from sim.now",
            )
