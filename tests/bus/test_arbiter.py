"""Unit tests for bus arbitration."""

import pytest

from repro.bus import FixedPriorityArbiter, Priority, RoundRobinArbiter
from repro.errors import BusError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def grants_in_order(sim, arbiter, requests):
    """Issue requests, then release in grant order; return grant order."""
    order = []

    def track(name):
        def cb(_event):
            order.append(name)

        return cb

    for name, priority in requests:
        arbiter.request(name, priority).add_callback(track(name))
    sim.run(detect_deadlock=False)
    # Drain: keep releasing whoever holds the bus.
    while arbiter.busy:
        holder = arbiter.holder
        arbiter.release(holder)
        sim.run(detect_deadlock=False)
    return order


class TestFixedPriority:
    def test_fifo_within_level(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        order = grants_in_order(
            sim, arbiter,
            [("a", Priority.NORMAL), ("b", Priority.NORMAL), ("c", Priority.NORMAL)],
        )
        assert order == ["a", "b", "c"]

    def test_drain_beats_normal(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        order = grants_in_order(
            sim, arbiter,
            [("n1", Priority.NORMAL), ("n2", Priority.NORMAL), ("d", Priority.DRAIN)],
        )
        # n1 was already granted (bus idle); d preempts the queue next.
        assert order == ["n1", "d", "n2"]

    def test_retry_beats_normal_but_not_drain(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        order = grants_in_order(
            sim, arbiter,
            [
                ("n1", Priority.NORMAL),
                ("n2", Priority.NORMAL),
                ("r", Priority.RETRY),
                ("d", Priority.DRAIN),
            ],
        )
        assert order == ["n1", "d", "r", "n2"]

    def test_immediate_grant_when_idle(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        grant = arbiter.request("solo")
        sim.run(detect_deadlock=False)
        assert grant.triggered
        assert arbiter.holder == "solo"

    def test_release_by_non_holder_rejected(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        arbiter.request("a")
        sim.run(detect_deadlock=False)
        with pytest.raises(BusError) as exc_info:
            arbiter.release("b")
        # The error names both the offender and the actual holder.
        assert "a" in str(exc_info.value)
        assert "b" in str(exc_info.value)
        # The grant state is untouched by the rejected release.
        assert arbiter.holder == "a"

    def test_release_when_idle_rejected(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        with pytest.raises(BusError):
            arbiter.release("a")

    def test_snapshot_reports_holder_and_queues(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        arbiter.request("a")
        arbiter.request("b")
        arbiter.request("c", Priority.RETRY)
        sim.run(detect_deadlock=False)
        snap = arbiter.snapshot()
        assert snap["holder"] == "a"
        assert snap["grants"] == 1
        assert snap["queued"]["normal"] == ["b"]
        assert snap["queued"]["retry"] == ["c"]
        assert snap["queued"]["drain"] == []

    def test_pending_counts_queued(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        arbiter.request("a")
        arbiter.request("b")
        arbiter.request("c")
        assert arbiter.pending() == 2  # "a" already granted

    def test_grant_counter(self, sim):
        arbiter = FixedPriorityArbiter(sim)
        grants_in_order(sim, arbiter, [("a", Priority.NORMAL), ("b", Priority.NORMAL)])
        assert arbiter.grants == 2


class TestRoundRobin:
    def test_alternates_between_masters(self, sim):
        arbiter = RoundRobinArbiter(sim)
        order = grants_in_order(
            sim, arbiter,
            [
                ("a", Priority.NORMAL),
                ("a", Priority.NORMAL),
                ("b", Priority.NORMAL),
                ("b", Priority.NORMAL),
            ],
        )
        assert order == ["a", "b", "a", "b"]

    def test_single_master_not_starved(self, sim):
        arbiter = RoundRobinArbiter(sim)
        order = grants_in_order(
            sim, arbiter, [("a", Priority.NORMAL), ("a", Priority.NORMAL)]
        )
        assert order == ["a", "a"]

    def test_drain_still_wins(self, sim):
        arbiter = RoundRobinArbiter(sim)
        order = grants_in_order(
            sim, arbiter,
            [("a", Priority.NORMAL), ("a", Priority.NORMAL), ("d", Priority.DRAIN)],
        )
        assert order == ["a", "d", "a"]
