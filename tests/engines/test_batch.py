"""Batch-engine edges: rejections, ingestion fallback, value semantics.

The batch engine refuses configurations it cannot replay faithfully
(fault injection, non-coherent masters) instead of producing silently
wrong statistics, and its numpy-vectorised ingestion must decompose
traces identically to the scalar fallback.
"""

import pytest

from repro.core import LOCK_BASE, SHARED_BASE
from repro.core.platform import PlatformConfig
from repro.cpu.presets import preset_arm920t, preset_generic
from repro.engines import get_engine, serialize_workload
from repro.engines.batch import HAS_NUMPY
from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.workloads.tracegen import TraceAccess


def _two_mesi(**overrides):
    return PlatformConfig(
        cores=(preset_generic("p0", "MESI"), preset_generic("p1", "MESI")),
        hardware_coherence=True,
        **overrides,
    )


class TestRejections:
    def test_fault_injection_is_refused(self):
        config = _two_mesi(faults=(FaultSpec(site="drain.drop"),))
        with pytest.raises(ConfigError, match="fault injection"):
            get_engine("batch").run(config, [])

    def test_non_coherent_masters_are_refused(self):
        config = PlatformConfig(
            cores=(preset_generic("p0", "MESI"), preset_arm920t("p1")),
            hardware_coherence=True,
        )
        with pytest.raises(ConfigError, match="coherent masters only"):
            get_engine("batch").run(config, [])

    def test_out_of_range_processor_is_refused(self):
        access = TraceAccess(7, "read", SHARED_BASE, None)
        with pytest.raises(ConfigError, match="processor"):
            get_engine("batch").run(_two_mesi(), [access])

    def test_unmapped_address_is_refused(self):
        access = TraceAccess(0, "read", 0xDEAD_0000_0000, None)
        with pytest.raises(ConfigError, match="unmapped"):
            get_engine("batch").run(_two_mesi(), [access])


class TestValueSemantics:
    def test_reads_writes_and_swaps(self):
        word = SHARED_BASE + 0x40
        lock = LOCK_BASE  # uncached: atomic exchange is only legal here
        accesses = [
            TraceAccess(0, "read", word, None),       # reset value
            TraceAccess(0, "write", word, 111),
            TraceAccess(1, "read", word, None),       # sees p0's store
            TraceAccess(1, "swap", lock, 1),          # returns pre-swap
            TraceAccess(0, "swap", lock, 1),          # sees p1's claim
            TraceAccess(0, "read", word, None),       # cached value again
        ]
        result = get_engine("batch").run(_two_mesi(), accesses)
        assert result.values == [0, None, 111, 0, 1, 111]
        assert result.accesses == 6
        # Statistics-only engine: no kernel, no simulated time.
        assert result.events == 0
        assert result.elapsed_ns == 0

    def test_empty_trace_runs(self):
        result = get_engine("batch").run(_two_mesi(), [])
        assert result.accesses == 0
        assert result.values == []


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
class TestIngestionFallback:
    def test_scalar_fallback_matches_numpy(self, monkeypatch):
        import repro.engines.batch as batch_mod

        config = _two_mesi()
        accesses = serialize_workload(
            {"kind": "racy", "n": 200, "footprint_words": 24, "seed": 13}
        )
        vectorised = get_engine("batch").run(config, accesses)
        monkeypatch.setattr(batch_mod, "_np", None)
        scalar = get_engine("batch").run(config, accesses)
        assert scalar.stats == vectorised.stats
        assert scalar.line_states == vectorised.line_states
        assert scalar.values == vectorised.values
