"""Deterministic fault injectors.

Each injector *wraps* an existing component — a snooper on the bus, a
snoop logic's nFIQ line, a TAG-CAM maintenance listener, the arbiter's
selection policy, the memory controller — without forking its logic:
the wrapped component keeps doing exactly what it did, and the injector
perturbs one observable interaction per its :class:`FaultSpec` trigger.

Registered sites
----------------
``drain.drop``
    A snooper answers ARTRY but its push-completion signal is lost: the
    backed-off master waits forever.  Liveness fault → watchdog.
``drain.delay``
    The completion signal lands ``delay_ns`` late.  Benign (slower).
``snoop.silent``
    The snooper misses the address compare and answers OK while holding
    the line (possibly dirty).  Coherence fault → stale reads, caught
    by :class:`~repro.verify.CoherenceChecker`.
``retry.storm``
    The snooper answers ARTRY with an already-satisfied completion on
    every matching transaction: the master re-arbitrates forever.
    Livelock → the bus's bounded-retry ceiling.
``fiq.lose``
    The snoop logic's nFIQ assertion is dropped; the ISR never runs and
    the hit line is never drained.  Liveness fault → watchdog.
``fiq.delay``
    nFIQ assertion lands ``delay_ns`` late (suppressed if the backlog
    drained in the meantime).  Benign (slower).
``cam.stale``
    After an eviction the TAG CAM keeps the dead tag: later snoop hits
    on it queue service requests no DCBF can ever satisfy.  Liveness
    fault → watchdog.
``arbiter.starve``
    The arbiter skips the target master's requests: grant starvation.
    Liveness fault → watchdog.
``mem.delay``
    The memory controller's data phase takes ``extra_cycles`` longer on
    faulted accesses.  Benign (slower).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from ..bus.asb import Snooper
from ..bus.types import SnoopAction, SnoopReply, Transaction
from ..errors import ConfigError
from ..sim.kernel import Timeout
from .spec import FaultSpec, FaultTrigger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.platform import Platform

__all__ = ["FaultInjector", "FaultEngine", "SITES", "apply_faults"]


class FaultInjector:
    """Base injector: one armed :class:`FaultSpec` plus its trigger."""

    site: str = ""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.trigger = FaultTrigger(spec)

    @property
    def fires(self) -> int:
        """How many times this fault has actually been injected."""
        return self.trigger.fires

    def arm(self, platform: "Platform") -> None:
        """Attach the injector to its site on ``platform``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Spec rendering plus fire count, for reports."""
        return f"{self.spec.describe()} (fired {self.fires}x)"


# -- snooper-wrapping faults --------------------------------------------------
class _SnooperProxy(Snooper):
    """Delegates to the wrapped snooper; the injector filters replies."""

    _wraps = "repro.bus.asb.Snooper"

    def __init__(self, inner: Snooper, injector: "_SnooperFault"):
        self.inner = inner
        self.injector = injector
        self.master_name = inner.master_name

    def observe(self, txn: Transaction) -> None:
        self.inner.observe(txn)

    def snoop(self, txn: Transaction) -> SnoopReply:
        return self.injector.filter_snoop(self.inner, txn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<faulty:{self.injector.site} {self.inner!r}>"


class _SnooperFault(FaultInjector):
    """Common arming logic for faults that wrap bus snoopers."""

    def arm(self, platform: "Platform") -> None:
        self.sim = platform.sim
        bus = platform.bus
        wrapped = 0
        for index, snooper in enumerate(bus.snoopers):
            if self.spec.master is None or snooper.master_name == self.spec.master:
                bus.snoopers[index] = _SnooperProxy(snooper, self)
                wrapped += 1
        if not wrapped:
            raise ConfigError(
                f"{self.site}: no snooper named {self.spec.master!r} on the bus"
            )

    def _context(self, inner: Snooper, txn: Transaction) -> dict:
        controller = getattr(inner, "controller", None)
        base = controller.geom.line_base(txn.addr) if controller is not None else None
        return dict(
            master=inner.master_name, addr=txn.addr, line_base=base, op=txn.op.value
        )

    def filter_snoop(self, inner: Snooper, txn: Transaction) -> SnoopReply:
        raise NotImplementedError


class DropDrainFault(_SnooperFault):
    """ARTRY whose drain never signals completion (lost push)."""

    site = "drain.drop"

    def filter_snoop(self, inner: Snooper, txn: Transaction) -> SnoopReply:
        reply = inner.snoop(txn)
        if reply.action is SnoopAction.RETRY and self.trigger.should_fire(
            **self._context(inner, txn)
        ):
            # The snooper still drains (its own completion fires), but
            # the master observes a completion that never comes.
            return SnoopReply(SnoopAction.RETRY, completion=self.sim.event())
        return reply


class DelayDrainFault(_SnooperFault):
    """ARTRY whose completion signal lands ``delay_ns`` late."""

    site = "drain.delay"

    def filter_snoop(self, inner: Snooper, txn: Transaction) -> SnoopReply:
        reply = inner.snoop(txn)
        if reply.action is SnoopAction.RETRY and self.trigger.should_fire(
            **self._context(inner, txn)
        ):
            late = self.sim.event()
            delay = self.spec.delay_ns

            def relay(_event):
                timer = Timeout(self.sim, delay)
                timer.add_callback(lambda _t: late.succeed())

            reply.completion.add_callback(relay)
            return SnoopReply(SnoopAction.RETRY, completion=late)
        return reply


class SilentSnoopFault(_SnooperFault):
    """The snooper misses the address compare: OK despite a (dirty) hit."""

    site = "snoop.silent"

    def filter_snoop(self, inner: Snooper, txn: Transaction) -> SnoopReply:
        if self.trigger.should_fire(**self._context(inner, txn)):
            # The inner snooper is not consulted at all: no state
            # transition, no drain, no shared signal — the fill reads
            # whatever memory holds.
            return SnoopReply.OK
        return inner.snoop(txn)


class RetryStormFault(_SnooperFault):
    """ARTRY with an instantly-satisfied completion, every time."""

    site = "retry.storm"

    def filter_snoop(self, inner: Snooper, txn: Transaction) -> SnoopReply:
        if self.trigger.should_fire(**self._context(inner, txn)):
            completion = self.sim.event()
            completion.succeed()
            return SnoopReply(SnoopAction.RETRY, completion=completion)
        return inner.snoop(txn)


# -- nFIQ faults --------------------------------------------------------------
class _FaultyFiqLine:
    """Proxy in front of an :class:`InterruptLine`; filters assertions."""

    _wraps = "repro.cpu.interrupts.InterruptLine"

    def __init__(self, inner, injector: "_FiqFault", logic):
        self._inner = inner
        self._injector = injector
        self._logic = logic

    def assert_line(self) -> None:
        self._injector.filter_assert(self._inner, self._logic)

    def deassert(self) -> None:
        self._inner.deassert()

    def wait(self):
        return self._inner.wait()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _FiqFault(FaultInjector):
    def arm(self, platform: "Platform") -> None:
        self.sim = platform.sim
        armed = 0
        for logic in platform.snoop_logics:
            if logic is None:
                continue
            if self.spec.master is None or logic.master_name == self.spec.master:
                logic.fiq = _FaultyFiqLine(logic.fiq, self, logic)
                armed += 1
        if not armed:
            raise ConfigError(
                f"{self.site}: no snoop logic named {self.spec.master!r}"
            )

    def filter_assert(self, inner, logic) -> None:
        raise NotImplementedError


class LostFiqFault(_FiqFault):
    """The nFIQ assertion never reaches the core."""

    site = "fiq.lose"

    def filter_assert(self, inner, logic) -> None:
        if self.trigger.should_fire(master=logic.master_name):
            return
        inner.assert_line()


class DeferredFiqFault(_FiqFault):
    """The nFIQ assertion lands ``delay_ns`` late."""

    site = "fiq.delay"

    def filter_assert(self, inner, logic) -> None:
        if self.trigger.should_fire(master=logic.master_name):
            timer = Timeout(self.sim, self.spec.delay_ns)

            def deliver(_event):
                # Suppress the late assertion if the backlog drained in
                # the meantime (a real level-sensitive line would be low).
                if logic.pending:
                    inner.assert_line()

            timer.add_callback(deliver)
            return
        inner.assert_line()


# -- TAG CAM fault ------------------------------------------------------------
class StaleCamFault(FaultInjector):
    """Evictions leave a stale tag behind in the snoop logic's CAM."""

    site = "cam.stale"

    def arm(self, platform: "Platform") -> None:
        armed = 0
        for logic in platform.snoop_logics:
            if logic is None:
                continue
            if self.spec.master is None or logic.master_name == self.spec.master:
                self._wrap(logic)
                armed += 1
        if not armed:
            raise ConfigError(
                f"{self.site}: no snoop logic named {self.spec.master!r}"
            )

    def _wrap(self, logic) -> None:
        listeners = logic.controller.remove_listeners
        original = logic._on_remove
        index = listeners.index(original)

        def sticky_remove(line_addr: int) -> None:
            original(line_addr)
            if self.trigger.should_fire(
                master=logic.master_name, addr=line_addr, line_base=line_addr
            ):
                # The CAM failed to clear the tag: the line is gone from
                # the cache but still answers snoop compares.
                logic._cam.add(line_addr)

        listeners[index] = sticky_remove


# -- arbiter fault ------------------------------------------------------------
class StarvationFault(FaultInjector):
    """The arbiter never grants the target master's requests."""

    site = "arbiter.starve"

    def __init__(self, spec: FaultSpec):
        super().__init__(spec)
        #: requests absorbed by the fault: (master, grant-event) pairs
        self.starved: List[Tuple[str, object]] = []

    def arm(self, platform: "Platform") -> None:
        if self.spec.master is None:
            raise ConfigError("arbiter.starve needs an explicit master")
        arbiter = platform.bus.arbiter
        # A banked interconnect (the directory fabric) exposes its
        # per-home arbiters as `.banks`; the fault must starve the
        # target on every bank or a transaction to an unpatched home
        # would slip through.  A single snoopy arbiter is the
        # degenerate one-bank case.
        for bank in getattr(arbiter, "banks", (arbiter,)):
            self._patch_select(bank)

    def _patch_select(self, arbiter) -> None:
        original = arbiter._select

        def starving_select():
            while True:
                choice = original()
                if choice is None:
                    return None
                master, grant = choice
                if self.trigger.should_fire(master=master):
                    self.starved.append((master, grant))
                    continue
                return choice

        arbiter._select = starving_select


# -- memory-controller fault --------------------------------------------------
class _SlowController:
    """Delegating proxy that stretches faulted data phases."""

    _wraps = "repro.mem.controller.MemoryController"

    def __init__(self, inner, injector: "MemDelayFault"):
        self._inner = inner
        self._injector = injector

    def access(self, txn: Transaction):
        data, cycles = self._inner.access(txn)
        if self._injector.trigger.should_fire(
            master=txn.master, addr=txn.addr, op=txn.op.value
        ):
            cycles += self._injector.spec.extra_cycles
        return data, cycles

    def supply_cycles(self, words: int) -> int:
        return self._inner.supply_cycles(words)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class MemDelayFault(FaultInjector):
    """Memory-controller response delays (slow DRAM, refresh stalls)."""

    site = "mem.delay"

    def arm(self, platform: "Platform") -> None:
        if self.spec.extra_cycles <= 0:
            raise ConfigError("mem.delay needs extra_cycles >= 1")
        platform.bus.controller = _SlowController(platform.bus.controller, self)


#: every registered fault class, by site name
SITES: Dict[str, Type[FaultInjector]] = {
    cls.site: cls
    for cls in (
        DropDrainFault,
        DelayDrainFault,
        SilentSnoopFault,
        RetryStormFault,
        LostFiqFault,
        DeferredFiqFault,
        StaleCamFault,
        StarvationFault,
        MemDelayFault,
    )
}


class FaultEngine:
    """All armed injectors of one platform, in spec order."""

    def __init__(self, platform: "Platform", specs):
        self.injectors: List[FaultInjector] = []
        for spec in specs:
            cls = SITES.get(spec.site)
            if cls is None:
                raise ConfigError(
                    f"unknown fault site {spec.site!r}; registered sites: "
                    + ", ".join(sorted(SITES))
                )
            injector = cls(spec)
            injector.arm(platform)
            self.injectors.append(injector)

    @property
    def total_fires(self) -> int:
        """Injections performed across all armed faults."""
        return sum(injector.fires for injector in self.injectors)

    def summary(self) -> List[str]:
        """One line per armed fault, for reports and dumps."""
        return [injector.describe() for injector in self.injectors]


def apply_faults(platform: "Platform", specs) -> Optional[FaultEngine]:
    """Arm ``specs`` against ``platform``; None when there are none."""
    specs = tuple(specs)
    if not specs:
        return None
    return FaultEngine(platform, specs)
