"""Every example script must run to completion (regression smoke tests).

Examples are executed in-process via runpy so their asserts fire here;
the slow full-sweep script (`regenerate_results.py`) runs in --quick
mode into a temp directory.
"""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, argv=()):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "deadlock_demo.py",
        "custom_platform.py",
        "parallel_kernels.py",
        "media_pipeline.py",
        "network_rx.py",
        "protocol_reduction.py",
    ],
)
def test_example_runs(script, capsys):
    run_example(script)
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates its result


def test_regenerate_results_quick(tmp_path, capsys):
    run_example("regenerate_results.py", argv=[str(tmp_path), "--quick"])
    produced = {p.name for p in tmp_path.iterdir()}
    assert "figure6_bcs.csv" in produced
    assert "headlines.md" in produced
    assert "report.md" in produced
