"""Memory controller: data movement and Table 4 timing.

The controller is the bus's single slave-side agent.  It routes each
transaction either to main memory or to the memory-mapped device that
owns the address, computes the data-phase latency in **bus cycles**
(Table 4: 6 cycles for a single word, 6 for the first beat of a burst
plus 1 per subsequent beat — 13 cycles for the default 8-word line),
and performs the data movement.

Crucially, the controller always sees the *actual* operation even when
wrappers convert reads to writes on the snoop path (Section 2, Fig 1):
the conversion happens on the snoop inputs of the caches, never on the
transaction the controller services.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..bus.types import BusOp, Transaction
from ..errors import BusError, ConfigError
from .map import MemoryMap
from .memory import MainMemory

__all__ = ["MemoryTiming", "MemoryController", "Device"]


@dataclass(frozen=True)
class MemoryTiming:
    """Data-phase latency parameters, in bus cycles (Table 4 defaults)."""

    single_cycles: int = 6
    burst_first_cycles: int = 6
    burst_next_cycles: int = 1

    def __post_init__(self):
        if min(self.single_cycles, self.burst_first_cycles, self.burst_next_cycles) < 1:
            raise ConfigError("memory timing values must be >= 1 cycle")

    def burst_cycles(self, words: int) -> int:
        """Total cycles for a ``words``-beat burst (13 for 8 words)."""
        if words < 1:
            raise ConfigError(f"burst of {words} words")
        return self.burst_first_cycles + (words - 1) * self.burst_next_cycles

    def scaled(self, factor: float) -> "MemoryTiming":
        """A slower/faster copy, for the Fig 8 miss-penalty sweep.

        The paper sweeps the *burst* miss penalty from 13 to 96 cycles
        while keeping the 6+1-per-beat structure's proportions; we scale
        every latency by ``factor`` and round to at least one cycle.
        """
        return MemoryTiming(
            single_cycles=max(1, round(self.single_cycles * factor)),
            burst_first_cycles=max(1, round(self.burst_first_cycles * factor)),
            burst_next_cycles=max(1, round(self.burst_next_cycles * factor)),
        )

    @classmethod
    def for_miss_penalty(cls, burst_total: int, words: int = 8) -> "MemoryTiming":
        """Timing whose ``words``-beat burst costs ``burst_total`` cycles.

        Used by the Fig 8 sweep: ``for_miss_penalty(96)`` yields a memory
        whose line fill takes 96 bus cycles.  The first-beat/next-beat
        split keeps the 6:1 ratio of Table 4 as closely as integers allow.
        """
        base = cls()
        factor = burst_total / base.burst_cycles(words)
        timing = base.scaled(factor)
        # Adjust the first-beat latency so the burst total is exact.
        delta = burst_total - timing.burst_cycles(words)
        first = max(1, timing.burst_first_cycles + delta)
        return cls(
            single_cycles=max(1, round(first * base.single_cycles / base.burst_first_cycles)),
            burst_first_cycles=first,
            burst_next_cycles=timing.burst_next_cycles,
        )


class Device:
    """Interface for memory-mapped bus slaves (lock register, mailbox).

    Subclasses override the word accessors; latencies are in bus cycles.
    """

    #: cycles charged for a device access (fast on-bus register file)
    access_cycles: int = 1
    #: master name for which this device is tightly coupled (accessed as
    #: a coprocessor register, no bus tenure); None = bus-only
    local_master = None

    def read_word(self, addr: int) -> int:
        """Value returned for a single-word read at ``addr``."""
        raise NotImplementedError

    def write_word(self, addr: int, value: int) -> None:
        """Handle a single-word write at ``addr``."""
        raise NotImplementedError

    def swap_word(self, addr: int, value: int) -> int:
        """Atomic exchange; returns the pre-swap value."""
        old = self.read_word(addr)
        self.write_word(addr, value)
        return old


class MemoryController:
    """Routes transactions to memory or devices and prices the data phase."""

    def __init__(self, memory: MainMemory, memory_map: MemoryMap, timing: Optional[MemoryTiming] = None):
        self.memory = memory
        self.map = memory_map
        self.timing = timing or MemoryTiming()

    def access(self, txn: Transaction) -> Tuple[Union[int, List[int], None], int]:
        """Perform ``txn``'s data movement; return ``(data, cycles)``.

        ``data`` is the value delivered to the master for reads, or None
        for writes/invalidates.  ``cycles`` is the data-phase duration in
        bus cycles.
        """
        region = self.map.find(txn.addr)
        if region.device is not None:
            return self._access_device(region.device, txn)
        timing = self.timing
        if txn.op is BusOp.READ:
            return self.memory.read_word(txn.addr), timing.single_cycles
        if txn.op is BusOp.WRITE:
            self.memory.write_word(txn.addr, txn.data)
            return None, timing.single_cycles
        if txn.op is BusOp.SWAP:
            old = self.memory.read_word(txn.addr)
            self.memory.write_word(txn.addr, txn.data)
            # Atomic RMW holds the bus for a read plus a write.
            return old, 2 * timing.single_cycles
        if txn.op in (BusOp.READ_LINE, BusOp.READ_LINE_EXCL):
            data = self.memory.read_line(txn.addr, txn.line_words)
            return data, timing.burst_cycles(txn.line_words)
        if txn.op is BusOp.WRITE_LINE:
            self.memory.write_line(txn.addr, txn.data)
            return None, timing.burst_cycles(txn.line_words)
        if txn.op is BusOp.INVALIDATE:
            # Address-only transaction: memory is not involved; one cycle
            # beyond the address phase covers the acknowledge.
            return None, 1
        if txn.op is BusOp.UPDATE:
            # Dragon-style word broadcast: sharers patch their copies at
            # the snoop window; memory stays stale (the Sm owner writes
            # it back on eviction).  One data beat on the bus.
            return None, 1
        raise BusError(f"memory controller cannot service {txn.op}")

    def supply_cycles(self, words: int) -> int:
        """Data-phase cycles when a cache supplies the line instead.

        Cache-to-cache intervention skips the DRAM access: one cycle per
        beat plus one turnaround cycle.
        """
        return words + 1

    def _access_device(self, device: Device, txn: Transaction) -> Tuple[Union[int, None], int]:
        if txn.op is BusOp.READ:
            return device.read_word(txn.addr), device.access_cycles
        if txn.op is BusOp.WRITE:
            device.write_word(txn.addr, txn.data)
            return None, device.access_cycles
        if txn.op is BusOp.SWAP:
            return device.swap_word(txn.addr, txn.data), 2 * device.access_cycles
        raise BusError(f"device at 0x{txn.addr:08x} cannot service {txn.op}")
