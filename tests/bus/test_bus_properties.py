"""Property tests: the bus against a serial reference model.

Random multi-master transaction streams must leave memory in the state
a simple serial replay (in bus-completion order) predicts, and the bus
must never overlap tenures.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bus import AsbBus, BusOp, Transaction
from repro.mem import MainMemory, MemoryController, MemoryMap, Region
from repro.sim import Clock, Simulator

txn_strategy = st.tuples(
    st.sampled_from(["read", "write", "swap", "read_line", "write_line"]),
    st.integers(min_value=0, max_value=31),   # line index
    st.integers(min_value=0, max_value=7),    # word within line
    st.integers(min_value=1, max_value=0xFFFF),
)


def build_txn(master, kind, line, word, value):
    base = line * 32
    if kind == "read":
        return Transaction(BusOp.READ, base + 4 * word, master)
    if kind == "write":
        return Transaction(BusOp.WRITE, base + 4 * word, master, data=value)
    if kind == "swap":
        return Transaction(BusOp.SWAP, base + 4 * word, master, data=value)
    if kind == "read_line":
        return Transaction(BusOp.READ_LINE, base, master)
    return Transaction(BusOp.WRITE_LINE, base, master, data=[value] * 8)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    streams=st.lists(
        st.lists(txn_strategy, max_size=12), min_size=1, max_size=3
    )
)
def test_property_memory_matches_completion_order(streams):
    sim = Simulator()
    memory = MainMemory()
    memory_map = MemoryMap([Region("ram", 0, 0x10000)])
    bus = AsbBus(sim, Clock.from_mhz(50), MemoryController(memory, memory_map))
    completion_log = []

    def master(name, ops):
        for kind, line, word, value in ops:
            txn = build_txn(name, kind, line, word, value)
            yield from bus.transact(txn)
            completion_log.append((kind, line, word, value))

    for index, ops in enumerate(streams):
        sim.process(master(f"m{index}", ops))
    sim.run()

    # Replay the completion order against a plain dict.
    reference = {}
    for kind, line, word, value in completion_log:
        base = line * 32
        if kind == "write":
            reference[base + 4 * word] = value
        elif kind == "swap":
            reference[base + 4 * word] = value
        elif kind == "write_line":
            for offset in range(8):
                reference[base + 4 * offset] = value
    for addr, value in reference.items():
        assert memory.peek(addr) == value


@settings(max_examples=30, deadline=None)
@given(
    streams=st.lists(
        st.lists(txn_strategy, min_size=1, max_size=8), min_size=2, max_size=3
    )
)
def test_property_tenures_never_overlap(streams):
    sim = Simulator()
    memory_map = MemoryMap([Region("ram", 0, 0x10000)])
    bus = AsbBus(
        sim, Clock.from_mhz(50), MemoryController(MainMemory(), memory_map)
    )
    holds = []

    def master(name, ops):
        for kind, line, word, value in ops:
            txn = build_txn(name, kind, line, word, value)
            grant_time = []

            def commit(_result, grant_time=grant_time):
                grant_time.append(sim.now)

            start = sim.now
            yield from bus.transact(txn, commit=commit)
            holds.append((start, sim.now, name))

    for index, ops in enumerate(streams):
        sim.process(master(f"m{index}", ops))
    sim.run()

    # Busy ticks must never exceed elapsed time, and the per-master
    # busy breakdown must account for all of it.
    busy = bus.stats.get("bus.busy_ticks")
    assert busy <= sim.now
    per_master = sum(
        v for k, v in bus.stats.as_dict().items()
        if k.startswith("bus.busy.")
    )
    assert per_master == busy
