"""CLI plumbing for ``python -m repro fuzz`` (run / repro / shrink).

Exit codes follow the repo convention: 0 when the command's check
passed (campaign fully expected, reproducer reproduced, shrink
succeeded), 1 when the check failed (unexpected classifications, a
reproducer that no longer reproduces), 2 for usage or configuration
errors (unreadable file, nothing to shrink, bad parameters).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError
from .campaign import CampaignConfig, run_campaign
from .case import FuzzCase, run_case
from .shrink import shrink_case

__all__ = ["add_fuzz_arguments", "run_fuzz"]


def add_fuzz_arguments(parser) -> None:
    """Attach the fuzz action subparsers to the ``fuzz`` command."""
    sub = parser.add_subparsers(dest="action", required=True)

    p = sub.add_parser("run", help="run a seeded fuzzing campaign")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default: 0)")
    p.add_argument("--cases", type=int, default=200, metavar="N",
                   help="number of cases (default: 200)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker subprocesses (default: 1, in-process)")
    p.add_argument("--timeout", type=float, default=60.0, metavar="S",
                   help="per-case deadline with --jobs > 1 (default: 60s)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="manifest + reproducer directory (default: none)")
    p.add_argument("--no-resume", action="store_true",
                   help="re-run cases already present in the manifest")
    p.add_argument("--shrink", action="store_true",
                   help="shrink each unexpected case before reporting it")
    p.add_argument("--masters", type=int, default=2, metavar="N",
                   help="masters per trace case (default: 2)")
    p.add_argument("--fabric", default="atomic",
                   choices=("atomic", "split", "directory"),
                   help="coherence fabric for trace cases (default: atomic)")
    p.add_argument("--p-deadlock", type=float, default=0.1,
                   help="fraction of Fig 4 deadlock-scenario cases")
    p.add_argument("--p-unwrapped", type=float, default=0.3,
                   help="fraction of trace cases with wrappers forced off")
    p.add_argument("--p-fault", type=float, default=0.15,
                   help="fraction of trace cases with a fault armed")

    p = sub.add_parser("repro", help="replay a reproducer file")
    p.add_argument("file", help="reproducer JSON (from a campaign or shrink)")

    p = sub.add_parser("shrink", help="minimise a failing case")
    p.add_argument("file", help="reproducer JSON (or bare case dict)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the shrunk reproducer here")
    p.add_argument("--max-tests", type=int, default=500,
                   help="probe budget (default: 500)")


def _load_case(path: str) -> Tuple[FuzzCase, Optional[Dict[str, Any]]]:
    """A case plus its recorded result (if any) from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except ValueError as exc:
        raise ConfigError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected a JSON object")
    if "case" in data:
        return FuzzCase.from_dict(data["case"]), data.get("result")
    if "seed" in data:  # a bare case dict
        return FuzzCase.from_dict(data), None
    raise ConfigError(f"{path}: neither a reproducer nor a case dict")


def _cmd_run(args) -> int:
    config = CampaignConfig(
        seed=args.seed,
        n_cases=args.cases,
        workers=args.jobs,
        timeout_s=args.timeout,
        out_dir=args.out,
        resume=not args.no_resume,
        n_masters=args.masters,
        p_deadlock=args.p_deadlock,
        p_unwrapped=args.p_unwrapped,
        p_fault=args.p_fault,
        fabric=args.fabric,
    )

    def progress(done, total, entry):
        result = entry["result"]
        if not result.get("expected", False):
            case = FuzzCase.from_dict(entry["case"])
            print(
                f"UNEXPECTED case {entry['index']}: {case.describe()} -> "
                f"{result['outcome']} (allowed: "
                f"{', '.join(result['allowed'])})",
                file=sys.stderr,
            )
        elif done % 100 == 0 or done == total:
            print(f"  {done}/{total} cases", file=sys.stderr)

    result = run_campaign(config, progress=progress)
    print(result.summary())
    if args.shrink and result.unexpected:
        for entry in result.unexpected:
            case = FuzzCase.from_dict(entry["case"])
            shrunk = shrink_case(
                case, target_outcome=entry["result"]["outcome"]
            )
            print(f"  case {entry['index']}: {shrunk.summary()}")
            if entry.get("reproducer"):
                shrunk_path = entry["reproducer"].replace(
                    ".json", ".shrunk.json"
                )
                _write_json(shrunk_path, {
                    "campaign_seed": result.seed,
                    "index": entry["index"],
                    "case": shrunk.shrunk.to_dict(),
                    "result": entry["result"],
                    "shrink": shrunk.to_dict(),
                })
                print(f"    shrunk reproducer: {shrunk_path}")
    if result.unexpected:
        for entry in result.unexpected:
            if entry.get("reproducer"):
                print(f"  reproducer: {entry['reproducer']}", file=sys.stderr)
        return 1
    return 0


def _cmd_repro(args) -> int:
    case, recorded = _load_case(args.file)
    result = run_case(case)
    print(case.describe())
    print(f"outcome: {result.outcome} ({result.detail})")
    if recorded is not None:
        expected = recorded.get("outcome")
        if result.outcome != expected:
            print(
                f"DOES NOT REPRODUCE: recorded outcome was {expected!r}",
                file=sys.stderr,
            )
            return 1
        if recorded.get("detail") not in (None, result.detail):
            print(
                "reproduced the outcome but not the detail "
                f"(recorded: {recorded['detail']!r})",
                file=sys.stderr,
            )
            return 1
        print("reproduced byte-identically")
        return 0
    return 0 if result.expected else 1


def _cmd_shrink(args) -> int:
    case, recorded = _load_case(args.file)
    target = recorded.get("outcome") if recorded else None
    if target is None:
        target = run_case(case).outcome
    if target == "clean":
        print(f"repro fuzz shrink: {args.file} runs clean -- "
              "nothing to shrink", file=sys.stderr)
        return 2
    result = shrink_case(case, target_outcome=target,
                         max_tests=args.max_tests)
    print(result.summary())
    print(f"shrunk case: {result.shrunk.describe()}")
    if args.out:
        _write_json(args.out, {
            "case": result.shrunk.to_dict(),
            "result": {"outcome": result.outcome},
            "shrink": result.to_dict(),
        })
        print(f"written to {args.out}")
    return 0


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_fuzz(args) -> int:
    """Dispatch one ``repro fuzz`` action; returns the exit code."""
    if args.action == "run":
        return _cmd_run(args)
    if args.action == "repro":
        return _cmd_repro(args)
    return _cmd_shrink(args)
