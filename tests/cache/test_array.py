"""Unit and property tests for the cache geometry and array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheArray, CacheGeometry, State, make_protocol
from repro.errors import ConfigError

MEI = make_protocol("MEI")


def make_array(size=1024, line=32, ways=2):
    return CacheArray(CacheGeometry(size, line, ways))


class TestGeometry:
    def test_basic_decomposition(self):
        geom = CacheGeometry(16 * 1024, 32, 4)
        assert geom.n_sets == 128
        assert geom.line_words == 8

    def test_line_base(self):
        geom = CacheGeometry(1024, 32, 2)
        assert geom.line_base(0x1234) == 0x1220

    def test_word_offset(self):
        geom = CacheGeometry(1024, 32, 2)
        assert geom.word_offset(0x1224) == 1

    def test_set_index_wraps(self):
        geom = CacheGeometry(1024, 32, 2)  # 16 sets
        assert geom.set_index(0x0000) == geom.set_index(16 * 32)

    def test_rebuild_addr_roundtrip(self):
        geom = CacheGeometry(4096, 32, 4)
        for addr in (0x0, 0x20, 0x1000, 0xABC0):
            base = geom.line_base(addr)
            assert geom.rebuild_addr(geom.tag(base), geom.set_index(base)) == base

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 32, 2)
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 24, 2)
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 32, 3)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(32, 32, 2)

    def test_fully_associative_allowed(self):
        geom = CacheGeometry(1024, 32, 32)
        assert geom.n_sets == 1


class TestArray:
    def test_miss_on_empty(self):
        assert make_array().lookup(0x100) is None

    def test_install_then_hit(self):
        array = make_array()
        array.install(0x100, 0, list(range(8)), State.EXCLUSIVE, MEI)
        line = array.lookup(0x100)
        assert line is not None
        assert line.state is State.EXCLUSIVE
        assert line.data[0] == 0

    def test_hit_anywhere_in_line(self):
        array = make_array()
        array.install(0x100, 0, list(range(8)), State.EXCLUSIVE, MEI)
        assert array.lookup(0x11C) is not None
        assert array.lookup(0x120) is None

    def test_wrong_size_fill_rejected(self):
        with pytest.raises(ConfigError):
            make_array().install(0x100, 0, [1, 2], State.EXCLUSIVE, MEI)

    def test_victim_prefers_invalid_way(self):
        array = make_array(ways=2)
        array.install(0x0, 0, [0] * 8, State.EXCLUSIVE, MEI)
        way, victim, victim_addr = array.victim_for(0x0 + 1024)  # same set
        assert way == 1
        assert victim is None and victim_addr is None

    def test_victim_lru(self):
        array = make_array(size=64, line=32, ways=2)  # 1 set
        array.install(0x000, 0, [0] * 8, State.EXCLUSIVE, MEI)
        array.install(0x020, 1, [0] * 8, State.EXCLUSIVE, MEI)
        array.lookup(0x000, touch=True)  # refresh way 0
        way, victim, victim_addr = array.victim_for(0x040)
        assert way == 1
        assert victim_addr == 0x020

    def test_snoop_lookup_does_not_touch(self):
        array = make_array(size=64, line=32, ways=2)
        array.install(0x000, 0, [0] * 8, State.EXCLUSIVE, MEI)
        array.install(0x020, 1, [0] * 8, State.EXCLUSIVE, MEI)
        array.lookup(0x000, touch=True)
        array.lookup(0x020, touch=False)  # a snoop: no recency update
        _way, _victim, victim_addr = array.victim_for(0x040)
        assert victim_addr == 0x020

    def test_remove(self):
        array = make_array()
        array.install(0x100, 0, [0] * 8, State.MODIFIED, MEI)
        removed = array.remove(0x100)
        assert removed is not None
        assert removed.state is State.INVALID
        assert array.lookup(0x100) is None

    def test_remove_missing_returns_none(self):
        assert make_array().remove(0x100) is None

    def test_valid_lines_enumeration(self):
        array = make_array()
        array.install(0x100, 0, [0] * 8, State.EXCLUSIVE, MEI)
        array.install(0x240, 0, [0] * 8, State.MODIFIED, MEI)
        addresses = {addr for addr, _line in array.valid_lines()}
        assert addresses == {0x100, 0x240}

    def test_occupancy(self):
        array = make_array()
        assert array.occupancy() == 0
        array.install(0x100, 0, [0] * 8, State.EXCLUSIVE, MEI)
        assert array.occupancy() == 1

    def test_flush_iter_predicate(self):
        array = make_array()
        array.install(0x100, 0, [0] * 8, State.EXCLUSIVE, MEI)
        array.install(0x240, 0, [0] * 8, State.EXCLUSIVE, MEI)
        assert array.flush_iter(lambda a: a >= 0x200) == [0x240]


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=255).map(lambda n: n * 32),
        min_size=1,
        max_size=60,
    )
)
def test_property_install_always_findable_and_bounded(addresses):
    """After any install sequence: last install hits; occupancy bounded."""
    geom = CacheGeometry(512, 32, 2)  # 16 lines capacity
    array = CacheArray(geom)
    for addr in addresses:
        if array.lookup(addr) is not None:
            continue  # controllers only fill on a miss
        way, victim, victim_addr = array.victim_for(addr)
        if victim is not None:
            victim.state = State.INVALID
            array.release_way(victim_addr, way)
        array.install(addr, way, [0] * 8, State.EXCLUSIVE, MEI)
        assert array.lookup(addr) is not None
    assert array.occupancy() <= 16
    # No duplicate line is ever resident.
    seen = [a for a, _l in array.valid_lines()]
    assert len(seen) == len(set(seen))


@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=2**20).map(lambda n: n * 4),
        min_size=1,
        max_size=40,
    )
)
def test_property_geometry_roundtrip(addresses):
    geom = CacheGeometry(8192, 32, 4)
    for addr in addresses:
        base = geom.line_base(addr)
        assert base <= addr < base + 32
        assert geom.rebuild_addr(geom.tag(addr), geom.set_index(addr)) == base
