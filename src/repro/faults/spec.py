"""Addressable fault specifications.

A :class:`FaultSpec` names one injection *site* (a registered fault
class, e.g. ``"drain.drop"``), a trigger predicate (target component,
address, bus op, skip count), a deterministic seed and a fire budget.
Specs are frozen and hashable so they can ride inside
:class:`~repro.core.platform.PlatformConfig` and be replayed
byte-identically: the same spec against the same workload injects at
exactly the same simulated instants on every run.

The registered sites live in :mod:`repro.faults.injectors`; see
``docs/robustness.md`` for the taxonomy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ConfigError

__all__ = ["FaultSpec", "FaultTrigger"]


@dataclass(frozen=True)
class FaultSpec:
    """One addressable fault: site, trigger predicate, seed, budget."""

    #: registered fault class, e.g. "drain.drop" (see injectors.SITES)
    site: str
    #: target component / master name (None = every candidate site)
    master: Optional[str] = None
    #: address filter — matches the exact address or its line base
    addr: Optional[int] = None
    #: bus-op filter (BusOp.value string, e.g. "read-line")
    op: Optional[str] = None
    #: skip the first N matching occasions before arming
    after_n: int = 0
    #: fire at most this many times (None = unlimited)
    count: Optional[int] = 1
    #: seeded per-occasion coin; 1.0 fires on every matching occasion
    probability: float = 1.0
    seed: int = 0
    #: delay-style faults: how late the faulted action lands (ns)
    delay_ns: int = 0
    #: mem.delay: extra data-phase bus cycles per faulted access
    extra_cycles: int = 0

    def __post_init__(self):
        if not self.site:
            raise ConfigError("FaultSpec needs a site name")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"fault probability {self.probability} outside [0, 1]")
        if self.after_n < 0 or self.delay_ns < 0 or self.extra_cycles < 0:
            raise ConfigError("after_n, delay_ns and extra_cycles must be >= 0")
        if self.count is not None and self.count < 1:
            raise ConfigError("fault count must be >= 1 (or None for unlimited)")

    def with_(self, **changes) -> "FaultSpec":
        """A modified copy."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable rendering for reports."""
        parts = [self.site]
        if self.master is not None:
            parts.append(f"@{self.master}")
        if self.addr is not None:
            parts.append(f"addr=0x{self.addr:08x}")
        if self.count != 1:
            parts.append(f"count={self.count if self.count is not None else 'inf'}")
        if self.probability < 1.0:
            parts.append(f"p={self.probability}")
        return " ".join(parts)


class FaultTrigger:
    """Runtime trigger state for one armed spec.

    Separates the *predicate* (does this occasion match?) from the
    *budget* (after_n / count / seeded probability), so injectors share
    one deterministic decision procedure.  The RNG is seeded from the
    spec alone — identical spec, identical workload, identical firing
    pattern.
    """

    __slots__ = ("spec", "occasions", "fires", "_rng")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.occasions = 0
        self.fires = 0
        self._rng = random.Random(
            f"{spec.seed}:{spec.site}:{spec.master}:{spec.addr}:{spec.op}"
        )

    def matches(
        self,
        master: Optional[str] = None,
        addr: Optional[int] = None,
        line_base: Optional[int] = None,
        op: Optional[str] = None,
    ) -> bool:
        """Predicate only: does this occasion fall under the spec?"""
        spec = self.spec
        if spec.master is not None and master != spec.master:
            return False
        if spec.addr is not None and addr is not None:
            if spec.addr != addr and spec.addr != line_base:
                return False
        if spec.op is not None and op is not None and spec.op != op:
            return False
        return True

    def should_fire(self, **context) -> bool:
        """Predicate + budget; advances the occasion/fire counters."""
        if not self.matches(**context):
            return False
        self.occasions += 1
        if self.occasions <= self.spec.after_n:
            return False
        if self.spec.count is not None and self.fires >= self.spec.count:
            return False
        if self.spec.probability < 1.0 and self._rng.random() >= self.spec.probability:
            return False
        self.fires += 1
        return True
