"""Workload plumbing for cross-engine runs.

Engines consume one flat, ordered access list so their results are
comparable by construction.  The fuzz generator's workload families
produce either a serial trace or one trace per master;
:func:`serialize_workload` flattens the latter deterministically
(round-robin, master order) so the same interleaving drives every
engine.  :func:`reference_config` / :func:`reference_workload` define
the standard cross-engine benchmark point used by
``benchmarks/bench_engines.py`` and the hotpath suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.platform import PlatformConfig
from ..cpu.presets import preset_generic
from ..fuzz.case import build_workload
from ..workloads.tracegen import TraceAccess

__all__ = [
    "serialize_traces",
    "serialize_workload",
    "reference_config",
    "reference_workload",
]


def serialize_traces(
    traces: Dict[int, Sequence[TraceAccess]]
) -> List[TraceAccess]:
    """Round-robin interleave per-master traces into one serial order.

    Deterministic: masters in ascending index order, one access each
    per round, shorter traces simply drop out.  This fixes *an*
    interleaving — any serialised order is a legal concurrency of the
    original workload — and every engine then replays that same order.
    """
    order = sorted(traces)
    cursors = {proc: 0 for proc in order}
    out: List[TraceAccess] = []
    remaining = sum(len(traces[proc]) for proc in order)
    while remaining:
        for proc in order:
            i = cursors[proc]
            trace = traces[proc]
            if i < len(trace):
                out.append(trace[i])
                cursors[proc] = i + 1
                remaining -= 1
    return out


def serialize_workload(workload: Dict) -> List[TraceAccess]:
    """A fuzz-style workload dict as one flat serialised access list."""
    mode, traces = build_workload(workload)
    if mode == "serial":
        return list(traces)
    return serialize_traces(traces)


def reference_config(
    protocol: str = "MESI", cache_size: int = 4096, ways: int = 4
) -> PlatformConfig:
    """The standard two-master config for cross-engine benchmarks."""
    return PlatformConfig(
        cores=(
            preset_generic("p0", protocol).with_(
                cache_size=cache_size, cache_ways=ways
            ),
            preset_generic("p1", protocol).with_(
                cache_size=cache_size, cache_ways=ways
            ),
        ),
        hardware_coherence=True,
    )


def reference_workload(n: int = 4000, seed: int = 7) -> List[TraceAccess]:
    """The standard cross-engine benchmark trace.

    A two-master hotspot mix over a footprint that mostly fits the
    reference caches: high hit rate with a steady stream of coherence
    traffic — the regime statistics-only sweeps live in.
    """
    return serialize_workload(
        {"kind": "hotspot", "n": n, "footprint_words": 512,
         "seed": seed, "procs": 2}
    )
