"""Table 2: the MEI + MESI shared-state problem, and the wrapper fix.

Regenerates both halves of the paper's Table 2 argument: the unwrapped
platform reads stale data at step d; the wrapped platform (read-to-write
conversion + shared signal held off on the MESI side) does not, and the
S state never appears — the integrated system is MEI.
"""

from conftest import report, run_once

from repro.workloads import table2_demo


def test_table2_unwrapped_reads_stale(benchmark):
    result = run_once(benchmark, table2_demo, False)
    report(benchmark, "Table 2 (no wrapper)", result.render())
    assert result.stale_reads == 1
    assert result.steps[3].states == ("S", "M")


def test_table2_wrapped_is_coherent(benchmark):
    result = run_once(benchmark, table2_demo, True)
    report(benchmark, "Table 2 (with wrapper)", result.render())
    assert result.stale_reads == 0
    assert result.violations == []
    assert result.system_protocol == "MEI"
    assert all("S" not in step.states for step in result.steps)
