"""Clock domains.

The kernel's tick is 1 ns.  Each component belongs to a :class:`Clock`
that converts its cycle counts to ticks; heterogeneous cores therefore
run at their own frequencies against a common timebase, matching the
paper's platform (PowerPC755 at 100 MHz, ARM920T and the ASB bus at
50 MHz — Table 4).
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["Clock", "NS_PER_TICK", "mhz_to_period_ns"]

NS_PER_TICK = 1  # the kernel's time unit, by convention


def mhz_to_period_ns(freq_mhz: float) -> int:
    """Clock period in whole nanoseconds for a frequency in MHz.

    Only frequencies whose period is an integral number of nanoseconds
    are representable (100 MHz -> 10 ns, 50 MHz -> 20 ns, ...); anything
    else would silently skew cycle accounting, so it is rejected.
    """
    if freq_mhz <= 0:
        raise ConfigError(f"frequency must be positive, got {freq_mhz} MHz")
    period = 1000.0 / freq_mhz
    if abs(period - round(period)) > 1e-9:
        raise ConfigError(
            f"{freq_mhz} MHz has a non-integral period ({period} ns); "
            "pick a frequency whose period is a whole number of ns"
        )
    return int(round(period))


class Clock:
    """A clock domain: a period in ticks and an optional phase offset."""

    __slots__ = ("name", "period", "phase")

    def __init__(self, period: int, name: str = "clk", phase: int = 0):
        if period <= 0:
            raise ConfigError(f"clock period must be positive, got {period}")
        if not 0 <= phase < period:
            raise ConfigError(f"phase {phase} outside [0, {period})")
        self.name = name
        self.period = int(period)
        self.phase = int(phase)

    @classmethod
    def from_mhz(cls, freq_mhz: float, name: str = "clk", phase: int = 0) -> "Clock":
        """Build a clock from a frequency in MHz."""
        return cls(mhz_to_period_ns(freq_mhz), name=name, phase=phase)

    @property
    def freq_mhz(self) -> float:
        """Frequency of this domain in MHz."""
        return 1000.0 / self.period

    def cycles(self, n: int) -> int:
        """Duration of ``n`` cycles, in ticks."""
        if n < 0:
            raise ConfigError(f"negative cycle count: {n}")
        return n * self.period

    def to_cycles(self, ticks: int) -> float:
        """Convert a tick count to (possibly fractional) cycles."""
        return ticks / self.period

    def next_edge(self, now: int) -> int:
        """Ticks from ``now`` until the next rising edge (0 if on one)."""
        offset = (now - self.phase) % self.period
        return 0 if offset == 0 else self.period - offset

    def edge_then_cycles(self, now: int, n: int) -> int:
        """Ticks from ``now`` to the ``n``-th edge after alignment.

        Synchronous components sample on edges: an operation that takes
        ``n`` cycles and starts mid-period completes on the edge ``n``
        periods after the next edge.
        """
        return self.next_edge(now) + self.cycles(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.name!r}, period={self.period}ns)"
