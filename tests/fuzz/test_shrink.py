"""Tests for the delta-debugging shrinker."""

from repro.fuzz.case import FuzzCase, explicit_workload, run_case
from repro.fuzz.shrink import count_accesses, shrink_case

# The deterministic unwrapped MESI+MEI violation (see test_case.py).
VIOLATING = FuzzCase(
    seed=0,
    protocols=("MESI", "MEI"),
    wrapped=False,
    cache_sizes=(2048, 2048),
    cache_ways=(4, 4),
    workload={
        "kind": "racy", "n": 20, "seed": 1,
        "footprint_words": 4, "write_ratio": 0.5,
    },
)


class TestCountAccesses:
    def test_explicit_serial(self):
        workload = {
            "kind": "explicit-serial",
            "accesses": [[0, "read", 64, 0], [1, "write", 64, 7]],
        }
        assert count_accesses(workload) == 2

    def test_explicit_parallel(self):
        workload = {
            "kind": "explicit",
            "traces": {"0": [["read", 64, 0]], "1": [["write", 64, 1]]},
        }
        assert count_accesses(workload) == 2

    def test_generated_kind_freezes_first(self):
        workload = {"kind": "racy", "n": 20, "seed": 1}
        assert count_accesses(workload) == 40  # n per processor, 2 procs


class TestShrinkCase:
    def test_violation_shrinks_to_at_most_ten_accesses(self):
        """The ISSUE acceptance bar: a seeded-in violation minimises to
        <= 10 accesses and the shrunk case replays the same class."""
        assert run_case(VIOLATING).outcome == "violation"
        result = shrink_case(VIOLATING, target_outcome="violation")
        assert result.outcome == "violation"
        assert result.accesses_after <= 10
        assert result.accesses_after < result.accesses_before
        assert run_case(result.shrunk).outcome == "violation"

    def test_shrunk_case_replays_byte_identically(self):
        result = shrink_case(VIOLATING, target_outcome="violation")
        case = FuzzCase.from_dict(result.shrunk.to_dict())
        first = run_case(case)
        second = run_case(case)
        assert first.to_dict() == second.to_dict()
        assert first.outcome == "violation"

    def test_config_passes_shrink_geometry(self):
        result = shrink_case(VIOLATING, target_outcome="violation")
        # The race does not depend on a big associative cache, so the
        # greedy pass must have reduced the geometry.
        assert result.shrunk.cache_sizes == (256, 256)
        assert result.shrunk.cache_ways == (1, 1)

    def test_four_master_case_shrinks_with_matching_tuples(self):
        # Regression: the geometry passes used to emit hardcoded pair
        # tuples, so shrinking any N>2 case tripped the per-master
        # tuple-length validation instead of minimising.
        case = FuzzCase(
            seed=8,
            protocols=("MOESI", "MEI", "MSI", "MESI"),
            wrapped=False,
            cache_sizes=(2048, 512, 1024, 256),
            cache_ways=(4, 2, 4, 1),
            workload={
                "kind": "racy", "n": 20, "seed": 1, "procs": 4,
                "footprint_words": 4, "write_ratio": 0.5,
            },
        )
        assert run_case(case).outcome == "violation"
        result = shrink_case(case, target_outcome="violation")
        assert result.outcome == "violation"
        assert result.shrunk.cache_sizes == (256,) * 4
        assert result.shrunk.cache_ways == (1,) * 4
        assert run_case(result.shrunk).outcome == "violation"

    def test_fault_dropped_when_not_load_bearing(self):
        # snoop.silent targeting an address the workload never touches
        # cannot be what breaks coherence; the shrinker must drop it.
        case = VIOLATING.with_(
            fault={"site": "snoop.silent", "master": "p0",
                   "addr": 0x7FFF_0000, "count": None, "seed": 1},
        )
        assert run_case(case).outcome == "violation"
        result = shrink_case(case, target_outcome="violation")
        assert result.shrunk.fault is None

    def test_deadlock_scenario_is_already_minimal(self):
        case = FuzzCase(seed=0, scenario="deadlock", solution="none")
        result = shrink_case(case, target_outcome="deadlock")
        assert result.shrunk == case
        assert result.outcome == "deadlock"

    def test_budget_is_respected(self):
        result = shrink_case(
            VIOLATING, target_outcome="violation", max_tests=5
        )
        assert result.tests_run <= 5
        # Even out of budget, what is returned still fails.
        assert run_case(result.shrunk).outcome == "violation"

    def test_target_outcome_inferred_when_omitted(self):
        result = shrink_case(VIOLATING)
        assert result.outcome == "violation"

    def test_result_round_trips_and_summarises(self):
        result = shrink_case(VIOLATING, target_outcome="violation")
        data = result.to_dict()
        assert data["outcome"] == "violation"
        assert data["accesses_after"] == result.accesses_after
        assert "accesses" in result.summary()


class TestExplicitRebuild:
    def test_empty_proc_traces_are_dropped(self):
        frozen = explicit_workload(VIOLATING.workload)
        case = VIOLATING.with_(workload=frozen)
        result = shrink_case(case, target_outcome="violation")
        for trace in result.shrunk.workload["traces"].values():
            assert trace  # no empty driver survives shrinking
