"""The Fig 4 hardware deadlock and its remedies."""

import pytest

from repro.core.deadlock import SOLUTIONS, run_deadlock_demo
from repro.errors import ConfigError


def test_cached_locks_deadlock():
    outcome = run_deadlock_demo("none")
    assert outcome.deadlocked
    # Both cores must be implicated in the wedge.
    assert "ppc755" in outcome.detail
    assert "arm920t" in outcome.detail


@pytest.mark.parametrize("solution", SOLUTIONS)
def test_liveness_matrix(solution):
    """Every solution either completes or wedges with a full diagnosis."""
    outcome = run_deadlock_demo(solution)
    if solution == "none":
        assert outcome.deadlocked
        assert outcome.report is not None
    else:
        assert not outcome.deadlocked
        assert outcome.report is None
        assert outcome.elapsed_ns > 0


def test_deadlock_diagnostic_report():
    report = run_deadlock_demo("none").report
    assert report.kind == "deadlock"
    stalled = {m.name for m in report.stalled}
    assert stalled == {"ppc755", "arm920t"}
    # The PowerPC is backed off waiting on the ARM's drain...
    ppc = next(m for m in report.masters if m.name == "ppc755")
    assert "backed-off" in ppc.waiting
    assert "arm920t" in ppc.waiting
    # ...and the ARM has the unserviceable snoop request pending.
    assert report.snoop_pending["arm920t"]["inflight"]
    rendered = report.render()
    assert "watchdog deadlock report" in rendered
    assert "in-flight bus tenures" in rendered


@pytest.mark.parametrize("solution", ["uncached-locks", "lock-register", "bakery"])
def test_remedies_complete(solution):
    outcome = run_deadlock_demo(solution)
    assert not outcome.deadlocked
    assert outcome.elapsed_ns > 0


def test_lock_register_is_fastest_remedy():
    uncached = run_deadlock_demo("uncached-locks").elapsed_ns
    register = run_deadlock_demo("lock-register").elapsed_ns
    bakery = run_deadlock_demo("bakery").elapsed_ns
    # The 1-cycle on-bus register beats memory-based locks; Bakery pays
    # the most uncached traffic of the three.
    assert register <= uncached <= bakery


def test_unknown_solution_rejected():
    with pytest.raises(ConfigError):
        run_deadlock_demo("prayer")


def test_render_mentions_outcome():
    outcome = run_deadlock_demo("none")
    assert "DEADLOCK" in outcome.render()
    ok = run_deadlock_demo("lock-register")
    assert "completed" in ok.render()


def test_solutions_constant_is_exhaustive():
    assert set(SOLUTIONS) == {"none", "uncached-locks", "lock-register", "bakery"}
