"""Tests for the coherence checker itself."""

import pytest

from repro.cache import State
from repro.core import SHARED_BASE, Platform, PlatformConfig
from repro.cpu import preset_generic
from repro.errors import CoherenceViolation
from repro.verify import CoherenceChecker


def make_checked_platform(hardware=True):
    platform = Platform(
        PlatformConfig(
            cores=(preset_generic("p0", "MESI"), preset_generic("p1", "MESI")),
            hardware_coherence=hardware,
        )
    )
    return platform, CoherenceChecker(platform)


def drive(platform, generator):
    proc = platform.sim.process(generator)
    platform.sim.run(detect_deadlock=False)
    return proc.value


class TestValueChecking:
    def test_clean_run_has_no_violations(self):
        platform, checker = make_checked_platform()
        c0, c1 = platform.controllers

        def scenario():
            yield from c0.write(SHARED_BASE, 11)
            value = yield from c1.read(SHARED_BASE)
            assert value == 11

        drive(platform, scenario())
        assert checker.clean
        assert checker.loads_checked >= 1
        assert checker.stores_tracked >= 1

    def test_stale_read_detected(self):
        platform, checker = make_checked_platform()

        def scenario():
            yield from platform.controllers[0].read(SHARED_BASE)

        # Corrupt the returned value path by poisoning the golden model.
        checker.seed(SHARED_BASE, 999)
        drive(platform, scenario())
        assert not checker.clean
        assert "stale read" in checker.violations[0].detail

    def test_seed_from_memory(self):
        platform, checker = make_checked_platform()
        platform.memory.load(SHARED_BASE, [77])
        checker.seed_from_memory()

        def scenario():
            value = yield from platform.controllers[0].read(SHARED_BASE)
            return value

        drive(platform, scenario())
        assert checker.clean

    def test_raise_if_violations(self):
        platform, checker = make_checked_platform()
        checker.seed(SHARED_BASE, 5)

        def scenario():
            yield from platform.controllers[0].read(SHARED_BASE)

        drive(platform, scenario())
        with pytest.raises(CoherenceViolation):
            checker.raise_if_violations()

    def test_raise_immediately_mode(self):
        platform = Platform(
            PlatformConfig(cores=(preset_generic("p0", "MESI"),))
        )
        checker = CoherenceChecker(platform, raise_immediately=True)
        checker.seed(SHARED_BASE, 5)

        def scenario():
            yield from platform.controllers[0].read(SHARED_BASE)

        with pytest.raises(CoherenceViolation):
            drive(platform, scenario())

    def test_swap_old_value_checked(self):
        platform, checker = make_checked_platform()
        lock_addr = 0x3000_0000

        def scenario():
            yield from platform.controllers[0].swap(lock_addr, 1)
            old = yield from platform.controllers[0].swap(lock_addr, 0)
            assert old == 1

        drive(platform, scenario())
        assert checker.clean


class TestStateChecking:
    def test_manual_violation_detected(self):
        platform, checker = make_checked_platform()
        c0, c1 = platform.controllers

        def scenario():
            yield from c0.read(SHARED_BASE)
            yield from c1.read(SHARED_BASE)

        drive(platform, scenario())
        # Legitimately shared now; force an illegal double-M by hand.
        c0.array.lookup(SHARED_BASE).state = State.MODIFIED
        c1.array.lookup(SHARED_BASE).state = State.MODIFIED
        checker.check_line_states(SHARED_BASE)
        assert any("M/E copy coexists" in v.detail for v in checker.violations)

    def test_clean_copy_divergence_detected(self):
        platform, checker = make_checked_platform()
        c0 = platform.controllers[0]

        def scenario():
            yield from c0.read(SHARED_BASE)

        drive(platform, scenario())
        c0.array.lookup(SHARED_BASE).data[0] = 0xBAD  # corrupt silently
        checker.check_line_states(SHARED_BASE)
        assert any("differs from memory" in v.detail for v in checker.violations)

    def test_check_all_lines_sweeps(self):
        platform, checker = make_checked_platform()
        c0 = platform.controllers[0]

        def scenario():
            yield from c0.read(SHARED_BASE)
            yield from c0.read(SHARED_BASE + 0x40)

        drive(platform, scenario())
        c0.array.lookup(SHARED_BASE + 0x40).data[0] = 1
        checker.check_all_lines()
        assert len(checker.violations) == 1

    def test_summary_format(self):
        _platform, checker = make_checked_platform()
        text = checker.summary()
        assert "violations" in text

    def test_device_reads_exempt(self):
        platform = Platform(
            PlatformConfig(
                cores=(preset_generic("p0", "MESI"),), lock_register=True
            )
        )
        checker = CoherenceChecker(platform)
        lock_addr = platform.lock_register.lock_addr()

        def scenario():
            yield from platform.controllers[0].read(lock_addr)  # test&set
            yield from platform.controllers[0].read(lock_addr)  # now 1

        drive(platform, scenario())
        assert checker.clean  # device values never flagged


class TestViolationCap:
    def test_cap_truncates_with_marker(self):
        platform, _ = make_checked_platform()
        checker = CoherenceChecker(platform, max_violations=5)
        for i in range(20):
            checker._flag(SHARED_BASE + 4 * i, f"synthetic violation {i}")
        # 5 real violations + 1 truncation marker; the rest only counted.
        assert len(checker.violations) == 6
        assert checker.truncated
        assert checker.suppressed_violations == 15
        assert "violation cap reached" in str(checker.violations[-1])
        assert "suppressed" in checker.summary()

    def test_under_cap_unchanged(self):
        platform, _ = make_checked_platform()
        checker = CoherenceChecker(platform, max_violations=5)
        checker._flag(SHARED_BASE, "one")
        assert len(checker.violations) == 1
        assert not checker.truncated
        assert checker.suppressed_violations == 0

    def test_capped_run_still_reports_unclean(self):
        platform, _ = make_checked_platform()
        checker = CoherenceChecker(platform, max_violations=1)
        checker._flag(SHARED_BASE, "first")
        checker._flag(SHARED_BASE, "second")
        assert not checker.clean
        with pytest.raises(CoherenceViolation):
            checker.raise_if_violations()

    def test_invalid_cap_rejected(self):
        from repro.errors import ConfigError

        platform, _ = make_checked_platform()
        with pytest.raises(ConfigError):
            CoherenceChecker(platform, max_violations=0)
